#!/usr/bin/env python3
"""Aggregation inside an operator tree — the Section 2 execution model.

The paper assumes Gamma-style operator trees: "a join of two base
relations is implemented as two select operators followed by a join
operator", with aggregation consuming the pipeline.  This example builds
exactly that tree with the local Volcano-style engine (orders x lineitem,
filtered, joined, grouped), prints the EXPLAIN plan, and then shows the
same query's pipeline-mode cost (no scan/store I/O, the Figure 2
scenario) on the cluster simulator.

Run:  python examples/operator_pipeline.py
"""

import numpy as np

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import run_algorithm
from repro.engine import (
    HashAggregateOp,
    HashJoinOp,
    HavingOp,
    ScanOp,
    SelectOp,
    execute,
    explain,
)
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema
from repro.workloads.generator import generate_uniform


def build_tables(num_orders=500, lines_per_order=4, seed=1):
    rng = np.random.default_rng(seed)
    orders_schema = Schema(
        [Column("okey", "int"), Column("region", "str", size_bytes=8)]
    )
    regions = ["east", "west", "north", "south"]
    orders = Relation(
        orders_schema,
        [
            (i, regions[int(rng.integers(0, len(regions)))])
            for i in range(num_orders)
        ],
    )
    lines_schema = Schema(
        [Column("okey", "int"), Column("price", "float")]
    )
    num_lines = num_orders * lines_per_order
    lines = Relation(
        lines_schema,
        [
            (int(rng.integers(0, num_orders)),
             float(rng.uniform(10, 1000)))
            for _ in range(num_lines)
        ],
    )
    return orders, lines


def main() -> None:
    orders, lines = build_tables()

    # SELECT region, SUM(price), COUNT(*) FROM lines JOIN orders
    # WHERE price > 50 GROUP BY region HAVING COUNT(*) > 100
    query = AggregateQuery(
        group_by=["region"],
        aggregates=[
            AggregateSpec("sum", "price", alias="revenue"),
            AggregateSpec("count", None, alias="n"),
        ],
    )
    plan = HavingOp(
        HashAggregateOp(
            HashJoinOp(
                SelectOp(ScanOp(lines), lambda r: r["price"] > 50.0),
                ScanOp(orders),
                "okey",
                "okey",
            ),
            query,
            max_entries=1000,
        ),
        lambda r: r["n"] > 100,
    )
    print("EXPLAIN:")
    print(explain(plan))
    result = execute(plan)
    print("\nresult:")
    for row in sorted(result.rows):
        print(f"  region={row[0]:<6} revenue={row[1]:12.2f} n={row[2]}")

    # The same aggregation as a pipeline stage on the cluster: Figure 2's
    # point is that dropping scan/store I/O strengthens Repartitioning.
    print("\ncluster pipeline mode (no scan/store I/O), 20000 groups:")
    dist = generate_uniform(40_000, 20_000, 8, seed=2)
    gquery = AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )
    for name in ("two_phase", "repartitioning", "adaptive_two_phase"):
        full = run_algorithm(name, dist, gquery)
        pipe = run_algorithm(name, dist, gquery, pipeline=True)
        print(
            f"  {name:<22} with I/O {full.elapsed_seconds:6.3f}s   "
            f"pipeline {pipe.elapsed_seconds:6.3f}s"
        )


if __name__ == "__main__":
    main()
