#!/usr/bin/env python3
"""Duplicate elimination: the selectivity extreme where result size is
comparable to the input (S up to 0.5).

SELECT DISTINCT is aggregation with a very large number of groups — the
case the paper says motivates supporting Adaptive Repartitioning next to
Adaptive Two Phase.  This example runs DISTINCT over relations whose
duplication factor shrinks from 100x to 2x and shows the traditional
Two Phase algorithm falling behind while Repartitioning, A-2P and A-Rep
keep the work single-pass.

Run:  python examples/duplicate_elimination.py
"""

from repro import AggregateQuery, AggregateSpec, generate_uniform
from repro.core.runner import run_algorithm

ALGORITHMS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)
NUM_TUPLES = 40_000
NUM_NODES = 8


def main() -> None:
    # DISTINCT gkey == GROUP BY gkey with a COUNT nobody reads.
    distinct = AggregateQuery(
        group_by=["gkey"],
        aggregates=[AggregateSpec("count", None, alias="dups")],
    )
    print(f"SELECT DISTINCT over {NUM_TUPLES:,} tuples, {NUM_NODES} nodes\n")
    print(f"{'dup factor':>10} {'groups':>8} | "
          + " ".join(f"{n[:12]:>12}" for n in ALGORITHMS))
    for dup_factor in (100, 20, 5, 2):
        groups = NUM_TUPLES // dup_factor
        dist = generate_uniform(NUM_TUPLES, groups, NUM_NODES, seed=1)
        times = []
        for name in ALGORITHMS:
            out = run_algorithm(name, dist, distinct)
            assert out.num_groups == groups
            times.append(out.elapsed_seconds)
        print(f"{dup_factor:>10} {groups:>8} | "
              + " ".join(f"{t:11.3f}s" for t in times))
    print(
        "\nAs duplication falls (groups rise), Two Phase's local "
        "aggregation stops helping\nand its spill I/O grows, while the "
        "repartitioning family stays single-pass;\nthe adaptive "
        "algorithms follow the winner automatically."
    )


if __name__ == "__main__":
    main()
