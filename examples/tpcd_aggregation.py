#!/usr/bin/env python3
"""TPC-D-flavoured workload: the paper's motivating scenario.

The introduction notes that 15 of TPC-D's 17 queries aggregate, with
result sizes from 2 tuples to over a million — no single static algorithm
covers that range.  This example runs three lineitem queries spanning the
spectrum and shows each algorithm's simulated time, demonstrating that
the adaptive algorithms pick the right strategy per query with no
optimizer hint.

Run:  python examples/tpcd_aggregation.py
"""

from repro.core.runner import run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.tpcd import TPCD_QUERIES, generate_lineitem

ALGORITHMS = (
    "two_phase",
    "repartitioning",
    "sampling",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)


def main() -> None:
    dist = generate_lineitem(num_tuples=40_000, num_nodes=8, seed=3)
    print(f"lineitem: {len(dist):,} tuples on {dist.num_nodes} nodes\n")

    for query_name, make_query in TPCD_QUERIES.items():
        query = make_query()
        groups = len(reference_aggregate(dist, query))
        selectivity = groups / len(dist)
        print(f"-- {query_name}: {groups:,} groups "
              f"(selectivity {selectivity:.2e})")
        times = {}
        for name in ALGORITHMS:
            out = run_algorithm(name, dist, query)
            times[name] = out.elapsed_seconds
            decision = ""
            for event in out.switch_events():
                if event.what == "sampling_decision":
                    decision = f"  [sampled -> {event.detail['choice']}]"
                    break
            else:
                n_switch = sum(
                    1
                    for e in out.switch_events()
                    if e.what.startswith("switch")
                )
                if n_switch:
                    decision = f"  [{n_switch} node switches]"
            print(f"   {name:<26} {out.elapsed_seconds:8.3f}s{decision}")
        winner = min(times, key=times.get)
        print(f"   => fastest: {winner}\n")


if __name__ == "__main__":
    main()
