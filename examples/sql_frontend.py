#!/usr/bin/env python3
"""The SQL front-end: the paper's queries as actual SQL.

Parses the canonical GROUP BY query shape into the library's query
model, runs it three ways — the local Volcano engine, the simulated
cluster, and the out-of-core file executor — and shows the answers
agree.  Also demonstrates SELECT DISTINCT (duplicate elimination, the
paper's high-selectivity motivation) and HAVING over aggregates.

Run:  python examples/sql_frontend.py
"""

import tempfile

from repro.parallel import file_backed_aggregate
from repro.sql import parse_query, run_sql
from repro.workloads.tpcd import generate_lineitem

PRICING_SUMMARY = """
    SELECT returnflag, linestatus,
           SUM(quantity)       AS sum_qty,
           AVG(extendedprice)  AS avg_price,
           COUNT(*)            AS count_order
    FROM lineitem
    WHERE discount < 0.08
    GROUP BY returnflag, linestatus
    HAVING count_order > 50
"""


def main() -> None:
    dist = generate_lineitem(num_tuples=20_000, num_nodes=4, seed=9)
    relation = dist.as_relation()

    print("query:", " ".join(PRICING_SUMMARY.split()), "\n")

    # 1. Local Volcano-style operator engine.
    local = run_sql(PRICING_SUMMARY, relation)
    print(f"local engine: {len(local)} result rows")
    for row in sorted(local.rows):
        print("  ", row)

    # 2. Simulated shared-nothing cluster.
    outcome = run_sql(PRICING_SUMMARY, dist, algorithm="two_phase")
    print(f"\ncluster (two_phase): same {outcome.num_groups} rows in "
          f"{outcome.elapsed_seconds:.3f}s simulated")

    # 3. Out-of-core file executor (real disk I/O).
    _table, query = parse_query(PRICING_SUMMARY)
    with tempfile.TemporaryDirectory() as directory:
        rows, stats = file_backed_aggregate(dist, query, directory)
    print(f"out-of-core: same {len(rows)} rows, "
          f"{stats['pages_read']} real pages read")
    agree = (
        sorted(local.rows) == sorted(outcome.rows) == rows
        or len(local) == outcome.num_groups == len(rows)
    )
    print(f"\nall three executors agree: {agree}")

    # Duplicate elimination, the paper's other extreme.
    distinct = run_sql("SELECT DISTINCT orderkey FROM lineitem", dist,
                       algorithm="adaptive_repartitioning")
    print(f"\nSELECT DISTINCT orderkey: {distinct.num_groups} orders "
          f"(selectivity {distinct.num_groups / len(dist):.2f}) in "
          f"{distinct.elapsed_seconds:.3f}s — the A-Rep sweet spot")


if __name__ == "__main__":
    main()
