#!/usr/bin/env python3
"""Regenerate every paper table and figure in one run.

Writes results/<figure>.{csv,txt} and prints each series with an ASCII
chart — the terminal equivalent of flipping through the paper's
evaluation section.  The pytest benchmarks do the same with shape
assertions; this script is the human-facing tour.

Run:  python examples/reproduce_all.py        (~2-4 minutes)
      python examples/reproduce_all.py --fast (analytical figures only)
"""

import sys
import time

from repro.bench import degraded, figures, memory_pressure
from repro.bench.harness import format_table, write_results
from repro.bench.plotting import render_chart

ANALYTICAL = [
    ("table1", figures.table1),
    ("fig1", figures.figure1),
    ("fig2", figures.figure2),
    ("fig3", figures.figure3),
    ("fig4", figures.figure4),
    ("fig5", figures.figure5),
    ("fig6", figures.figure6),
    ("fig7", figures.figure7),
]
SIMULATED = [
    ("fig8", figures.figure8),
    ("fig9", figures.figure9),
    ("skew_input", figures.input_skew_study),
    ("degraded_straggler", degraded.straggler_sweep),
    ("degraded_crash", degraded.crash_sweep),
    ("memory_pressure", memory_pressure.budget_sweep),
]


def main() -> None:
    fast = "--fast" in sys.argv
    targets = ANALYTICAL + ([] if fast else SIMULATED)
    for name, runner in targets:
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        write_results(result, "results")
        print(format_table(result))
        if name != "table1":
            try:
                print(render_chart(result, log_y=name in ("fig1", "fig2")))
            except ValueError:
                pass  # non-numeric series (e.g. winner columns)
        print(f"[{name} regenerated in {elapsed:.1f}s -> "
              f"results/{name}.csv]\n")
    print(f"done: {len(targets)} tables/figures regenerated.")


if __name__ == "__main__":
    main()
