#!/usr/bin/env python3
"""Data skew study (Section 6): where adaptive beats the best traditional.

Output skew — equal tuples per node but very unequal *group* counts — is
the scenario where per-node adaptation wins outright: the group-rich
nodes switch to repartitioning (avoiding spill I/O) while the
single-group nodes keep cheap local aggregation.  No static algorithm can
make that split decision.

This example reproduces the Figure 9 configuration (4 of 8 nodes hold a
single group value each) and prints which nodes switched.

Run:  python examples/skew_study.py
"""

from repro import AggregateQuery, AggregateSpec, generate_output_skew
from repro.core.runner import default_parameters, run_algorithm

ALGORITHMS = (
    "two_phase",
    "repartitioning",
    "sampling",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)


def main() -> None:
    query = AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )
    dist = generate_output_skew(
        num_tuples=80_000, num_groups=8_000, num_nodes=8, seed=5
    )
    params = default_parameters(dist)
    per_node_groups = [
        len({r[0] for r in frag.relation.rows}) for frag in dist.fragments
    ]
    print("groups per node:", per_node_groups)
    print(f"hash table allocation M = {params.hash_table_entries} "
          "entries/node\n")

    times = {}
    for name in ALGORITHMS:
        out = run_algorithm(name, dist, query, params=params)
        times[name] = out.elapsed_seconds
        switched = sorted(
            {
                e.node
                for e in out.switch_events()
                if e.what == "switch_to_repartitioning"
            }
        )
        note = f"  nodes switched to repartitioning: {switched}" \
            if switched else ""
        print(f"{name:<26} {out.elapsed_seconds:8.3f}s{note}")

    best_traditional = min(times["two_phase"], times["repartitioning"])
    a2p = times["adaptive_two_phase"]
    print(
        f"\nA-2P is {best_traditional / a2p:.2f}x faster than the best "
        "traditional algorithm:\nonly the group-rich nodes switched, the "
        "single-group nodes kept aggregating locally."
    )


if __name__ == "__main__":
    main()
