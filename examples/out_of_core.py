#!/usr/bin/env python3
"""Genuinely out-of-core aggregation over real files.

Everything else in the library measures *simulated* I/O; this example
runs the Section 2 algorithm against the operating system's file system,
like the paper's implementation did: fragments are materialized as
binary page files (100-byte tuples, 40 per 4 KB page), the bounded hash
table spools its overflow buckets to actual spill files, and the merge
produces the exact answer — verified against the in-memory reference.

Run:  python examples/out_of_core.py
"""

import os
import tempfile

from repro import AggregateQuery, AggregateSpec, generate_uniform
from repro.parallel import file_backed_aggregate, reference_aggregate


def main() -> None:
    dist = generate_uniform(
        num_tuples=50_000, num_groups=8_000, num_nodes=4, seed=11
    )
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[
            AggregateSpec("sum", "val", alias="total"),
            AggregateSpec("count", None, alias="n"),
        ],
    )
    for max_entries in (100_000, 500, 50):
        with tempfile.TemporaryDirectory() as directory:
            rows, stats = file_backed_aggregate(
                dist, query, directory, max_entries=max_entries
            )
            data_bytes = sum(
                os.path.getsize(os.path.join(directory, f))
                for f in os.listdir(directory)
                if f.endswith(".pages")
            )
        expected = reference_aggregate(dist, query)
        correct = len(rows) == len(expected)
        print(
            f"M={max_entries:>6} entries: {stats['pages_read']:5d} pages "
            f"read ({data_bytes / 1e6:.1f} MB on disk), "
            f"{stats['spill_bytes'] / 1e6:6.2f} MB spilled over "
            f"{stats['overflow_passes']:3d} overflow passes, "
            f"{len(rows)} groups, correct={correct}"
        )
    print(
        "\nShrinking the memory allocation forces the overflow-bucket "
        "machinery of Section 2\nthrough real files; the answer never "
        "changes — only the spill traffic the cost\nmodels charge as "
        "the (1 - M/(S*|R|)) terms."
    )


if __name__ == "__main__":
    main()
