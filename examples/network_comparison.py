#!/usr/bin/env python3
"""High-bandwidth vs limited-bandwidth interconnects (Figures 3 vs 4).

The paper models two networks: an SP-2-like latency-only interconnect and
a 10 Mbit shared Ethernet where all transfers serialize.  This example
runs the same workloads on both simulated networks and shows how the slow
bus moves the 2P/Rep crossover to the right — and why the Adaptive Two
Phase rule ("repartition only when memory would overflow") is the safe
default on either network.

Run:  python examples/network_comparison.py
"""

from repro import AggregateQuery, AggregateSpec, generate_uniform
from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel.params import NetworkKind

NUM_TUPLES = 40_000
NUM_NODES = 8
ALGORITHMS = ("two_phase", "repartitioning", "adaptive_two_phase")


def main() -> None:
    query = AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )
    for kind, label in (
        (NetworkKind.HIGH_BANDWIDTH, "high-bandwidth (SP-2-like)"),
        (NetworkKind.LIMITED_BANDWIDTH, "limited-bandwidth (Ethernet)"),
    ):
        print(f"=== {label} ===")
        print(f"{'groups':>8} | " + " ".join(
            f"{n[:12]:>12}" for n in ALGORITHMS
        ) + "   winner")
        for groups in (8, 400, 3200, 20_000):
            dist = generate_uniform(NUM_TUPLES, groups, NUM_NODES, seed=2)
            params = default_parameters(dist, network=kind)
            times = {}
            for name in ALGORITHMS:
                out = run_algorithm(name, dist, query, params=params)
                times[name] = out.elapsed_seconds
            winner = min(times, key=times.get)
            print(f"{groups:>8} | " + " ".join(
                f"{times[n]:11.3f}s" for n in ALGORITHMS
            ) + f"   {winner}")
        print()
    print(
        "On the fast network repartitioning becomes attractive much "
        "earlier; on the slow\nbus it only pays once Two Phase would "
        "spill — which is exactly A-2P's switch rule,\nso A-2P stays "
        "near the winner on both."
    )


if __name__ == "__main__":
    main()
