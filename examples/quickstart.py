#!/usr/bin/env python3
"""Quickstart: run every aggregation algorithm on a simulated cluster.

Generates a uniform relation spread over 8 shared-nothing nodes, runs the
same GROUP BY query through all seven algorithms (three traditional, three
adaptive, plus Graefe's optimized Two Phase), verifies each against the
sequential reference executor, and prints simulated elapsed time, network
traffic, spill I/O, and the adaptive switching events.

Run:  python examples/quickstart.py
"""

from repro import (
    AggregateQuery,
    AggregateSpec,
    ALGORITHMS,
    generate_uniform,
    run_algorithm,
)
from repro.parallel import reference_aggregate


def main() -> None:
    # A relation of 40,000 100-byte tuples with 2,000 groups, dealt
    # round-robin over 8 nodes (the paper's placement).
    dist = generate_uniform(
        num_tuples=40_000, num_groups=2_000, num_nodes=8, seed=7
    )
    query = AggregateQuery(
        group_by=["gkey"],
        aggregates=[
            AggregateSpec("sum", "val", alias="total"),
            AggregateSpec("avg", "val", alias="mean"),
            AggregateSpec("count", None, alias="n"),
        ],
    )
    expected = reference_aggregate(dist, query)
    print(f"relation: {len(dist):,} tuples on {dist.num_nodes} nodes, "
          f"{len(expected):,} groups\n")
    print(f"{'algorithm':<26} {'sim time':>9} {'MB sent':>8} "
          f"{'spill pages':>11} {'switches':>8} {'correct':>7}")
    for name in sorted(ALGORITHMS):
        out = run_algorithm(name, dist, query)
        correct = len(out.rows) == len(expected) and all(
            a[0] == b[0] and abs(a[1] - b[1]) < 1e-6
            for a, b in zip(out.rows, expected)
        )
        switches = [
            e for e in out.switch_events() if e.what.startswith("switch")
        ]
        print(
            f"{name:<26} {out.elapsed_seconds:8.3f}s "
            f"{out.metrics.total_bytes_sent / 1e6:8.2f} "
            f"{out.metrics.total_spill_pages:11.0f} "
            f"{len(switches):8d} {str(correct):>7}"
        )

    print("\nfirst three result rows:")
    for row in expected[:3]:
        print("  ", dict(zip(query.output_names(), row)))


if __name__ == "__main__":
    main()
