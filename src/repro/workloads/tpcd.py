"""A TPC-D-flavoured workload.

The paper motivates the work with TPC-D: 15 of 17 queries aggregate, and
result sizes range from 2 tuples to over a million.  This module generates a
lineitem-like table and three canned queries spanning that range:

* ``q1_pricing_summary`` — GROUP BY (returnflag, linestatus): ~6 groups,
  the Two Phase sweet spot;
* ``q_partkey_volume``   — GROUP BY partkey: high cardinality, the
  Repartitioning sweet spot;
* ``q_distinct_orders``  — duplicate elimination over orderkey: result size
  comparable to the input.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.storage.partition import round_robin_partition
from repro.storage.relation import DistributedRelation
from repro.storage.schema import Column, Schema

LINEITEM_SCHEMA = Schema(
    [
        Column("orderkey", "int"),
        Column("partkey", "int"),
        Column("suppkey", "int"),
        Column("quantity", "float"),
        Column("extendedprice", "float"),
        Column("discount", "float"),
        Column("returnflag", "str", size_bytes=1),
        Column("linestatus", "str", size_bytes=1),
        Column("pad", "str", size_bytes=42),  # bring the tuple to ~100 B
    ]
)

_RETURN_FLAGS = ("A", "N", "R")
_LINE_STATUSES = ("O", "F")


def generate_lineitem(
    num_tuples: int,
    num_nodes: int,
    seed: int = 0,
    parts_per_order: float = 4.0,
    num_parts: int | None = None,
) -> DistributedRelation:
    """A lineitem-like distributed relation, round-robin placed.

    ``parts_per_order`` controls orderkey multiplicity (how many lineitems
    share an order); ``num_parts`` the partkey domain (defaults to
    num_tuples // 2, giving a high-cardinality GROUP BY partkey).
    """
    if num_tuples < 1:
        raise ValueError("num_tuples must be positive")
    rng = np.random.default_rng(seed)
    num_orders = max(1, int(num_tuples / parts_per_order))
    if num_parts is None:
        num_parts = max(1, num_tuples // 2)
    orderkeys = rng.integers(0, num_orders, num_tuples)
    partkeys = rng.integers(0, num_parts, num_tuples)
    suppkeys = rng.integers(0, max(1, num_parts // 4), num_tuples)
    quantities = rng.uniform(1, 50, num_tuples)
    prices = rng.uniform(900, 105_000, num_tuples)
    discounts = rng.uniform(0.0, 0.1, num_tuples)
    flags = rng.integers(0, len(_RETURN_FLAGS), num_tuples)
    statuses = rng.integers(0, len(_LINE_STATUSES), num_tuples)
    rows = [
        (
            int(orderkeys[i]),
            int(partkeys[i]),
            int(suppkeys[i]),
            float(quantities[i]),
            float(prices[i]),
            float(discounts[i]),
            _RETURN_FLAGS[flags[i]],
            _LINE_STATUSES[statuses[i]],
            "",
        )
        for i in range(num_tuples)
    ]
    return DistributedRelation(
        LINEITEM_SCHEMA, round_robin_partition(rows, num_nodes)
    )


def q1_pricing_summary() -> AggregateQuery:
    """TPC-D Q1-like pricing summary: ~6 groups."""
    return AggregateQuery(
        group_by=["returnflag", "linestatus"],
        aggregates=[
            AggregateSpec("sum", "quantity", alias="sum_qty"),
            AggregateSpec("sum", "extendedprice", alias="sum_base_price"),
            AggregateSpec("avg", "quantity", alias="avg_qty"),
            AggregateSpec("avg", "extendedprice", alias="avg_price"),
            AggregateSpec("avg", "discount", alias="avg_disc"),
            AggregateSpec("count", None, alias="count_order"),
        ],
    )


def q_partkey_volume() -> AggregateQuery:
    """High-cardinality aggregation: per-part shipped volume."""
    return AggregateQuery(
        group_by=["partkey"],
        aggregates=[
            AggregateSpec("sum", "quantity", alias="volume"),
            AggregateSpec("max", "extendedprice", alias="max_price"),
        ],
    )


def q_distinct_orders() -> AggregateQuery:
    """Duplicate elimination: SELECT DISTINCT orderkey (as GROUP BY+COUNT)."""
    return AggregateQuery(
        group_by=["orderkey"],
        aggregates=[AggregateSpec("count", None, alias="lines")],
    )


TPCD_QUERIES = {
    "q1_pricing_summary": q1_pricing_summary,
    "q_partkey_volume": q_partkey_volume,
    "q_distinct_orders": q_distinct_orders,
}


def tpcd_query(name: str) -> AggregateQuery:
    """Look up one of the canned TPC-D-flavoured queries by name."""
    try:
        return TPCD_QUERIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown TPC-D query {name!r}; expected one of "
            f"{sorted(TPCD_QUERIES)}"
        ) from None
