"""Workload and data generators for the paper's evaluation.

Uniform relations (the default assumption of Sections 2–5), the two skew
families of Section 6 (input skew: unequal tuples per node; output skew:
unequal groups per node, including the exact 4-of-8-nodes scheme of
Figure 9), Zipf-distributed group frequencies, grouping-selectivity sweep
helpers, and a TPC-D-flavoured lineitem workload matching the queries the
introduction motivates.
"""

from repro.workloads.generator import (
    generate_uniform,
    generate_zipf,
    selectivity_to_groups,
)
from repro.workloads.selectivity import selectivity_sweep
from repro.workloads.skew import generate_input_skew, generate_output_skew
from repro.workloads.tpcd import (
    TPCD_QUERIES,
    generate_lineitem,
    tpcd_query,
)

__all__ = [
    "TPCD_QUERIES",
    "generate_input_skew",
    "generate_lineitem",
    "generate_output_skew",
    "generate_uniform",
    "generate_zipf",
    "selectivity_sweep",
    "selectivity_to_groups",
    "tpcd_query",
]
