"""The Section 6 skew generators.

The paper distinguishes two skew families for aggregation:

* **input skew** — same groups per node, different tuple counts per node
  (analogous to placement skew in parallel joins);
* **output skew** — same tuple count per node, different *group* counts per
  node (analogous to join product skew).

``generate_output_skew`` defaults to the exact Figure 9 configuration:
eight nodes, four of which hold a single group value each, with all the
remaining groups confined to the other four nodes.
"""

from __future__ import annotations

import numpy as np

from repro.storage.relation import DistributedRelation
from repro.storage.schema import default_schema


def generate_input_skew(
    num_tuples: int,
    num_groups: int,
    num_nodes: int,
    skew_factor: float = 4.0,
    num_skewed: int = 1,
    seed: int = 0,
    payload_bytes: int = 84,
) -> DistributedRelation:
    """Unequal tuples per node; every node sees the full group mix.

    The ``num_skewed`` nodes each receive ``skew_factor`` times the tuple
    count of a normal node, with the total fixed at ``num_tuples``.
    """
    if not 1 <= num_skewed <= num_nodes:
        raise ValueError("num_skewed must be in [1, num_nodes]")
    if skew_factor < 1:
        raise ValueError("skew_factor must be >= 1")
    if num_groups > num_tuples:
        raise ValueError("cannot have more groups than tuples")
    rng = np.random.default_rng(seed)
    # Solve: num_skewed * f * x + (num_nodes - num_skewed) * x = num_tuples.
    denom = num_skewed * skew_factor + (num_nodes - num_skewed)
    base = num_tuples / denom
    counts = [
        round(base * skew_factor) if i < num_skewed else round(base)
        for i in range(num_nodes)
    ]
    counts[-1] += num_tuples - sum(counts)  # absorb rounding drift
    if min(counts) < 0:
        raise ValueError("skew parameters produce a negative node size")

    keys = np.arange(num_tuples, dtype=np.int64) % num_groups
    rng.shuffle(keys)
    vals = rng.uniform(0.0, 100.0, num_tuples)
    rows = [(int(k), float(v), "") for k, v in zip(keys, vals)]
    parts, start = [], 0
    for count in counts:
        parts.append(rows[start : start + count])
        start += count
    return DistributedRelation(default_schema(payload_bytes), parts)


def generate_output_skew(
    num_tuples: int,
    num_groups: int,
    num_nodes: int = 8,
    num_single_group_nodes: int = 4,
    seed: int = 0,
    payload_bytes: int = 84,
) -> DistributedRelation:
    """Equal tuples per node; groups concentrated on a subset of nodes.

    The Figure 9 scheme: ``num_single_group_nodes`` nodes hold exactly one
    group value each, and the remaining ``num_groups - num_single_group_nodes``
    groups are spread round-robin over the other nodes.  Tuple counts per
    node stay equal (that is the definition of output skew).
    """
    if not 1 <= num_single_group_nodes < num_nodes:
        raise ValueError(
            "num_single_group_nodes must be in [1, num_nodes - 1]"
        )
    if num_groups <= num_single_group_nodes:
        raise ValueError(
            "need more groups than single-group nodes so the skewed nodes "
            "have something to hold"
        )
    if num_groups > num_tuples:
        raise ValueError("cannot have more groups than tuples")
    rng = np.random.default_rng(seed)
    per_node = num_tuples // num_nodes
    remainder = num_tuples - per_node * num_nodes

    parts: list[list] = []
    heavy_groups = num_groups - num_single_group_nodes
    heavy_nodes = num_nodes - num_single_group_nodes
    for node in range(num_nodes):
        count = per_node + (1 if node < remainder else 0)
        vals = rng.uniform(0.0, 100.0, count)
        if node < num_single_group_nodes:
            # This node's whole fragment is a single group value.
            keys = np.full(count, node, dtype=np.int64)
        else:
            # Spread this node's slice of the heavy groups round-robin so
            # each heavy node carries ~heavy_groups / heavy_nodes groups.
            slot = node - num_single_group_nodes
            local = np.arange(count, dtype=np.int64)
            node_groups = (
                np.arange(slot, heavy_groups, heavy_nodes, dtype=np.int64)
                + num_single_group_nodes
            )
            if len(node_groups) == 0:
                raise ValueError(
                    "not enough heavy groups to cover every heavy node"
                )
            keys = node_groups[local % len(node_groups)]
            rng.shuffle(keys)
        parts.append(
            [(int(k), float(v), "") for k, v in zip(keys, vals)]
        )
    return DistributedRelation(default_schema(payload_bytes), parts)
