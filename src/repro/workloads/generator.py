"""Uniform and Zipf relation generators.

The generated schema is the paper's evaluation tuple: a group key, one
aggregable value, and padding bringing the tuple to 100 bytes.  Group keys
are dealt so the relation contains *exactly* the requested number of
distinct groups (the experiments sweep grouping selectivity, so the group
count must be exact, not expected).

Relations are born columnar by default: the key and value arrays the
generators already build become per-fragment
:class:`~repro.storage.columnblock.ColumnBlock` columns directly
(``columnar=True``), wrapped in :class:`~repro.storage.relation.\
BlockRelation` whose ``rows`` attribute is a lazy decoding view — row
consumers (the simulator substrate, golden parity) see exactly the
tuples the legacy path built, while the mp executor ships the blocks
without ever materializing a tuple.  ``columnar=False`` keeps the
original row-tuple construction as the seed/reference path; both
produce identical rows for identical arguments.

``key_format`` turns the int group key into a dictionary-encoded string
key (e.g. ``"g{:08d}"`` gives ``g00000042``) — the str-key Figure-2
shape the columnar benchmarks sweep — built as one format per *group*,
not per tuple.
"""

from __future__ import annotations

import numpy as np

from repro.storage.columnblock import ColumnBlock, StringDictionary
from repro.storage.hashing import bucket_of
from repro.storage.partition import hash_partition, round_robin_partition
from repro.storage.relation import BlockRelation, DistributedRelation
from repro.storage.schema import Column, Schema, default_schema

_PLACEMENTS = ("round_robin", "hash", "random")
_STR_KEY_BYTES = 16


def selectivity_to_groups(selectivity: float, num_tuples: int) -> int:
    """Number of groups for a grouping selectivity S = |result|/|input|."""
    if not 0 < selectivity <= 1:
        raise ValueError("selectivity must be in (0, 1]")
    return max(1, round(selectivity * num_tuples))


def _schema_for(key_format: str | None, payload_bytes: int) -> Schema:
    """The 100-byte evaluation schema, str-keyed when ``key_format``."""
    if key_format is None:
        return default_schema(payload_bytes)
    # A 16-byte string key widens the key by 8; shrink the pad so the
    # tuple stays the paper's 100 bytes at the default payload.
    return Schema(
        [
            Column("gkey", "str", _STR_KEY_BYTES),
            Column("val", "float"),
            Column("pad", "str", max(1, payload_bytes - 8)),
        ]
    )


def _place(rows, num_nodes: int, placement: str, rng) -> list[list]:
    if placement == "round_robin":
        return round_robin_partition(rows, num_nodes)
    if placement == "hash":
        return hash_partition(rows, num_nodes, key_func=lambda r: r[0])
    if placement == "random":
        parts: list[list] = [[] for _ in range(num_nodes)]
        for row, dest in zip(rows, rng.integers(0, num_nodes, len(rows))):
            parts[dest].append(row)
        return parts
    raise ValueError(
        f"unknown placement {placement!r}; expected one of {_PLACEMENTS}"
    )


def _row_partitions(
    keys, vals, num_nodes, placement, rng, key_format
) -> list[list]:
    """The legacy per-tuple construction (``columnar=False``)."""
    if key_format is None:
        rows = [(int(k), float(v), "") for k, v in zip(keys, vals)]
    else:
        rows = [
            (key_format.format(int(k)), float(v), "")
            for k, v in zip(keys, vals)
        ]
    return _place(rows, num_nodes, placement, rng)


def _block_partitions(
    keys, vals, num_groups, num_nodes, placement, rng, schema, key_format
) -> list[BlockRelation]:
    """Columnar placement: index arrays per node, then buffer slices.

    Row-for-row identical to ``_place`` over the materialized tuples:
    round-robin deals in row order (node i gets rows ``i::N``), hash
    buckets each *group* once through the same ``stable_hash`` the
    per-row partitioner uses, and random draws the same
    ``rng.integers`` destinations.  Order within a node is preserved in
    every case, so decoded fragments match the legacy path exactly.
    """
    n = len(keys)
    if placement == "round_robin":
        idx_parts = [
            np.arange(i, n, num_nodes, dtype=np.int64)
            for i in range(num_nodes)
        ]
    elif placement == "hash":
        if key_format is None:
            lut = np.asarray(
                [bucket_of(g, num_nodes) for g in range(num_groups)],
                dtype=np.int64,
            )
        else:
            lut = np.asarray(
                [
                    bucket_of(key_format.format(g), num_nodes)
                    for g in range(num_groups)
                ],
                dtype=np.int64,
            )
        dests = lut[keys]
        idx_parts = [
            np.flatnonzero(dests == i) for i in range(num_nodes)
        ]
    elif placement == "random":
        dests = rng.integers(0, num_nodes, n)
        idx_parts = [
            np.flatnonzero(dests == i) for i in range(num_nodes)
        ]
    else:
        raise ValueError(
            f"unknown placement {placement!r}; expected one of "
            f"{_PLACEMENTS}"
        )

    # Shared per-relation dictionaries: the pad column is all-"" and the
    # key dictionary indexes group ids directly (code == group id), so
    # fragment blocks share buffers instead of re-encoding strings.
    pad_dict = StringDictionary([""])
    key_dict = None
    if key_format is not None:
        key_dict = StringDictionary(
            [key_format.format(g) for g in range(num_groups)]
        )

    parts = []
    for idx in idx_parts:
        kcol = keys[idx]
        vcol = np.ascontiguousarray(vals[idx])
        pad_codes = np.zeros(len(idx), dtype="<i4")
        if key_format is None:
            columns = [np.ascontiguousarray(kcol), vcol, pad_codes]
            dictionaries = {2: pad_dict}
        else:
            columns = [kcol.astype("<i4"), vcol, pad_codes]
            dictionaries = {0: key_dict, 2: pad_dict}
        parts.append(
            BlockRelation(
                schema,
                ColumnBlock(schema, len(idx), columns, dictionaries),
            )
        )
    return parts


def _build(
    keys, vals, num_groups, num_nodes, placement, rng, payload_bytes,
    columnar, key_format,
) -> DistributedRelation:
    schema = _schema_for(key_format, payload_bytes)
    if columnar:
        parts = _block_partitions(
            keys, vals, num_groups, num_nodes, placement, rng, schema,
            key_format,
        )
    else:
        parts = _row_partitions(
            keys, vals, num_nodes, placement, rng, key_format
        )
    return DistributedRelation(schema, parts)


def generate_uniform(
    num_tuples: int,
    num_groups: int,
    num_nodes: int,
    seed: int = 0,
    placement: str = "round_robin",
    payload_bytes: int = 84,
    shuffle: bool = True,
    columnar: bool = True,
    key_format: str | None = None,
) -> DistributedRelation:
    """A uniform relation: every group has (nearly) the same frequency.

    With ``shuffle=False`` group keys are dealt round-robin over tuples,
    which combined with round-robin placement gives each node an identical
    group mix — the paper's idealized uniform case.  With ``shuffle=True``
    (default) tuple order is randomized first, the realistic variant.

    ``columnar=True`` (default) emits block-born fragments;
    ``columnar=False`` materializes row tuples first (the seed path).
    Both decode to identical rows.  ``key_format`` (e.g. ``"g{:08d}"``)
    formats the group id into a dictionary-encoded string key.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be at least 1")
    if num_groups > num_tuples:
        raise ValueError(
            f"cannot have {num_groups} groups in {num_tuples} tuples"
        )
    rng = np.random.default_rng(seed)
    keys = np.arange(num_tuples, dtype=np.int64) % num_groups
    if shuffle:
        rng.shuffle(keys)
    vals = rng.uniform(0.0, 100.0, num_tuples)
    return _build(
        keys, vals, num_groups, num_nodes, placement, rng, payload_bytes,
        columnar, key_format,
    )


def generate_zipf(
    num_tuples: int,
    num_groups: int,
    num_nodes: int,
    alpha: float = 1.2,
    seed: int = 0,
    placement: str = "round_robin",
    payload_bytes: int = 84,
    columnar: bool = True,
    key_format: str | None = None,
) -> DistributedRelation:
    """A relation whose group frequencies follow a (truncated) Zipf law.

    Every group in ``range(num_groups)`` appears at least once so the true
    group count stays exact; the remaining tuples are drawn Zipf(alpha).
    ``columnar``/``key_format`` behave as in :func:`generate_uniform`.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be at least 1")
    if num_groups > num_tuples:
        raise ValueError(
            f"cannot have {num_groups} groups in {num_tuples} tuples"
        )
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_groups + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()
    extra = num_tuples - num_groups
    drawn = rng.choice(num_groups, size=extra, p=probs)
    keys = np.concatenate([np.arange(num_groups, dtype=np.int64), drawn])
    rng.shuffle(keys)
    vals = rng.uniform(0.0, 100.0, num_tuples)
    return _build(
        keys, vals, num_groups, num_nodes, placement, rng, payload_bytes,
        columnar, key_format,
    )
