"""Uniform and Zipf relation generators.

The generated schema is the paper's evaluation tuple: a group key, one
aggregable value, and padding bringing the tuple to 100 bytes.  Group keys
are dealt so the relation contains *exactly* the requested number of
distinct groups (the experiments sweep grouping selectivity, so the group
count must be exact, not expected).
"""

from __future__ import annotations

import numpy as np

from repro.storage.partition import hash_partition, round_robin_partition
from repro.storage.relation import DistributedRelation
from repro.storage.schema import default_schema

_PLACEMENTS = ("round_robin", "hash", "random")


def selectivity_to_groups(selectivity: float, num_tuples: int) -> int:
    """Number of groups for a grouping selectivity S = |result|/|input|."""
    if not 0 < selectivity <= 1:
        raise ValueError("selectivity must be in (0, 1]")
    return max(1, round(selectivity * num_tuples))


def _place(rows, num_nodes: int, placement: str, rng) -> list[list]:
    if placement == "round_robin":
        return round_robin_partition(rows, num_nodes)
    if placement == "hash":
        return hash_partition(rows, num_nodes, key_func=lambda r: r[0])
    if placement == "random":
        parts: list[list] = [[] for _ in range(num_nodes)]
        for row, dest in zip(rows, rng.integers(0, num_nodes, len(rows))):
            parts[dest].append(row)
        return parts
    raise ValueError(
        f"unknown placement {placement!r}; expected one of {_PLACEMENTS}"
    )


def generate_uniform(
    num_tuples: int,
    num_groups: int,
    num_nodes: int,
    seed: int = 0,
    placement: str = "round_robin",
    payload_bytes: int = 84,
    shuffle: bool = True,
) -> DistributedRelation:
    """A uniform relation: every group has (nearly) the same frequency.

    With ``shuffle=False`` group keys are dealt round-robin over tuples,
    which combined with round-robin placement gives each node an identical
    group mix — the paper's idealized uniform case.  With ``shuffle=True``
    (default) tuple order is randomized first, the realistic variant.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be at least 1")
    if num_groups > num_tuples:
        raise ValueError(
            f"cannot have {num_groups} groups in {num_tuples} tuples"
        )
    rng = np.random.default_rng(seed)
    keys = np.arange(num_tuples, dtype=np.int64) % num_groups
    if shuffle:
        rng.shuffle(keys)
    vals = rng.uniform(0.0, 100.0, num_tuples)
    rows = [
        (int(k), float(v), "") for k, v in zip(keys, vals)
    ]
    schema = default_schema(payload_bytes)
    return DistributedRelation(schema, _place(rows, num_nodes, placement, rng))


def generate_zipf(
    num_tuples: int,
    num_groups: int,
    num_nodes: int,
    alpha: float = 1.2,
    seed: int = 0,
    placement: str = "round_robin",
    payload_bytes: int = 84,
) -> DistributedRelation:
    """A relation whose group frequencies follow a (truncated) Zipf law.

    Every group in ``range(num_groups)`` appears at least once so the true
    group count stays exact; the remaining tuples are drawn Zipf(alpha).
    """
    if num_groups < 1:
        raise ValueError("num_groups must be at least 1")
    if num_groups > num_tuples:
        raise ValueError(
            f"cannot have {num_groups} groups in {num_tuples} tuples"
        )
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_groups + 1, dtype=np.float64)
    probs = ranks**-alpha
    probs /= probs.sum()
    extra = num_tuples - num_groups
    drawn = rng.choice(num_groups, size=extra, p=probs)
    keys = np.concatenate([np.arange(num_groups, dtype=np.int64), drawn])
    rng.shuffle(keys)
    vals = rng.uniform(0.0, 100.0, num_tuples)
    rows = [(int(k), float(v), "") for k, v in zip(keys, vals)]
    schema = default_schema(payload_bytes)
    return DistributedRelation(schema, _place(rows, num_nodes, placement, rng))
