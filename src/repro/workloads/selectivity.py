"""Grouping-selectivity sweeps.

The paper's figures sweep S logarithmically from 1/|R| (scalar aggregation)
to 0.5 (duplicate elimination where every group has two tuples).  These
helpers produce the sweep points and the exact group counts they induce for
a given relation size.
"""

from __future__ import annotations

import math

from repro.workloads.generator import selectivity_to_groups


def selectivity_sweep(
    num_tuples: int,
    points: int = 13,
    low: float | None = None,
    high: float = 0.5,
) -> list[tuple[float, int]]:
    """Log-spaced (selectivity, num_groups) pairs over the paper's range.

    ``low`` defaults to 1/num_tuples (a single group — scalar aggregation).
    Group counts are deduplicated, so fewer than ``points`` pairs may be
    returned for tiny relations.
    """
    if num_tuples < 2:
        raise ValueError("need at least two tuples to sweep selectivity")
    if points < 2:
        raise ValueError("need at least two sweep points")
    if low is None:
        low = 1.0 / num_tuples
    if not 0 < low < high <= 1:
        raise ValueError("need 0 < low < high <= 1")
    log_low, log_high = math.log10(low), math.log10(high)
    step = (log_high - log_low) / (points - 1)
    out: list[tuple[float, int]] = []
    seen: set[int] = set()
    for i in range(points):
        s = 10 ** (log_low + i * step)
        groups = selectivity_to_groups(min(s, high), num_tuples)
        if groups in seen:
            continue
        seen.add(groups)
        out.append((groups / num_tuples, groups))
    return out


def groups_sweep(num_tuples: int, points: int = 13) -> list[int]:
    """Just the group counts of :func:`selectivity_sweep`."""
    return [g for _, g in selectivity_sweep(num_tuples, points)]
