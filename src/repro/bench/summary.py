"""Build a Markdown summary of everything under results/.

After a bench run, ``python -m repro.bench.summary`` (or
``build_summary()``) collects every ``results/<figure>.csv`` into one
report — the machine-written companion to the hand-written
EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import os
import sys

_ORDER = [
    "table1",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig8_fast", "fig9",
    "skew_input", "cpu_skew", "memory", "validation",
    "sim_scaleup", "sim_speedup", "sensitivity", "modern_hardware",
    "cost_breakdown",
    "ablation_a2p_m", "ablation_arep_initseg",
    "ablation_sampling_threshold", "ablation_opt2p",
    "ablation_sort_engine", "ablation_zipf",
]


def _load_csv(path: str) -> tuple[list[str], list[list[str]]]:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, [])
        rows = list(reader)
    return header, rows


def _fmt_cell(value: str) -> str:
    try:
        number = float(value)
    except ValueError:
        return value
    if number == int(number) and abs(number) < 1e9:
        return str(int(number))
    if abs(number) < 1e-3 or abs(number) >= 1e6:
        return f"{number:.3e}"
    return f"{number:.4f}"


def _markdown_table(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "---|" * len(header))
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt_cell(v) for v in row) + " |"
        )
    return "\n".join(lines)


def build_summary(results_dir: str = "results") -> str:
    """Markdown for every figure CSV present in ``results_dir``."""
    available = {
        name[:-4]
        for name in os.listdir(results_dir)
        if name.endswith(".csv")
    }
    ordered = [n for n in _ORDER if n in available]
    ordered += sorted(available - set(_ORDER))
    sections = [
        "# Regenerated results",
        "",
        "Auto-generated from `results/*.csv` by `repro.bench.summary`; "
        "see EXPERIMENTS.md for the paper-vs-measured analysis.",
    ]
    for name in ordered:
        header, rows = _load_csv(os.path.join(results_dir, f"{name}.csv"))
        sections.append(f"\n## {name}\n")
        sections.append(_markdown_table(header, rows))
    return "\n".join(sections) + "\n"


def write_summary(
    results_dir: str = "results",
    out_path: str | None = None,
) -> str:
    """Write results/SUMMARY.md (or ``out_path``); returns the path."""
    if out_path is None:
        out_path = os.path.join(results_dir, "SUMMARY.md")
    text = build_summary(results_dir)
    with open(out_path, "w") as handle:
        handle.write(text)
    return out_path


if __name__ == "__main__":  # pragma: no cover
    directory = sys.argv[1] if len(sys.argv) > 1 else "results"
    print(write_summary(directory))
