"""Simulator-side scaling studies.

The paper's Figures 5–6 are analytical; these runners repeat the same
experiments on the event simulator (real algorithm executions), and add
the companion *speedup* experiment (fixed total data, growing machine)
that the paper leaves implicit.

Scaleup: per-node data fixed, relation grows with N — ideal is a flat
T(N)/T(N0) = 1.  Speedup: total data fixed — ideal is T(N0)/T(N) = N/N0.
"""

from __future__ import annotations

from repro.bench.figures import SIM_QUERY
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel.params import NetworkKind
from repro.workloads.generator import generate_uniform

SCALE_ALGORITHMS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)
NODE_COUNTS = (2, 4, 8, 16)


def _elapsed(name, dist, table_entries):
    # Scaling studies use the high-bandwidth network, as the paper's
    # Figures 5-6 do: a shared Ethernet bus cannot scale by definition
    # (its capacity is constant while traffic grows with N).
    params = default_parameters(
        dist,
        network=NetworkKind.HIGH_BANDWIDTH,
        hash_table_entries=table_entries,
    )
    return run_algorithm(name, dist, SIM_QUERY, params=params).elapsed_seconds


def sim_scaleup(
    tuples_per_node: int = 5_000,
    selectivity: float = 0.25,
    seed: int = 0,
) -> FigureResult:
    """Scaleup on the simulator: |R| = N · tuples_per_node, S fixed."""
    result = FigureResult(
        "sim_scaleup",
        f"Simulator scaleup, selectivity={selectivity}, "
        f"{tuples_per_node} tuples/node",
        ["num_nodes", *SCALE_ALGORITHMS],
        notes="T(2 nodes)/T(N); 1.0 is ideal",
    )
    baselines: dict[str, float] = {}
    # M fixed per node, as in the paper's scaleup setup.
    table_entries = max(16, round(tuples_per_node * 0.04))
    for n in NODE_COUNTS:
        num_tuples = tuples_per_node * n
        groups = max(1, round(selectivity * num_tuples))
        dist = generate_uniform(num_tuples, groups, n, seed=seed)
        row = [n]
        for name in SCALE_ALGORITHMS:
            elapsed = _elapsed(name, dist, table_entries)
            baselines.setdefault(name, elapsed)
            row.append(baselines[name] / elapsed)
        result.add_row(*row)
    return result


def sim_speedup(
    num_tuples: int = 40_000,
    num_groups: int = 10_000,
    seed: int = 0,
) -> FigureResult:
    """Speedup on the simulator: fixed relation, growing machine."""
    result = FigureResult(
        "sim_speedup",
        f"Simulator speedup, {num_tuples} tuples, {num_groups} groups",
        ["num_nodes", *SCALE_ALGORITHMS],
        notes="T(2 nodes)/T(N); ideal is N/2",
    )
    baselines: dict[str, float] = {}
    for n in NODE_COUNTS:
        dist = generate_uniform(num_tuples, num_groups, n, seed=seed)
        table_entries = max(16, round(num_tuples / n * 0.04))
        row = [n]
        for name in SCALE_ALGORITHMS:
            elapsed = _elapsed(name, dist, table_entries)
            baselines.setdefault(name, elapsed)
            row.append(baselines[name] / elapsed)
        result.add_row(*row)
    return result
