"""One runner per paper table/figure.

Figures 1–7 come from the Section 2–4 analytical models at the paper's own
scale (Table 1).  Figures 8–9 come from the event simulator executing the
real algorithms on a scaled-down relation (DESIGN.md documents why the
scaling preserves every crossover).  Each runner returns a
:class:`~repro.bench.harness.FigureResult`.
"""

from __future__ import annotations

from repro.bench.harness import FigureResult
from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel import model_cost
from repro.costmodel.adaptive import sampling_cost
from repro.costmodel.params import (
    NetworkKind,
    SystemParameters,
    log_selectivities,
)
from repro.costmodel.scaleup import scaleup_series
from repro.sampling.estimator import paper_sample_size
from repro.workloads.generator import generate_uniform
from repro.workloads.skew import generate_input_skew, generate_output_skew

ADAPTIVE_SET = (
    "two_phase",
    "repartitioning",
    "sampling",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)

SIM_QUERY = AggregateQuery(
    group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
)

# Figure 8/9 scale: the paper's 2M tuples shrunk 25×, hash table likewise
# (default_parameters applies the same M/|R_i| ratio automatically).
SIM_TUPLES = 80_000
SIM_NODES = 8


def table1() -> FigureResult:
    """Table 1: the analytical model's parameters."""
    p = SystemParameters.paper_default()
    result = FigureResult(
        "table1",
        "Parameters for the analytical models",
        ["symbol", "description", "value"],
    )
    result.add_row("N", "number of processors", p.num_nodes)
    result.add_row("mips", "MIPS of the processor", p.mips)
    result.add_row("R", "size of relation (bytes)", p.relation_bytes)
    result.add_row("|R|", "number of tuples in R", p.num_tuples)
    result.add_row("P", "page size (bytes)", p.page_bytes)
    result.add_row("IO", "time to read a page, seq (s)", p.io_seconds)
    result.add_row(
        "rIO", "time to read a random page (s)", p.random_io_seconds
    )
    result.add_row("p", "projectivity of aggregation", p.projectivity)
    result.add_row("t_r", "time to read a tuple (s)", p.t_r)
    result.add_row("t_w", "time to write a tuple (s)", p.t_w)
    result.add_row("t_h", "time to compute hash value (s)", p.t_h)
    result.add_row("t_a", "time to process a tuple (s)", p.t_a)
    result.add_row("t_d", "time to compute destination (s)", p.t_d)
    result.add_row("m_p", "message protocol cost/page (s)", p.m_p)
    result.add_row("m_l", "time to send a page (s)", p.m_l)
    result.add_row("M", "max hash table size (entries)", p.hash_table_entries)
    return result


def _pipeline_cost(name: str, params: SystemParameters, s: float) -> float:
    from repro.costmodel import MODEL_FUNCTIONS

    return MODEL_FUNCTIONS[name](params, s, pipeline=True).total_seconds


def figure1(points: int = 13) -> FigureResult:
    """Traditional algorithms vs selectivity, 32 nodes, both networks."""
    fast = SystemParameters.paper_default()
    slow = fast.with_(network=NetworkKind.LIMITED_BANDWIDTH)
    result = FigureResult(
        "fig1",
        "Performance of traditional algorithms (analytical, 32 nodes)",
        [
            "selectivity",
            "centralized_two_phase",
            "two_phase",
            "repartitioning_sp2",
            "repartitioning_ethernet",
        ],
        notes="repartitioning shown on both network models, as in the "
        "paper's discussion of network sensitivity",
    )
    for s in log_selectivities(fast, points):
        result.add_row(
            s,
            model_cost("centralized_two_phase", fast, s).total_seconds,
            model_cost("two_phase", fast, s).total_seconds,
            model_cost("repartitioning", fast, s).total_seconds,
            model_cost("repartitioning", slow, s).total_seconds,
        )
    return result


def figure2(points: int = 13) -> FigureResult:
    """Same algorithms inside an operator pipeline (no scan/store I/O)."""
    params = SystemParameters.paper_default()
    algorithms = ("centralized_two_phase", "two_phase", "repartitioning")
    result = FigureResult(
        "fig2",
        "Performance in an operator pipeline (analytical, no I/O)",
        ["selectivity", *algorithms],
    )
    for s in log_selectivities(params, points):
        result.add_row(
            s,
            *(_pipeline_cost(name, params, s) for name in algorithms),
        )
    return result


def figure3(points: int = 13) -> FigureResult:
    """Adaptive algorithms track the best (analytical, high bandwidth)."""
    params = SystemParameters.paper_default()
    result = FigureResult(
        "fig3",
        "Relative performance of the approaches (analytical, 32 nodes, "
        "high-bandwidth network)",
        ["selectivity", *ADAPTIVE_SET],
    )
    for s in log_selectivities(params, points):
        result.add_row(
            s,
            *(
                model_cost(name, params, s).total_seconds
                for name in ADAPTIVE_SET
            ),
        )
    return result


def figure4(points: int = 13) -> FigureResult:
    """Same series on the 8-node limited-bandwidth configuration."""
    params = SystemParameters.implementation()
    result = FigureResult(
        "fig4",
        "Performance on a low-bandwidth network (analytical, 8 nodes, "
        "2M tuples, Ethernet)",
        ["selectivity", *ADAPTIVE_SET],
    )
    for s in log_selectivities(params, points):
        result.add_row(
            s,
            *(
                model_cost(name, params, s).total_seconds
                for name in ADAPTIVE_SET
            ),
        )
    return result


def _scaleup_figure(figure: str, selectivity: float) -> FigureResult:
    params = SystemParameters.paper_default()
    result = FigureResult(
        figure,
        f"Scaleup of algorithms, selectivity = {selectivity}",
        ["num_nodes", *ADAPTIVE_SET],
        notes="scaleup normalized to the 2-node configuration; 1.0 is "
        "ideal; sampling uses the paper's 100*N crossover threshold",
    )
    series = {
        name: dict(
            (n, su) for n, _t, su in scaleup_series(name, params, selectivity)
        )
        for name in ADAPTIVE_SET
    }
    node_counts = sorted(next(iter(series.values())))
    for n in node_counts:
        result.add_row(n, *(series[name][n] for name in ADAPTIVE_SET))
    return result


def figure5() -> FigureResult:
    """Scaleup at the low-selectivity extreme (2.0e-6)."""
    return _scaleup_figure("fig5", 2.0e-6)


def figure6() -> FigureResult:
    """Scaleup at the high-selectivity extreme (0.25)."""
    return _scaleup_figure("fig6", 0.25)


def figure7(points: int = 13) -> FigureResult:
    """Sample size vs performance trade-off (32 nodes, slow network).

    Each column is the Sampling algorithm run with a different crossover
    threshold (sample size = 10x threshold); small samples misclassify the
    middle range and pay the Repartitioning network bill.
    """
    params = SystemParameters.paper_default().with_(
        network=NetworkKind.LIMITED_BANDWIDTH
    )
    thresholds = (80, 320, 1280, 5120)
    columns = [f"samp_threshold_{t}" for t in thresholds]
    result = FigureResult(
        "fig7",
        "Sample size / performance trade-off (analytical, 32 nodes, "
        "limited bandwidth)",
        ["selectivity", *columns],
        notes="sample sizes: "
        + ", ".join(str(paper_sample_size(t)) for t in thresholds),
    )
    for s in log_selectivities(params, points):
        result.add_row(
            s,
            *(
                sampling_cost(params, s, threshold=t).total_seconds
                for t in thresholds
            ),
        )
    return result


def _sim_groups_sweep(num_tuples: int) -> list[int]:
    """Group counts spanning the figures' x-axis at simulator scale."""
    sweep = [1, 8, 64, 400, 1600, 6400, 20_000]
    top = num_tuples // 2
    return [g for g in sweep if g < top] + [top]


def figure8(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """Implementation results: the event simulator on the 8-node
    Ethernet configuration (relation scaled 25x, M scaled alike)."""
    result = FigureResult(
        "fig8",
        "Relative performance of the approaches (simulator, 8 nodes, "
        "Ethernet, round-robin placement, 2KB blocks)",
        ["selectivity", "num_groups", *ADAPTIVE_SET],
        notes=f"{num_tuples} tuples over {num_nodes} nodes; paper used "
        "2M tuples on 8 SparcServers — scaled per DESIGN.md",
    )
    for groups in _sim_groups_sweep(num_tuples):
        dist = generate_uniform(num_tuples, groups, num_nodes, seed=seed)
        params = default_parameters(dist)
        row = [groups / num_tuples, groups]
        for name in ADAPTIVE_SET:
            out = run_algorithm(name, dist, SIM_QUERY, params=params)
            row.append(out.elapsed_seconds)
        result.add_row(*row)
    return result


def figure8_fast_network(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """The Figure 8 sweep on the high-bandwidth network — the simulator
    counterpart of the Figure 3 vs Figure 4 contrast.  Expect the 2P/Rep
    crossover to move left relative to the Ethernet run."""
    result = FigureResult(
        "fig8_fast",
        "Relative performance of the approaches (simulator, 8 nodes, "
        "high-bandwidth network)",
        ["selectivity", "num_groups", *ADAPTIVE_SET],
        notes="companion to fig8: same workloads, SP-2-like network",
    )
    for groups in _sim_groups_sweep(num_tuples):
        dist = generate_uniform(num_tuples, groups, num_nodes, seed=seed)
        params = default_parameters(
            dist, network=NetworkKind.HIGH_BANDWIDTH
        )
        row = [groups / num_tuples, groups]
        for name in ADAPTIVE_SET:
            out = run_algorithm(name, dist, SIM_QUERY, params=params)
            row.append(out.elapsed_seconds)
        result.add_row(*row)
    return result


def figure9(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """Output skew: 4 of 8 nodes hold one group each (simulator)."""
    result = FigureResult(
        "fig9",
        "Performance under output skew (simulator, 8 nodes, 4 "
        "single-group nodes)",
        ["num_groups", *ADAPTIVE_SET],
        notes="the adaptive algorithms beat the best traditional one "
        "because each node picks its own strategy",
    )
    for groups in (400, 1600, 6400, 20_000):
        groups = min(groups, num_tuples // 4)
        dist = generate_output_skew(
            num_tuples, groups, num_nodes=num_nodes, seed=seed
        )
        params = default_parameters(dist)
        row = [groups]
        for name in ADAPTIVE_SET:
            out = run_algorithm(name, dist, SIM_QUERY, params=params)
            row.append(out.elapsed_seconds)
        result.add_row(*row)
    return result


def input_skew_study(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """The Section 6.1 qualitative discussion, measured (simulator)."""
    result = FigureResult(
        "skew_input",
        "Performance under input skew (simulator, one node holds 4x)",
        ["num_groups", *ADAPTIVE_SET],
    )
    for groups in (8, 6400, 20_000):
        groups = min(groups, num_tuples // 4)
        dist = generate_input_skew(
            num_tuples, groups, num_nodes, skew_factor=4.0, seed=seed
        )
        params = default_parameters(dist)
        row = [groups]
        for name in ADAPTIVE_SET:
            out = run_algorithm(name, dist, SIM_QUERY, params=params)
            row.append(out.elapsed_seconds)
        result.add_row(*row)
    return result
