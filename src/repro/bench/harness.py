"""Result container and writers shared by all figure runners."""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field


@dataclass
class FigureResult:
    """One regenerated table/figure: a header, rows, and provenance notes."""

    figure: str
    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row arity {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def series(self) -> dict[str, list]:
        return {name: self.column(name) for name in self.columns}


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(result: FigureResult) -> str:
    """A fixed-width text rendering of the figure's series."""
    widths = [
        max(len(c), *(len(_fmt(row[i])) for row in result.rows))
        if result.rows
        else len(c)
        for i, c in enumerate(result.columns)
    ]
    lines = [f"== {result.figure}: {result.title} =="]
    header = "  ".join(
        c.rjust(w) for c, w in zip(result.columns, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.rows:
        lines.append(
            "  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths))
        )
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def write_results(result: FigureResult, directory: str = "results") -> str:
    """Write <figure>.csv and <figure>.txt under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    csv_path = os.path.join(directory, f"{result.figure}.csv")
    with open(csv_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    txt_path = os.path.join(directory, f"{result.figure}.txt")
    with open(txt_path, "w") as handle:
        handle.write(format_table(result) + "\n")
    return csv_path


def figure_payload(result: FigureResult) -> dict:
    """A FigureResult as a plain JSON-serializable dict."""
    return {
        "figure": result.figure,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": result.notes,
    }


def write_bench_json(
    name: str,
    tests: list[dict],
    figures: list[FigureResult],
    metrics: dict,
    directory: str = "results",
) -> str:
    """Write the machine-readable ``BENCH_<name>.json`` artifact.

    ``tests`` is a list of ``{"nodeid", "outcome", "wall_seconds"}``
    dicts (one per executed bench test), ``figures`` the FigureResults
    the module regenerated, ``metrics`` a flat metrics snapshot.  The
    document is validated against the ``repro-bench/1`` schema before
    writing, so a malformed artifact fails loudly at the producer —
    CI and downstream consumers can trust every file that exists.
    """
    from repro.obs.schema import BENCH_SCHEMA, validate_or_raise

    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "tests": tests,
        "figures": [figure_payload(fig) for fig in figures],
        "metrics": metrics,
    }
    validate_or_raise(doc, "bench", label=f"BENCH_{name}.json")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path
