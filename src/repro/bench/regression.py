"""The bench regression gate: compare BENCH artifacts against a baseline.

``results/BENCH_<name>.json`` artifacts (schema ``repro-bench/1``) have
been emitted since PR 3, but nothing consumed them — the bench
trajectory was empty and a perf regression would sail through CI.  This
module closes that loop:

``results/baseline/`` (committed)
    ``INDEX.json`` (schema ``repro-baseline/1``) naming the benches
    under gate and the regression threshold, one pinned copy of each
    ``BENCH_<name>.json``, and ``TRAJECTORY.jsonl`` — an append-only
    history of bench summaries (schema ``repro-trajectory/1`` per line).

``compare_to_baseline``
    Joins current artifacts against the pinned ones.  The reliable
    regression signal is the *figure cells*: simulated elapsed seconds
    are deterministic, so any relative increase beyond the threshold is
    a real algorithmic/model change, not noise.  Failed-test counts
    gate absolutely.  Wall-clock seconds are reported but only gated
    when an explicit ``wall_threshold`` is supplied (CI machines are
    noisy).  Decreases beyond the threshold are reported as
    improvements — visible, never fatal.

Exit semantics for the CLI (``repro bench compare``): 0 = within
threshold, 1 = regression, 2 = usage/IO error.
"""

from __future__ import annotations

import json
import os

from repro.obs.schema import (
    BASELINE_SCHEMA,
    TRAJECTORY_SCHEMA,
    validate_or_raise,
)

DEFAULT_THRESHOLD = 0.10  # 10% relative increase in a figure cell
INDEX_FILE = "INDEX.json"
TRAJECTORY_FILE = "TRAJECTORY.jsonl"

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"


class RegressionDelta:
    """One compared quantity: where it lives, both values, the verdict."""

    __slots__ = ("bench", "where", "baseline", "current", "status")

    def __init__(self, bench, where, baseline, current, status):
        self.bench = bench
        self.where = where
        self.baseline = baseline
        self.current = current
        self.status = status

    @property
    def rel_change(self) -> float:
        if self.baseline:
            return (self.current - self.baseline) / abs(self.baseline)
        return 0.0 if self.current == self.baseline else float("inf")

    def to_dict(self) -> dict:
        rel = self.rel_change
        return {
            "bench": self.bench,
            "where": self.where,
            "baseline": self.baseline,
            "current": self.current,
            "rel_change": None if rel == float("inf") else rel,
            "status": self.status,
        }


def _is_number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def load_index(baseline_dir: str) -> dict:
    """Read and validate ``results/baseline/INDEX.json``."""
    path = os.path.join(baseline_dir, INDEX_FILE)
    with open(path) as handle:
        doc = json.load(handle)
    validate_or_raise(doc, "baseline", label=path)
    return doc


def _load_bench(path: str) -> dict:
    with open(path) as handle:
        doc = json.load(handle)
    validate_or_raise(doc, "bench", label=path)
    return doc


def _figure_rows(doc: dict) -> dict:
    """{(figure, row_key): {column: numeric value}} for one bench doc."""
    cells: dict = {}
    for fig in doc.get("figures", []):
        columns = fig["columns"]
        for row in fig["rows"]:
            key = (fig["figure"], str(row[0]))
            values = {}
            for col, value in zip(columns[1:], row[1:]):
                if _is_number(value):
                    values[col] = float(value)
            cells[key] = values
    return cells


def compare_docs(
    name: str,
    baseline_doc: dict,
    current_doc: dict,
    threshold: float,
    wall_threshold: float | None = None,
) -> list[RegressionDelta]:
    """All deltas between one bench's baseline and current artifacts."""
    deltas: list[RegressionDelta] = []

    base_failed = int(baseline_doc["metrics"].get("failed", 0))
    cur_failed = int(current_doc["metrics"].get("failed", 0))
    deltas.append(
        RegressionDelta(
            name,
            "metrics.failed",
            base_failed,
            cur_failed,
            STATUS_REGRESSION if cur_failed > base_failed else STATUS_OK,
        )
    )

    base_wall = float(baseline_doc["metrics"].get("wall_seconds_total", 0.0))
    cur_wall = float(current_doc["metrics"].get("wall_seconds_total", 0.0))
    wall_status = STATUS_OK
    if wall_threshold is not None and base_wall > 0:
        if (cur_wall - base_wall) / base_wall > wall_threshold:
            wall_status = STATUS_REGRESSION
    deltas.append(
        RegressionDelta(
            name, "metrics.wall_seconds_total", base_wall, cur_wall,
            wall_status,
        )
    )

    base_cells = _figure_rows(baseline_doc)
    cur_cells = _figure_rows(current_doc)
    for key in sorted(base_cells):
        figure, row_key = key
        if key not in cur_cells:
            deltas.append(
                RegressionDelta(
                    name, f"{figure}[{row_key}]", 1.0, 0.0,
                    STATUS_REGRESSION,
                )
            )
            continue
        for col, base_value in sorted(base_cells[key].items()):
            cur_value = cur_cells[key].get(col)
            where = f"{figure}[{row_key}].{col}"
            if cur_value is None:
                deltas.append(
                    RegressionDelta(
                        name, where, base_value, 0.0, STATUS_REGRESSION
                    )
                )
                continue
            if base_value > 0:
                rel = (cur_value - base_value) / base_value
            else:
                rel = 0.0 if cur_value == base_value else float("inf")
            if rel > threshold:
                status = STATUS_REGRESSION
            elif rel < -threshold:
                status = STATUS_IMPROVED
            else:
                status = STATUS_OK
            deltas.append(
                RegressionDelta(name, where, base_value, cur_value, status)
            )
    return deltas


def compare_to_baseline(
    results_dir: str,
    baseline_dir: str,
    threshold: float | None = None,
    wall_threshold: float | None = None,
) -> tuple[list[RegressionDelta], list[str]]:
    """Compare every indexed bench; returns (deltas, missing-artifact names).

    A bench listed in the index but absent from ``results_dir`` counts
    as missing (the caller decides whether that fails the gate — CI
    does, since the benches just ran).
    """
    index = load_index(baseline_dir)
    if threshold is None:
        threshold = float(index.get("threshold", DEFAULT_THRESHOLD))
    deltas: list[RegressionDelta] = []
    missing: list[str] = []
    for name, filename in sorted(index["benches"].items()):
        baseline_doc = _load_bench(os.path.join(baseline_dir, filename))
        current_path = os.path.join(results_dir, f"BENCH_{name}.json")
        if not os.path.exists(current_path):
            missing.append(name)
            continue
        current_doc = _load_bench(current_path)
        deltas.extend(
            compare_docs(
                name, baseline_doc, current_doc, threshold, wall_threshold
            )
        )
    return deltas, missing


def has_regression(deltas: list[RegressionDelta]) -> bool:
    """True when any delta crossed the gate (improvements never do)."""
    return any(d.status == STATUS_REGRESSION for d in deltas)


def format_delta_table(
    deltas: list[RegressionDelta],
    missing: list[str] | None = None,
    only_interesting: bool = False,
) -> str:
    """A fixed-width delta table (regressions first, then improvements)."""
    order = {STATUS_REGRESSION: 0, STATUS_IMPROVED: 1, STATUS_OK: 2}
    rows = sorted(deltas, key=lambda d: (order[d.status], d.bench, d.where))
    if only_interesting:
        rows = [d for d in rows if d.status != STATUS_OK]
    lines = [
        f"{'status':<11} {'bench':<8} {'where':<44} "
        f"{'baseline':>12} {'current':>12} {'change':>8}"
    ]
    for d in rows:
        rel = d.rel_change
        rel_text = "inf" if rel == float("inf") else f"{rel:+.1%}"
        lines.append(
            f"{d.status:<11} {d.bench:<8} {d.where:<44} "
            f"{d.baseline:>12.6g} {d.current:>12.6g} {rel_text:>8}"
        )
    counts = {s: 0 for s in (STATUS_REGRESSION, STATUS_IMPROVED, STATUS_OK)}
    for d in deltas:
        counts[d.status] += 1
    lines.append(
        "summary: {} regression(s), {} improved, {} ok".format(
            counts[STATUS_REGRESSION],
            counts[STATUS_IMPROVED],
            counts[STATUS_OK],
        )
    )
    if missing:
        lines.append(
            "missing current artifacts: " + ", ".join(sorted(missing))
        )
    return "\n".join(lines)


# -- trajectory ------------------------------------------------------------


def _bench_summary(doc: dict) -> dict:
    return {
        "tests": int(doc["metrics"].get("tests", 0)),
        "failed": int(doc["metrics"].get("failed", 0)),
        "wall_seconds_total": float(
            doc["metrics"].get("wall_seconds_total", 0.0)
        ),
        "figures": int(doc["metrics"].get("figures", 0)),
    }


def trajectory_entry(label: str, bench_docs: dict[str, dict]) -> dict:
    """One ``repro-trajectory/1`` line summarizing a set of bench docs."""
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "label": label,
        "benches": {
            name: _bench_summary(doc)
            for name, doc in sorted(bench_docs.items())
        },
    }
    validate_or_raise(entry, "trajectory", label=label)
    return entry


def append_trajectory(baseline_dir: str, entry: dict) -> str:
    """Append one validated entry to the baseline's trajectory file."""
    validate_or_raise(entry, "trajectory", label="trajectory entry")
    path = os.path.join(baseline_dir, TRAJECTORY_FILE)
    with open(path, "a") as handle:
        json.dump(entry, handle, sort_keys=True)
        handle.write("\n")
    return path


def seed_baseline(
    results_dir: str,
    baseline_dir: str,
    names: list[str],
    threshold: float = DEFAULT_THRESHOLD,
    label: str = "seed",
) -> dict:
    """Create/overwrite ``baseline_dir`` from current BENCH artifacts.

    Copies each ``BENCH_<name>.json`` into the baseline directory,
    writes the index, and appends a trajectory entry so the history
    starts with the seed point.
    """
    os.makedirs(baseline_dir, exist_ok=True)
    benches: dict[str, str] = {}
    docs: dict[str, dict] = {}
    for name in names:
        source = os.path.join(results_dir, f"BENCH_{name}.json")
        doc = _load_bench(source)
        filename = f"BENCH_{name}.json"
        with open(os.path.join(baseline_dir, filename), "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        benches[name] = filename
        docs[name] = doc
    index = {
        "schema": BASELINE_SCHEMA,
        "benches": benches,
        "threshold": threshold,
    }
    validate_or_raise(index, "baseline", label=INDEX_FILE)
    with open(os.path.join(baseline_dir, INDEX_FILE), "w") as handle:
        json.dump(index, handle, indent=2, sort_keys=True)
        handle.write("\n")
    append_trajectory(baseline_dir, trajectory_entry(label, docs))
    return index
