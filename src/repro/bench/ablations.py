"""Ablation studies for the design choices DESIGN.md calls out.

1. A-2P's switch point is "hash table full" — what if the table (M) were
   smaller or bigger?  (Equivalently: switch earlier/later.)
2. A-Rep's ``init_seg`` — how long to observe before judging.
3. Sampling's crossover threshold — the simulator-side version of Fig. 7.
4. Graefe's optimized 2P vs A-2P — the Section 3.2 argument, measured.

All of these run the event simulator on the Figure 8 configuration.
"""

from __future__ import annotations

from repro.bench.figures import SIM_NODES, SIM_QUERY, SIM_TUPLES
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform


def a2p_switch_threshold(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """A-2P elapsed time vs hash-table allocation M, at mid selectivity."""
    groups = 3200
    dist = generate_uniform(num_tuples, groups, num_nodes, seed=seed)
    result = FigureResult(
        "ablation_a2p_m",
        "A-2P vs 2P across hash-table allocations "
        f"({groups} groups, {num_tuples} tuples)",
        ["table_entries", "adaptive_two_phase", "two_phase", "a2p_switched"],
        notes="A-2P switches exactly when M < groups/node; 2P spills "
        "instead",
    )
    for m in (50, 100, 200, 400, 800, 1600, 6400):
        params = default_parameters(dist, hash_table_entries=m)
        a2p = run_algorithm(
            "adaptive_two_phase", dist, SIM_QUERY, params=params
        )
        tp = run_algorithm("two_phase", dist, SIM_QUERY, params=params)
        switched = len(a2p.events_named("switch_to_repartitioning"))
        result.add_row(m, a2p.elapsed_seconds, tp.elapsed_seconds, switched)
    return result


def arep_init_seg(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """A-Rep elapsed vs init_seg, at low selectivity (switch expected)."""
    dist = generate_uniform(num_tuples, 8, num_nodes, seed=seed)
    params = default_parameters(dist)
    result = FigureResult(
        "ablation_arep_initseg",
        "A-Rep sensitivity to init_seg (8 groups: fallback is correct)",
        ["init_seg", "adaptive_repartitioning", "switched"],
        notes="larger init_seg = more tuples repartitioned before the "
        "fallback, approaching plain Repartitioning",
    )
    for init_seg in (100, 400, 1600, 6400, num_tuples // num_nodes):
        out = run_algorithm(
            "adaptive_repartitioning",
            dist,
            SIM_QUERY,
            params=params,
            init_seg=init_seg,
            arep_switch_groups=80,
        )
        switched = bool(out.events_named("switch_to_two_phase"))
        result.add_row(init_seg, out.elapsed_seconds, switched)
    return result


def sampling_threshold(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """Simulator-side Figure 7: decision quality vs crossover threshold."""
    result = FigureResult(
        "ablation_sampling_threshold",
        "Sampling algorithm vs crossover threshold (simulator)",
        ["num_groups", "threshold", "elapsed", "choice"],
    )
    for groups in (8, 3200, 40_000):
        dist = generate_uniform(num_tuples, groups, num_nodes, seed=seed)
        params = default_parameters(dist)
        for threshold in (20, 80, 320, 6400):
            out = run_algorithm(
                "sampling",
                dist,
                SIM_QUERY,
                params=params,
                sampling_threshold=threshold,
            )
            choice = out.events_named("sampling_decision")[0].detail[
                "choice"
            ]
            result.add_row(groups, threshold, out.elapsed_seconds, choice)
    return result


def optimized_vs_adaptive(
    num_tuples: int = SIM_TUPLES, num_nodes: int = SIM_NODES, seed: int = 0
) -> FigureResult:
    """Graefe's optimized 2P against A-2P across the selectivity range."""
    result = FigureResult(
        "ablation_opt2p",
        "Graefe's optimized Two Phase vs Adaptive Two Phase (simulator)",
        [
            "num_groups",
            "two_phase",
            "optimized_two_phase",
            "adaptive_two_phase",
            "opt2p_spill_pages",
            "a2p_spill_pages",
        ],
        notes="the paper argues A-2P dominates: it frees memory on switch "
        "and avoids double-processing forwarded groups",
    )
    for groups in (8, 1600, 6400, 20_000, num_tuples // 2):
        dist = generate_uniform(num_tuples, groups, num_nodes, seed=seed)
        params = default_parameters(dist)
        outs = {
            name: run_algorithm(name, dist, SIM_QUERY, params=params)
            for name in (
                "two_phase",
                "optimized_two_phase",
                "adaptive_two_phase",
            )
        }
        result.add_row(
            groups,
            outs["two_phase"].elapsed_seconds,
            outs["optimized_two_phase"].elapsed_seconds,
            outs["adaptive_two_phase"].elapsed_seconds,
            outs["optimized_two_phase"].metrics.total_spill_pages,
            outs["adaptive_two_phase"].metrics.total_spill_pages,
        )
    return result
