"""Degraded-mode benchmarks: makespan under stragglers and crashes.

The paper assumes a perfect cluster; these sweeps measure what the
fault-injection layer (``repro.sim.faults`` + ``repro.sim.recovery``)
adds on top: how the makespan of each algorithm degrades when one node
runs slow, and what a mid-query crash costs once detection and
re-execution on the survivors are included.  Two honest results fall out:
a straggler stretches every algorithm about linearly (the slow node's own
scan is the critical path — adaptivity rebalances *data*, not hardware),
and a crash costs roughly the work done so far plus a restart, so
crashing late is strictly worse than crashing early.
"""

from __future__ import annotations

import time

from repro.bench.figures import SIM_QUERY
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.obs.metrics import MetricsRegistry
from repro.parallel import multiprocessing_aggregate
from repro.sim.faults import CrashFault, FaultPlan, Straggler
from repro.workloads.generator import generate_uniform

NODES = 8
TUPLES = 16_000
GROUPS = 512
CONTENDERS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)
SLOWDOWNS = (1.0, 2.0, 4.0, 8.0)
CRASH_FRACTIONS = (0.0, 0.25, 0.5, 0.75)
CRASH_CONTENDERS = ("two_phase", "adaptive_two_phase")

# Real-process sweep: small enough to finish in seconds, large enough
# that the per-row slowdown on the straggling fragment dominates.
POOL_NODES = 4
POOL_TUPLES = 32_000
POOL_GROUPS = 64
POOL_SLOWDOWN = 30.0
POOL_MODES = ("speculation-off", "speculation-on")


def straggler_sweep() -> FigureResult:
    """Makespan vs slowdown of node 0 (everyone else at full speed)."""
    result = FigureResult(
        "degraded_straggler",
        f"Straggler: node 0 slowed k×(simulator, {NODES} nodes)",
        ["slowdown", *CONTENDERS],
        notes="slowdown=1 is the fault-free baseline",
    )
    dist = generate_uniform(TUPLES, GROUPS, NODES, seed=0)
    params = default_parameters(dist)
    for slowdown in SLOWDOWNS:
        plan = FaultPlan(stragglers=(Straggler(0, slowdown),))
        row: list = [slowdown]
        for name in CONTENDERS:
            out = run_algorithm(
                name, dist, SIM_QUERY, params=params, faults=plan
            )
            row.append(out.elapsed_seconds)
        result.add_row(*row)
    return result


def _counter(metrics: MetricsRegistry, name: str) -> int:
    try:
        return int(metrics.value(name))
    except KeyError:
        return 0


def pool_speculation_sweep() -> FigureResult:
    """Real-process makespan under a straggler, speculation off vs on.

    The sim sweeps above measure simulated seconds; this one runs the
    persistent worker pool on real processes with the same ``FaultPlan``
    machinery: one fragment slowed ``POOL_SLOWDOWN``x per row, both
    modes on the identical seed.  With speculation off the straggler is
    the critical path; with it on, the dispatcher notices the attempt
    running far past the median and re-executes the fragment on an idle
    worker (backups skip injection — they model re-execution on a
    healthy node), so the makespan collapses to roughly the fault-free
    one.  Every run is checked bit-identical to the fault-free rows.
    """
    result = FigureResult(
        "degraded_pool",
        f"Pool speculation vs a {POOL_SLOWDOWN:g}x straggler "
        f"(real processes, {POOL_NODES} fragments)",
        ["mode", "makespan_seconds", "speculations", "backup_wins"],
        notes="wall-clock seconds, same FaultPlan seed in both modes",
    )
    dist = generate_uniform(POOL_TUPLES, POOL_GROUPS, POOL_NODES, seed=0)
    plan = FaultPlan(seed=7, stragglers=(Straggler(1, POOL_SLOWDOWN),))
    baseline = multiprocessing_aggregate(
        dist, SIM_QUERY, processes=POOL_NODES
    )
    for mode, speculate in zip(POOL_MODES, (False, True)):
        metrics = MetricsRegistry()
        start = time.monotonic()
        rows = multiprocessing_aggregate(
            dist, SIM_QUERY, processes=POOL_NODES, timeout=120.0,
            faults=plan, speculate=speculate,
            speculation_multiplier=2.0, speculation_min_seconds=0.05,
            metrics=metrics,
        )
        elapsed = time.monotonic() - start
        if rows != baseline:
            raise AssertionError(
                f"{mode} run diverged from the fault-free rows"
            )
        result.add_row(
            mode,
            elapsed,
            _counter(metrics, "mp.speculative.launched"),
            _counter(metrics, "mp.speculative.backup_wins"),
        )
    return result


def crash_sweep() -> FigureResult:
    """Makespan vs when node 1 crashes (fraction of fault-free makespan).

    Fraction 0 is the no-crash baseline; fractions > 0 kill node 1 at
    that point of the baseline run, after which the survivors detect the
    death, take over the fragment, and restart — all of which the
    degraded makespan includes.
    """
    result = FigureResult(
        "degraded_crash",
        f"Crash of node 1 at t = f × baseline (simulator, {NODES} nodes)",
        ["crash_fraction", *CRASH_CONTENDERS],
        notes="fraction 0 = no crash; later crashes waste more work",
    )
    dist = generate_uniform(TUPLES, GROUPS, NODES, seed=0)
    params = default_parameters(dist)
    baselines = {
        name: run_algorithm(
            name, dist, SIM_QUERY, params=params
        ).elapsed_seconds
        for name in CRASH_CONTENDERS
    }
    for fraction in CRASH_FRACTIONS:
        row: list = [fraction]
        for name in CRASH_CONTENDERS:
            if fraction == 0.0:
                plan = FaultPlan()
            else:
                plan = FaultPlan(
                    crashes=(
                        CrashFault(1, at_time=fraction * baselines[name]),
                    )
                )
            out = run_algorithm(
                name, dist, SIM_QUERY, params=params, faults=plan
            )
            row.append(out.elapsed_seconds)
        result.add_row(*row)
    return result
