"""Terminal line charts for figure results.

The original figures are log-x line plots; this renders a FigureResult as
an ASCII chart so the whole reproduction — including its plots — works in
a terminal with no plotting dependency.  One character per series, y
scaled linearly (or log with ``log_y``), x taken from the first column
(log-scaled automatically when it spans decades).
"""

from __future__ import annotations

import math

from repro.bench.harness import FigureResult

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, round(frac * (steps - 1))))


def _axis_values(values: list[float], log: bool) -> list[float]:
    if not log:
        return values
    return [math.log10(v) for v in values]


def _spans_decades(values: list[float]) -> bool:
    positive = [v for v in values if v > 0]
    if len(positive) < 2:
        return False
    return max(positive) / min(positive) >= 100


def render_chart(
    result: FigureResult,
    width: int = 72,
    height: int = 20,
    series: list[str] | None = None,
    log_y: bool = False,
) -> str:
    """An ASCII line chart of the result's numeric series.

    The first column is the x axis; ``series`` selects y columns
    (default: every numeric column after the first).
    """
    if not result.rows:
        return f"({result.figure}: no data)"
    x_name = result.columns[0]
    xs = result.column(x_name)
    if series is None:
        series = [
            name
            for name in result.columns[1:]
            if isinstance(result.rows[0][result.columns.index(name)],
                          (int, float))
        ]
    if not series:
        raise ValueError("no numeric series to plot")
    if len(series) > len(_MARKERS):
        raise ValueError(
            f"at most {len(_MARKERS)} series per chart, got {len(series)}"
        )

    log_x = _spans_decades(xs)
    x_axis = _axis_values(xs, log_x)
    all_y = [v for name in series for v in result.column(name)]
    if log_y:
        if any(v <= 0 for v in all_y):
            raise ValueError("log_y requires positive values")
        y_for = {
            name: _axis_values(result.column(name), True)
            for name in series
        }
        y_flat = [v for vs in y_for.values() for v in vs]
    else:
        y_for = {name: result.column(name) for name in series}
        y_flat = all_y
    y_lo, y_hi = min(y_flat), max(y_flat)
    x_lo, x_hi = min(x_axis), max(x_axis)

    grid = [[" "] * width for _ in range(height)]
    for marker, name in zip(_MARKERS, series):
        for x, y in zip(x_axis, y_for[name]):
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            cell = grid[row][col]
            grid[row][col] = marker if cell == " " else "?"

    y_labels = [max(all_y), min(all_y)]
    lines = [f"{result.figure}: {result.title}"]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_labels[0]:10.3g} |"
        elif i == height - 1:
            label = f"{y_labels[1]:10.3g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_desc = f"{x_name} [{min(xs):.3g} .. {max(xs):.3g}]"
    if log_x:
        x_desc += " (log)"
    lines.append(" " * 12 + x_desc)
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * 12 + legend + ("  ?=overlap" if "?" in
                 "".join("".join(r) for r in grid) else ""))
    return "\n".join(lines)
