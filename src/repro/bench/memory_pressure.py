"""Memory-pressure benchmark: makespan and spill volume vs byte budget.

The paper's ``M`` fixes the hash-table allocation in entries; the memory
governor (``repro.resources``, docs/memory.md) instead imposes a hard
per-node *byte* budget and lets each algorithm degrade down the ladder —
stall, spill, switch.  This sweep shrinks the budget from the full
working set to a tenth of it and records what that costs: makespan grows
as spilled bytes take the place of resident partials, repartitioning
suffers least (its merge table is the only governed state), and the
adaptive algorithms convert pressure into their paper-native switch
instead of deep spill recursion.
"""

from __future__ import annotations

from repro.bench.figures import SIM_QUERY
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.resources import MemoryPolicy
from repro.workloads.generator import generate_uniform

NODES = 8
TUPLES = 16_000
GROUPS = 512
CONTENDERS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)
BUDGET_FRACTIONS = (1.0, 0.5, 0.25, 0.1)


def _working_set_bytes(dist) -> int:
    """Per-node bytes to hold every group resident as a partial."""
    bound = SIM_QUERY.bind(dist.schema)
    return GROUPS * (bound.projected_bytes + 8)


def budget_sweep() -> FigureResult:
    """Makespan and spill KB per algorithm vs budget fraction.

    The hash tables are nominally unbounded (``hash_table_entries`` far
    above the group count) so the byte budget, not the paper's ``M``, is
    what bites — pressure reaches every algorithm through the governor
    alone.
    """
    result = FigureResult(
        "memory_pressure",
        f"Byte budget = f × working set (simulator, {NODES} nodes)",
        [
            "budget_fraction",
            *CONTENDERS,
            *(f"{name}_spill_kb" for name in CONTENDERS),
        ],
        notes="fraction 1.0 = every group resident; tables unbounded "
        "in entries, so only the governor constrains memory",
    )
    dist = generate_uniform(TUPLES, GROUPS, NODES, seed=0)
    params = default_parameters(dist, hash_table_entries=10**6)
    working_set = _working_set_bytes(dist)
    for fraction in BUDGET_FRACTIONS:
        policy = MemoryPolicy(
            node_budget_bytes=max(1, int(working_set * fraction))
        )
        makespans: list[float] = []
        spill_kb: list[float] = []
        for name in CONTENDERS:
            out = run_algorithm(
                name, dist, SIM_QUERY, params=params, memory=policy
            )
            makespans.append(out.elapsed_seconds)
            spill_kb.append(out.metrics.total_mem_spill_bytes / 1024)
        result.add_row(fraction, *makespans, *spill_kb)
    return result
