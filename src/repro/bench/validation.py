"""Model-vs-simulator validation — the purpose of the paper's Section 5.

"The algorithms performed almost as expected from the analytical model."
This runner quantifies that claim for our reproduction: at each sweep
point it evaluates both the analytical model and the event simulator for
every algorithm and reports (a) the winner each predicts and (b) the
rank correlation between the two cost orderings.
"""

from __future__ import annotations

from repro.bench.figures import SIM_QUERY
from repro.bench.harness import FigureResult
from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel import model_cost
from repro.workloads.generator import generate_uniform

VALIDATED = (
    "centralized_two_phase",
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)


def _spearman(ranks_a: list[int], ranks_b: list[int]) -> float:
    n = len(ranks_a)
    if n < 2:
        return 1.0
    d2 = sum((a - b) ** 2 for a, b in zip(ranks_a, ranks_b))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def _ranks(costs: dict[str, float]) -> list[int]:
    ordered = sorted(costs, key=costs.get)
    return [ordered.index(name) for name in VALIDATED]


def model_vs_simulator(
    num_tuples: int = 40_000, num_nodes: int = 8, seed: int = 0
) -> FigureResult:
    """Winner agreement + Spearman rank correlation across the sweep."""
    result = FigureResult(
        "validation",
        "Analytical model vs event simulator (winner, regret, rank "
        "correlation per selectivity)",
        [
            "num_groups",
            "model_winner",
            "sim_winner",
            "regret",
            "rank_correlation",
        ],
        notes="regret = sim time of the model's pick / sim best — how "
        "much following the model's advice costs; both sides use the "
        "8-node Ethernet configuration",
    )
    sweep = [g for g in (1, 8, 400, 6400) if g < num_tuples // 2]
    sweep.append(num_tuples // 2)
    for groups in sweep:
        dist = generate_uniform(num_tuples, groups, num_nodes, seed=seed)
        params = default_parameters(dist)
        selectivity = groups / num_tuples
        model = {
            name: model_cost(name, params, selectivity).total_seconds
            for name in VALIDATED
        }
        sim = {
            name: run_algorithm(
                name, dist, SIM_QUERY, params=params
            ).elapsed_seconds
            for name in VALIDATED
        }
        model_winner = min(model, key=model.get)
        sim_winner = min(sim, key=sim.get)
        regret = sim[model_winner] / sim[sim_winner]
        rho = _spearman(_ranks(model), _ranks(sim))
        result.add_row(groups, model_winner, sim_winner, regret, rho)
    return result
