"""Benchmark harness: regenerate every table and figure of the paper.

``repro.bench.figures`` has one runner per figure; each returns a
:class:`~repro.bench.harness.FigureResult` whose rows are the series the
paper plots.  ``benchmarks/bench_fig*.py`` wrap these in pytest-benchmark
targets, assert the paper's qualitative shape, and write the series to
``results/``.
"""

from repro.bench.harness import FigureResult, format_table, write_results
from repro.bench.plotting import render_chart
from repro.bench import ablations, figures, scaling, validation

__all__ = [
    "FigureResult",
    "ablations",
    "figures",
    "format_table",
    "render_chart",
    "scaling",
    "validation",
    "write_results",
]
