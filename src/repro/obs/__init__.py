"""Observability: tracing, metrics registry, profiling, exporters.

The simulator, the real executors, the algorithms, the CLI and the
benchmark harness all instrument themselves through this package:

``Tracer``
    Hierarchical spans (query → node → phase → operator) plus instant
    events.  Time-domain agnostic: the simulator records simulated
    seconds, the multiprocessing executor records wall seconds.  A
    disabled tracer (``None`` everywhere, or :data:`NULL_TRACER`) is
    zero-cost: every integration point short-circuits and runs are
    bit-identical to the un-instrumented code.

``MetricsRegistry``
    Typed counter / gauge / histogram handles with a deterministic
    ``merge`` fold — the one place per-attempt counters (retries, spill
    bytes, stall seconds) are combined, instead of ad-hoc summing.

``repro.obs.export``
    Chrome ``trace_event`` JSON (loads in ``chrome://tracing`` and
    Perfetto) and a flat JSONL span log.

``repro.obs.schema``
    Dependency-free validators for the exported artifacts
    (``BENCH_*.json`` and Chrome traces), shared by tests and CI.

``repro.obs.profile``
    Worker-process self-profiling (wall/CPU time, max RSS) used by
    ``repro.parallel.mp_executor``.

``repro.obs.decisions``
    The decision ledger: every adaptive choice (sampling verdict, A-2P
    switch, A-Rep fallback) as a typed event, annotated post-hoc with
    ground truth and counterfactual model costs; rendered by
    ``repro explain``.

``repro.obs.live``
    Serving telemetry for the long-lived query service: the
    ``repro-qlog/1`` structured query log (non-blocking, drop-counting),
    the flight recorder (recent-query ring + slow-query Chrome traces),
    and Prometheus text exposition with a strict validating parser.

``repro.obs.drift``
    Predicted-vs-observed joins between the cost models' per-family
    breakdowns and measured runs (simulator or mp executor).

See ``docs/observability.md`` and ``docs/decisions.md`` for the tour.
"""

from repro.obs.decisions import (
    DecisionEvent,
    DecisionLedger,
    annotate_ground_truth,
    load_run_json,
    render_explain,
    run_artifact,
    write_run_json,
)
from repro.obs.drift import (
    DriftReport,
    compare_model_to_mp,
    compare_model_to_run,
    format_drift_table,
)
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.live import (
    PROM_CONTENT_TYPE,
    FlightRecorder,
    QueryLog,
    fingerprint,
    query_record,
    to_prometheus,
    validate_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.profile import WorkerProfile
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DecisionEvent",
    "DecisionLedger",
    "DriftReport",
    "annotate_ground_truth",
    "compare_model_to_mp",
    "compare_model_to_run",
    "format_drift_table",
    "load_run_json",
    "render_explain",
    "run_artifact",
    "write_run_json",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROM_CONTENT_TYPE",
    "QueryLog",
    "Span",
    "Tracer",
    "WorkerProfile",
    "fingerprint",
    "query_record",
    "quantile_from_buckets",
    "to_prometheus",
    "validate_prometheus",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
