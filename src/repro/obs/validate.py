"""Validate exported artifacts from the command line (used by CI).

Usage::

    python -m repro.obs.validate results/BENCH_*.json results/trace.json

File kind is sniffed from the content: a top-level ``traceEvents`` key
means Chrome trace, a ``schema`` key means bench JSON.  Exit code 0 when
every file validates, 1 otherwise (problems printed per file).
"""

from __future__ import annotations

import json
import sys

from repro.obs.schema import validate_bench_json, validate_chrome_trace


def validate_file(path: str) -> list[str]:
    """Problems in one artifact file ([] = valid)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    if isinstance(doc, dict) and "traceEvents" in doc:
        return validate_chrome_trace(doc)
    return validate_bench_json(doc)


def main(argv=None) -> int:
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print("usage: python -m repro.obs.validate <artifact.json> ...")
        return 2
    failed = 0
    for path in paths:
        problems = validate_file(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
