"""Validate exported artifacts from the command line (used by CI).

Usage::

    python -m repro.obs.validate results/BENCH_*.json results/trace.json \
        results/run.json results/baseline/INDEX.json \
        results/baseline/TRAJECTORY.jsonl

File kind is sniffed from the content: a top-level ``traceEvents`` key
means Chrome trace; a ``schema`` key selects the matching validator
(``repro-bench/1``, ``repro-run/1``, ``repro-drift/1``,
``repro-baseline/1``); ``.jsonl`` files are validated line by line, each
line dispatched on its own ``schema`` key (``repro-qlog/1`` query logs,
``repro-trajectory/1`` entries otherwise).  Exit code 0 when every file
validates, 1 otherwise (problems printed per file).
"""

from __future__ import annotations

import json
import sys

from repro.obs.schema import (
    BASELINE_SCHEMA,
    DRIFT_SCHEMA,
    QLOG_SCHEMA,
    RUN_SCHEMA,
    TRAJECTORY_SCHEMA,
    validate_baseline_index,
    validate_bench_json,
    validate_chrome_trace,
    validate_drift_json,
    validate_qlog_record,
    validate_run_json,
    validate_trajectory_entry,
)

_BY_SCHEMA = {
    RUN_SCHEMA: validate_run_json,
    DRIFT_SCHEMA: validate_drift_json,
    BASELINE_SCHEMA: validate_baseline_index,
    TRAJECTORY_SCHEMA: validate_trajectory_entry,
    QLOG_SCHEMA: validate_qlog_record,
}


def _validate_jsonl(path: str) -> list[str]:
    problems: list[str] = []
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    entries = [line for line in lines if line.strip()]
    if not entries:
        return ["no entries"]
    for i, line in enumerate(entries):
        try:
            doc = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {i + 1}: invalid JSON: {exc}")
            continue
        validator = validate_trajectory_entry
        if isinstance(doc, dict) and doc.get("schema") in _BY_SCHEMA:
            validator = _BY_SCHEMA[doc["schema"]]
        problems.extend(f"line {i + 1}: {p}" for p in validator(doc))
    return problems


def validate_file(path: str) -> list[str]:
    """Problems in one artifact file ([] = valid)."""
    if path.endswith(".jsonl"):
        return _validate_jsonl(path)
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    if isinstance(doc, dict) and "traceEvents" in doc:
        return validate_chrome_trace(doc)
    if isinstance(doc, dict) and doc.get("schema") in _BY_SCHEMA:
        return _BY_SCHEMA[doc["schema"]](doc)
    return validate_bench_json(doc)


def main(argv=None) -> int:
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print("usage: python -m repro.obs.validate <artifact.json> ...")
        return 2
    failed = 0
    for path in paths:
        problems = validate_file(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {path}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
