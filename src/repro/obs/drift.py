"""Predicted-vs-observed drift: where the 1995 cost model diverges.

The analytical models (Sections 2–4) predict per-node elapsed seconds in
four resource families (``repro.costmodel.report``); the simulator and
the real multiprocessing executor *measure* where time actually went.
This module joins the two sides and emits ``predicted_vs_observed``
records with relative-error figures — the quantitative answer to "does
the cost model still describe this system?".

Observed family seconds come from the simulator's per-node tagged time
breakdown (``NodeMetrics.tagged_seconds``): scan/store/sample I/O maps
to ``base_io``, spill I/O to ``overflow_io``, all per-tuple and protocol
CPU to ``cpu``.  The network family is the shared bus occupancy
(``network_busy_seconds``) — the same quantity the limited-bandwidth
model charges.  Because the models assume perfectly parallel nodes, the
observed per-node families are averaged across nodes.

Per-phase span durations from a tracer ride along in the report
(``phase_seconds``) so drift can be localized to the scan, merge or
sampling phase rather than just a family total.

``DriftReport.into_registry`` publishes one relative-error gauge per
family (``drift.<algorithm>.<family>.rel_error``) so drift is a
first-class metric, not just a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel import model_cost
from repro.costmodel.report import FAMILIES, family_breakdown

DRIFT_SCHEMA = "repro-drift/1"

# Simulator time tags -> resource families.  Tags not listed (fault
# retries, memory stalls, retransmit waits) are degradation costs the
# 1995 model has no concept of; they are reported separately as
# ``unmodeled`` rather than polluting a family's error figure.
_TAG_FAMILY = {
    "scan_io": "base_io",
    "store_io": "base_io",
    "sample_io": "base_io",
    "io_read": "base_io",
    "io_write": "base_io",
    "spill_io": "overflow_io",
}
_UNMODELED_TAGS = ("fault_io_retry", "mem_stall", "retransmit_wait")


def observed_family_seconds(metrics) -> dict[str, float]:
    """Mean per-node seconds by resource family, from a ClusterMetrics.

    Every tagged second is assigned to exactly one family (CPU by
    default, matching :func:`repro.costmodel.report.classify_component`'s
    fall-through), except the explicitly unmodeled degradation tags.
    """
    families = dict.fromkeys(FAMILIES, 0.0)
    families["unmodeled"] = 0.0
    num_nodes = max(1, metrics.num_nodes)
    for node in metrics.nodes:
        for tag, seconds in node.tagged_seconds.items():
            if tag in _UNMODELED_TAGS:
                families["unmodeled"] += seconds
            else:
                families[_TAG_FAMILY.get(tag, "cpu")] += seconds
    for family in families:
        families[family] /= num_nodes
    families["network"] = metrics.network_busy_seconds
    return families


def predicted_family_seconds(
    algorithm: str, params, selectivity: float
) -> dict[str, float]:
    """The model's per-family prediction for one algorithm/selectivity."""
    return family_breakdown(model_cost(algorithm, params, selectivity))


@dataclass
class DriftRecord:
    """One family's predicted-vs-observed comparison."""

    family: str
    predicted_seconds: float
    observed_seconds: float

    @property
    def abs_error(self) -> float:
        return self.observed_seconds - self.predicted_seconds

    @property
    def rel_error(self) -> float:
        """(observed - predicted) / predicted; observed/eps when pred=0."""
        if self.predicted_seconds > 0:
            return self.abs_error / self.predicted_seconds
        return 0.0 if self.observed_seconds == 0 else float("inf")

    def to_dict(self) -> dict:
        rel = self.rel_error
        return {
            "family": self.family,
            "predicted_seconds": self.predicted_seconds,
            "observed_seconds": self.observed_seconds,
            "abs_error": self.abs_error,
            "rel_error": None if rel == float("inf") else rel,
        }


@dataclass
class DriftReport:
    """The full predicted-vs-observed join for one run."""

    algorithm: str
    selectivity: float
    substrate: str  # "sim" or "mp"
    records: list[DriftRecord] = field(default_factory=list)
    predicted_total: float = 0.0
    observed_total: float = 0.0
    unmodeled_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_rel_error(self) -> float:
        if self.predicted_total > 0:
            return (
                self.observed_total - self.predicted_total
            ) / self.predicted_total
        return 0.0 if self.observed_total == 0 else float("inf")

    def record_for(self, family: str) -> DriftRecord:
        for record in self.records:
            if record.family == family:
                return record
        raise KeyError(f"no drift record for family {family!r}")

    def to_dict(self) -> dict:
        total_rel = self.total_rel_error
        return {
            "schema": DRIFT_SCHEMA,
            "algorithm": self.algorithm,
            "selectivity": self.selectivity,
            "substrate": self.substrate,
            "predicted_vs_observed": [r.to_dict() for r in self.records],
            "predicted_total_seconds": self.predicted_total,
            "observed_total_seconds": self.observed_total,
            "total_rel_error": (
                None if total_rel == float("inf") else total_rel
            ),
            "unmodeled_seconds": self.unmodeled_seconds,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
        }

    def into_registry(self, registry) -> None:
        """Publish per-family relative-error gauges into a registry."""
        prefix = f"drift.{self.algorithm}"
        for record in self.records:
            rel = record.rel_error
            if rel != float("inf"):
                registry.gauge(
                    f"{prefix}.{record.family}.rel_error", mode="last"
                ).set(rel)
        total = self.total_rel_error
        if total != float("inf"):
            registry.gauge(f"{prefix}.total.rel_error", mode="last").set(
                total
            )


def compare_model_to_run(
    algorithm: str,
    params,
    selectivity: float,
    metrics,
    tracer=None,
    substrate: str = "sim",
) -> DriftReport:
    """Join the model's prediction against a simulated run's accounting.

    ``selectivity`` should be the *observed* grouping selectivity
    (true groups / |R|) so the model is judged on its cost arithmetic,
    not on a group-count estimate it never made.
    """
    predicted = predicted_family_seconds(algorithm, params, selectivity)
    observed = observed_family_seconds(metrics)
    records = [
        DriftRecord(
            family=family,
            predicted_seconds=predicted.get(family, 0.0),
            observed_seconds=observed.get(family, 0.0),
        )
        for family in FAMILIES
    ]
    report = DriftReport(
        algorithm=algorithm,
        selectivity=selectivity,
        substrate=substrate,
        records=records,
        predicted_total=sum(predicted.values()),
        observed_total=metrics.makespan,
        unmodeled_seconds=observed.get("unmodeled", 0.0),
    )
    if tracer is not None:
        report.phase_seconds = dict(
            tracer.summary().get("phase_seconds", {})
        )
    return report


def compare_model_to_mp(
    algorithm: str,
    params,
    selectivity: float,
    registry,
) -> DriftReport:
    """Join the model against a real multiprocessing run's registry.

    The mp executor measures wall seconds on modern hardware, so the
    interesting output is the *shape* of the divergence (the 1995
    parameters price I/O and messages at 1995 rates), quantified as one
    total relative error plus the worker-phase split.
    """
    predicted = predicted_family_seconds(algorithm, params, selectivity)
    observed_total = (
        float(registry.value("mp.elapsed_seconds"))
        if "mp.elapsed_seconds" in registry
        else 0.0
    )
    records = [
        DriftRecord(
            family=family,
            predicted_seconds=predicted.get(family, 0.0),
            # The mp executor does not attribute wall time to resource
            # families; per-family observations stay at zero and only
            # the totals line is meaningful.
            observed_seconds=0.0,
        )
        for family in FAMILIES
    ]
    report = DriftReport(
        algorithm=algorithm,
        selectivity=selectivity,
        substrate="mp",
        records=records,
        predicted_total=sum(predicted.values()),
        observed_total=observed_total,
    )
    for phase in ("local", "merge"):
        name = f"mp.phase_seconds.{phase}"
        if name in registry:
            report.phase_seconds[phase] = float(registry.value(name))
    return report


def format_drift_table(report: DriftReport) -> str:
    """A fixed-width predicted-vs-observed table for terminals."""
    lines = [
        "== drift: {} ({}; selectivity {:.6g}) ==".format(
            report.algorithm, report.substrate, report.selectivity
        ),
        f"{'family':<12} {'predicted':>12} {'observed':>12} {'rel_error':>10}",
    ]
    rows = list(report.records) + [
        DriftRecord(
            "total", report.predicted_total, report.observed_total
        )
    ]
    for record in rows:
        rel = record.rel_error
        rel_text = "inf" if rel == float("inf") else f"{rel:+.1%}"
        lines.append(
            f"{record.family:<12} {record.predicted_seconds:>11.4f}s "
            f"{record.observed_seconds:>11.4f}s {rel_text:>10}"
        )
    if report.unmodeled_seconds:
        lines.append(
            f"unmodeled degradation time (faults/stalls): "
            f"{report.unmodeled_seconds:.4f}s"
        )
    if report.phase_seconds:
        lines.append("observed phase seconds:")
        for name, seconds in report.phase_seconds.items():
            lines.append(f"  {name:<24} {seconds:9.4f}s")
    return "\n".join(lines)
