"""Hierarchical span tracing for simulated and real executions.

A :class:`Tracer` records *spans* (named intervals with a category and a
parent) and *instants* (point events) on integer *tracks*.  Track ``-1``
is the cluster-wide track (the query span lives there); track ``i >= 0``
is node / fragment ``i``.  The tracer is time-domain agnostic — callers
pass explicit timestamps, so the simulator traces in simulated seconds
while the multiprocessing executor traces in wall seconds (the exporter
only cares that they are seconds).

The span hierarchy is maintained with one open-span stack per track:
``begin`` pushes, ``end`` pops, and ``complete`` records a closed span
under the current stack top without pushing.  That yields the
query → node → phase → operator tree the exporters rely on.

``time_offset`` shifts every recorded timestamp and ``track_map``
renumbers non-negative tracks at record time; the recovery layer sets
both between attempts so a multi-attempt run exports as one coherent
timeline (attempt 2 starting where attempt 1's crash was detected, with
each surviving sim node's spans on its *original* node's track).

Disabled tracing must cost nothing: pass ``tracer=None`` (every
integration point guards with ``if tracer is not None``) or use the
shared :data:`NULL_TRACER`, whose methods are no-ops returning a
singleton null span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

QUERY = "query"
NODE = "node"
PHASE = "phase"
OPERATOR = "operator"


@dataclass
class Span:
    """One named interval on one track (``end`` is None while open)."""

    span_id: int
    parent_id: int | None
    name: str
    cat: str
    track: int
    start: float
    end: float | None = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class Tracer:
    """Collects spans and instant events from one traced execution.

    ``operator_spans=False`` suppresses the per-request operator spans
    the simulator emits (they dominate span counts on large runs) while
    keeping query/node/phase structure and instants.
    """

    enabled = True

    def __init__(self, operator_spans: bool = True) -> None:
        self.operator_spans = operator_spans
        self.spans: list[Span] = []
        self.instants: list[dict] = []
        self.time_offset = 0.0
        self.track_map: dict[int, int] = {}
        self._stacks: dict[int, list[Span]] = {}
        self._next_id = 1

    # -- recording ----------------------------------------------------------

    def _map(self, track: int) -> int:
        if track < 0 or not self.track_map:
            return track
        return self.track_map.get(track, track)

    def _parent_of(self, track: int) -> Span | None:
        stack = self._stacks.get(track)
        if stack:
            return stack[-1]
        # An empty node track hangs off whatever is open cluster-wide
        # (normally the query span).
        cluster = self._stacks.get(-1)
        if track != -1 and cluster:
            return cluster[-1]
        return None

    def begin(
        self,
        name: str,
        track: int = -1,
        t: float = 0.0,
        cat: str = PHASE,
        parent: Span | None = None,
        **args,
    ) -> Span:
        """Open a span and push it on its track's stack."""
        track = self._map(track)
        if parent is None:
            parent = self._parent_of(track)
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            cat=cat,
            track=track,
            start=t + self.time_offset,
            args=dict(args) if args else {},
        )
        self._next_id += 1
        self.spans.append(span)
        self._stacks.setdefault(track, []).append(span)
        return span

    def end(self, span: Span, t: float, **args) -> None:
        """Close a span (tolerates out-of-order closes of inner spans)."""
        if span.end is not None:
            return
        span.end = max(t + self.time_offset, span.start)
        if args:
            span.args.update(args)
        stack = self._stacks.get(span.track)
        if stack and span in stack:
            stack.remove(span)

    def complete(
        self,
        name: str,
        track: int,
        start: float,
        end: float,
        cat: str = OPERATOR,
        **args,
    ) -> Span:
        """Record an already-finished span (not pushed on the stack)."""
        track = self._map(track)
        parent = self._parent_of(track)
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            cat=cat,
            track=track,
            start=start + self.time_offset,
            end=end + self.time_offset,
            args=dict(args) if args else {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def instant(self, name: str, track: int, t: float, **args) -> None:
        """Record a point event (mode switch, crash, retry, ...)."""
        self.instants.append(
            {
                "name": name,
                "track": self._map(track),
                "time": t + self.time_offset,
                "args": dict(args) if args else {},
            }
        )

    # -- inspection ---------------------------------------------------------

    def current_span(self, track: int = -1) -> Span | None:
        """The innermost open span on ``track`` (after track mapping).

        Lets decision recorders link an event to the phase/operator span
        it occurred under without threading span handles through the
        algorithm bodies.
        """
        stack = self._stacks.get(self._map(track))
        if stack:
            return stack[-1]
        return None

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (empty after a clean run)."""
        return [s for s in self.spans if s.end is None]

    def close_all(self, t: float) -> None:
        """End every still-open span at ``t`` (crash/abort cleanup)."""
        for stack in self._stacks.values():
            for span in list(reversed(stack)):
                self.end(span, t)

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def spans_by_cat(self, cat: str) -> list[Span]:
        return [s for s in self.spans if s.cat == cat]

    def summary(self) -> dict:
        """Span/instant counts and per-phase total seconds (sorted)."""
        by_cat: dict[str, int] = {}
        phase_seconds: dict[str, float] = {}
        for span in self.spans:
            by_cat[span.cat] = by_cat.get(span.cat, 0) + 1
            if span.cat == PHASE and span.end is not None:
                phase_seconds[span.name] = (
                    phase_seconds.get(span.name, 0.0) + span.duration
                )
        return {
            "spans": len(self.spans),
            "instants": len(self.instants),
            "by_category": dict(sorted(by_cat.items())),
            "phase_seconds": dict(sorted(phase_seconds.items())),
        }


class _NullSpan:
    """The inert span handed out by :class:`NullTracer`."""

    __slots__ = ()


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer whose every method is a no-op (``enabled`` is False).

    Useful where an API requires *a* tracer object; hot paths should
    prefer ``tracer=None`` plus an ``is not None`` guard, which is
    cheaper still.
    """

    enabled = False
    operator_spans = False
    spans: list = []
    instants: list = []
    time_offset = 0.0
    track_map: dict = {}

    def begin(self, name, track=-1, t=0.0, cat=PHASE, parent=None, **args):
        return _NULL_SPAN

    def end(self, span, t, **args) -> None:
        pass

    def complete(self, name, track, start, end, cat=OPERATOR, **args):
        return _NULL_SPAN

    def instant(self, name, track, t, **args) -> None:
        pass

    def current_span(self, track=-1):
        return None

    def open_spans(self) -> list:
        return []

    def close_all(self, t) -> None:
        pass

    def summary(self) -> dict:
        return {
            "spans": 0,
            "instants": 0,
            "by_category": {},
            "phase_seconds": {},
        }


NULL_TRACER = NullTracer()
