"""Dependency-free schema validation for exported artifacts.

Seven artifact families leave the repo: Chrome trace JSON (``repro
trace``), ``BENCH_<name>.json`` (the benchmark harness), ``repro-run/1``
run artifacts with the decision ledger (``repro explain``),
``repro-drift/1`` predicted-vs-observed reports, the committed
``results/baseline/INDEX.json`` bench baseline, the appendable
``TRAJECTORY.jsonl`` entries, and the query service's ``repro-qlog/1``
structured query log.  CI and the tests validate all of them
with the checkers here — hand-rolled on purpose, so validation works in
any environment the code itself runs in.

Each validator returns a list of human-readable problems; an empty list
means the document conforms.  ``validate_or_raise`` wraps that in a
:class:`SchemaError` for script use (``python -m repro.obs.validate``).
"""

from __future__ import annotations

BENCH_SCHEMA = "repro-bench/1"
RUN_SCHEMA = "repro-run/1"
DRIFT_SCHEMA = "repro-drift/1"
BASELINE_SCHEMA = "repro-baseline/1"
TRAJECTORY_SCHEMA = "repro-trajectory/1"
QLOG_SCHEMA = "repro-qlog/1"

QLOG_OUTCOMES = ("served", "shed", "deadline_miss", "failed", "draining")

_CHROME_PHASES = {"X", "i", "M", "B", "E"}


class SchemaError(ValueError):
    """An artifact failed schema validation; ``problems`` lists why."""

    def __init__(self, label: str, problems: list[str]) -> None:
        super().__init__(
            f"{label}: {len(problems)} schema problem(s): "
            + "; ".join(problems[:5])
            + ("; ..." if len(problems) > 5 else "")
        )
        self.problems = problems


def _number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate_chrome_trace(doc) -> list[str]:
    """Problems in a Chrome trace_event JSON document ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object with a traceEvents array"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in _CHROME_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: name must be a string")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if ph in ("X", "i", "B", "E"):
            if not _number(ev.get("ts")):
                problems.append(f"{where}: ts must be a number")
            elif ev["ts"] < 0:
                problems.append(f"{where}: ts must be non-negative")
        if ph == "X":
            if not _number(ev.get("dur")):
                problems.append(f"{where}: dur must be a number")
            elif ev["dur"] < 0:
                problems.append(f"{where}: dur must be non-negative")
        if ph == "M" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: metadata event needs args")
    return problems


def validate_bench_json(doc) -> list[str]:
    """Problems in a BENCH_<name>.json document ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        problems.append("name must be a non-empty string")
    tests = doc.get("tests")
    if not isinstance(tests, list):
        problems.append("tests must be a list")
        tests = []
    for i, t in enumerate(tests):
        where = f"tests[{i}]"
        if not isinstance(t, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(t.get("nodeid"), str):
            problems.append(f"{where}: nodeid must be a string")
        if not isinstance(t.get("outcome"), str):
            problems.append(f"{where}: outcome must be a string")
        if not _number(t.get("wall_seconds")) or t["wall_seconds"] < 0:
            problems.append(
                f"{where}: wall_seconds must be a non-negative number"
            )
    figures = doc.get("figures")
    if not isinstance(figures, list):
        problems.append("figures must be a list")
        figures = []
    for i, fig in enumerate(figures):
        where = f"figures[{i}]"
        if not isinstance(fig, dict):
            problems.append(f"{where} is not an object")
            continue
        columns = fig.get("columns")
        if not (
            isinstance(columns, list)
            and all(isinstance(c, str) for c in columns)
        ):
            problems.append(f"{where}: columns must be a list of strings")
            continue
        if not isinstance(fig.get("figure"), str):
            problems.append(f"{where}: figure must be a string")
        rows = fig.get("rows")
        if not isinstance(rows, list):
            problems.append(f"{where}: rows must be a list")
            continue
        for j, row in enumerate(rows):
            if not isinstance(row, (list, tuple)):
                problems.append(f"{where}.rows[{j}] is not a list")
            elif len(row) != len(columns):
                problems.append(
                    f"{where}.rows[{j}] arity {len(row)} != "
                    f"{len(columns)} columns"
                )
    if not isinstance(doc.get("metrics"), dict):
        problems.append("metrics must be an object")
    return problems


def validate_run_json(doc) -> list[str]:
    """Problems in a ``repro-run/1`` decision-ledger artifact ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != RUN_SCHEMA:
        problems.append(
            f"schema must be {RUN_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("algorithm"), str) or not doc.get("algorithm"):
        problems.append("algorithm must be a non-empty string")
    if not _number(doc.get("elapsed_seconds")) or doc["elapsed_seconds"] < 0:
        problems.append("elapsed_seconds must be a non-negative number")
    num_groups = doc.get("num_groups")
    if not isinstance(num_groups, int) or isinstance(num_groups, bool):
        problems.append("num_groups must be an integer")
    elif num_groups < 0:
        problems.append("num_groups must be non-negative")
    if not isinstance(doc.get("params"), dict):
        problems.append("params must be an object")
    if not isinstance(doc.get("metrics"), dict):
        problems.append("metrics must be an object")
    decisions = doc.get("decisions")
    if not isinstance(decisions, list):
        problems.append("decisions must be a list")
        decisions = []
    for i, event in enumerate(decisions):
        where = f"decisions[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(event.get("kind"), str) or not event.get("kind"):
            problems.append(f"{where}: kind must be a non-empty string")
        node = event.get("node")
        if not isinstance(node, int) or isinstance(node, bool):
            problems.append(f"{where}: node must be an integer")
        if not _number(event.get("time")) or event["time"] < 0:
            problems.append(f"{where}: time must be a non-negative number")
        for key in ("data", "truth"):
            if not isinstance(event.get(key), dict):
                problems.append(f"{where}: {key} must be an object")
        span_id = event.get("span_id")
        if span_id is not None and (
            not isinstance(span_id, int) or isinstance(span_id, bool)
        ):
            problems.append(f"{where}: span_id must be an integer or null")
    return problems


def validate_drift_json(doc) -> list[str]:
    """Problems in a ``repro-drift/1`` report ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != DRIFT_SCHEMA:
        problems.append(
            f"schema must be {DRIFT_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("algorithm"), str) or not doc.get("algorithm"):
        problems.append("algorithm must be a non-empty string")
    if doc.get("substrate") not in ("sim", "mp"):
        problems.append(
            f"substrate must be 'sim' or 'mp', got {doc.get('substrate')!r}"
        )
    if not _number(doc.get("selectivity")):
        problems.append("selectivity must be a number")
    for key in ("predicted_total_seconds", "observed_total_seconds"):
        if not _number(doc.get(key)) or doc[key] < 0:
            problems.append(f"{key} must be a non-negative number")
    records = doc.get("predicted_vs_observed")
    if not isinstance(records, list):
        problems.append("predicted_vs_observed must be a list")
        records = []
    for i, record in enumerate(records):
        where = f"predicted_vs_observed[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(record.get("family"), str):
            problems.append(f"{where}: family must be a string")
        for key in ("predicted_seconds", "observed_seconds"):
            if not _number(record.get(key)) or record[key] < 0:
                problems.append(
                    f"{where}: {key} must be a non-negative number"
                )
        rel = record.get("rel_error")
        if rel is not None and not _number(rel):
            problems.append(f"{where}: rel_error must be a number or null")
    if not isinstance(doc.get("phase_seconds"), dict):
        problems.append("phase_seconds must be an object")
    return problems


def validate_baseline_index(doc) -> list[str]:
    """Problems in a ``results/baseline/INDEX.json`` document ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != BASELINE_SCHEMA:
        problems.append(
            f"schema must be {BASELINE_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        problems.append("benches must be a non-empty object")
        benches = {}
    for name, filename in benches.items():
        if not isinstance(filename, str) or not filename.endswith(".json"):
            problems.append(
                f"benches[{name!r}] must be a .json filename, "
                f"got {filename!r}"
            )
    threshold = doc.get("threshold")
    if threshold is not None and (
        not _number(threshold) or threshold <= 0
    ):
        problems.append("threshold must be a positive number or absent")
    return problems


def validate_trajectory_entry(doc) -> list[str]:
    """Problems in one ``TRAJECTORY.jsonl`` line ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["entry must be an object"]
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        problems.append(
            f"schema must be {TRAJECTORY_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("label"), str) or not doc.get("label"):
        problems.append("label must be a non-empty string")
    benches = doc.get("benches")
    if not isinstance(benches, dict) or not benches:
        problems.append("benches must be a non-empty object")
        benches = {}
    for name, summary in benches.items():
        where = f"benches[{name!r}]"
        if not isinstance(summary, dict):
            problems.append(f"{where} is not an object")
            continue
        for key in ("tests", "failed"):
            value = summary.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{where}: {key} must be an integer")
        if not _number(summary.get("wall_seconds_total")):
            problems.append(f"{where}: wall_seconds_total must be a number")
    return problems


def validate_qlog_record(doc) -> list[str]:
    """Problems in one ``repro-qlog/1`` query-log line ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["record must be an object"]
    if doc.get("schema") != QLOG_SCHEMA:
        problems.append(
            f"schema must be {QLOG_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    query_id = doc.get("query_id")
    if not isinstance(query_id, int) or isinstance(query_id, bool):
        problems.append("query_id must be an integer")
    elif query_id < 0:
        problems.append("query_id must be non-negative")
    fingerprint = doc.get("sql_fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        problems.append("sql_fingerprint must be a non-empty string")
    if doc.get("outcome") not in QLOG_OUTCOMES:
        problems.append(
            f"outcome must be one of {QLOG_OUTCOMES}, "
            f"got {doc.get('outcome')!r}"
        )
    for key in ("queue_wait_seconds", "elapsed_seconds"):
        if not _number(doc.get(key)) or doc[key] < 0:
            problems.append(f"{key} must be a non-negative number")
    exec_seconds = doc.get("exec_seconds")
    if exec_seconds is not None and (
        not _number(exec_seconds) or exec_seconds < 0
    ):
        problems.append(
            "exec_seconds must be a non-negative number or null"
        )
    for key in ("rung", "strategy"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"{key} must be a non-empty string")
    if not isinstance(doc.get("cache_hit"), bool):
        problems.append("cache_hit must be a boolean")
    retries = doc.get("retries")
    if not isinstance(retries, int) or isinstance(retries, bool):
        problems.append("retries must be an integer")
    elif retries < 0:
        problems.append("retries must be non-negative")
    for key in ("error", "reason"):
        value = doc.get(key)
        if value is not None and not isinstance(value, str):
            problems.append(f"{key} must be a string or null")
    return problems


def validate_or_raise(doc, kind: str, label: str = "document") -> None:
    """Raise :class:`SchemaError` if ``doc`` fails the ``kind`` check."""
    validators = {
        "chrome": validate_chrome_trace,
        "bench": validate_bench_json,
        "run": validate_run_json,
        "drift": validate_drift_json,
        "baseline": validate_baseline_index,
        "trajectory": validate_trajectory_entry,
        "qlog": validate_qlog_record,
    }
    problems = validators[kind](doc)
    if problems:
        raise SchemaError(label, problems)
