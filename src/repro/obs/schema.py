"""Dependency-free schema validation for exported artifacts.

Two artifact families leave the repo: Chrome trace JSON (``repro trace``,
the CLI) and ``BENCH_<name>.json`` (the benchmark harness).  CI and the
tests validate both with the checkers here — hand-rolled on purpose, so
validation works in any environment the code itself runs in.

Each validator returns a list of human-readable problems; an empty list
means the document conforms.  ``validate_or_raise`` wraps that in a
:class:`SchemaError` for script use (``python -m repro.obs.validate``).
"""

from __future__ import annotations

BENCH_SCHEMA = "repro-bench/1"

_CHROME_PHASES = {"X", "i", "M", "B", "E"}


class SchemaError(ValueError):
    """An artifact failed schema validation; ``problems`` lists why."""

    def __init__(self, label: str, problems: list[str]) -> None:
        super().__init__(
            f"{label}: {len(problems)} schema problem(s): "
            + "; ".join(problems[:5])
            + ("; ..." if len(problems) > 5 else "")
        )
        self.problems = problems


def _number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate_chrome_trace(doc) -> list[str]:
    """Problems in a Chrome trace_event JSON document ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object with a traceEvents array"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in _CHROME_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: name must be a string")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if ph in ("X", "i", "B", "E"):
            if not _number(ev.get("ts")):
                problems.append(f"{where}: ts must be a number")
            elif ev["ts"] < 0:
                problems.append(f"{where}: ts must be non-negative")
        if ph == "X":
            if not _number(ev.get("dur")):
                problems.append(f"{where}: dur must be a number")
            elif ev["dur"] < 0:
                problems.append(f"{where}: dur must be non-negative")
        if ph == "M" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: metadata event needs args")
    return problems


def validate_bench_json(doc) -> list[str]:
    """Problems in a BENCH_<name>.json document ([] = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        problems.append("name must be a non-empty string")
    tests = doc.get("tests")
    if not isinstance(tests, list):
        problems.append("tests must be a list")
        tests = []
    for i, t in enumerate(tests):
        where = f"tests[{i}]"
        if not isinstance(t, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(t.get("nodeid"), str):
            problems.append(f"{where}: nodeid must be a string")
        if not isinstance(t.get("outcome"), str):
            problems.append(f"{where}: outcome must be a string")
        if not _number(t.get("wall_seconds")) or t["wall_seconds"] < 0:
            problems.append(
                f"{where}: wall_seconds must be a non-negative number"
            )
    figures = doc.get("figures")
    if not isinstance(figures, list):
        problems.append("figures must be a list")
        figures = []
    for i, fig in enumerate(figures):
        where = f"figures[{i}]"
        if not isinstance(fig, dict):
            problems.append(f"{where} is not an object")
            continue
        columns = fig.get("columns")
        if not (
            isinstance(columns, list)
            and all(isinstance(c, str) for c in columns)
        ):
            problems.append(f"{where}: columns must be a list of strings")
            continue
        if not isinstance(fig.get("figure"), str):
            problems.append(f"{where}: figure must be a string")
        rows = fig.get("rows")
        if not isinstance(rows, list):
            problems.append(f"{where}: rows must be a list")
            continue
        for j, row in enumerate(rows):
            if not isinstance(row, (list, tuple)):
                problems.append(f"{where}.rows[{j}] is not a list")
            elif len(row) != len(columns):
                problems.append(
                    f"{where}.rows[{j}] arity {len(row)} != "
                    f"{len(columns)} columns"
                )
    if not isinstance(doc.get("metrics"), dict):
        problems.append("metrics must be an object")
    return problems


def validate_or_raise(doc, kind: str, label: str = "document") -> None:
    """Raise :class:`SchemaError` if ``doc`` fails the ``kind`` check."""
    validators = {
        "chrome": validate_chrome_trace,
        "bench": validate_bench_json,
    }
    problems = validators[kind](doc)
    if problems:
        raise SchemaError(label, problems)
