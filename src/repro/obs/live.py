"""Always-on serving telemetry: query log, flight recorder, Prometheus.

PR 3's tracer/metrics were built for one-shot batch runs — collect,
export, exit.  The long-lived query service needs the complement:
telemetry that is readable *while the process is alive* and cheap enough
to leave on.  Three pieces:

``QueryLog``
    One JSONL line per admission outcome (``repro-qlog/1``, see
    :mod:`repro.obs.schema`).  The request thread never touches the
    disk: ``record`` appends to a bounded in-memory queue under a lock
    and a daemon writer thread drains it.  When the queue is full the
    record is *dropped and counted* — backpressure from a slow disk
    must never stall admission.

``FlightRecorder``
    A ring buffer of the last N query records plus auto-captured Chrome
    traces for queries slower than a threshold, served at
    ``GET /debug/queries`` and ``GET /debug/trace/<query_id>`` so a
    slow query can be reconstructed after the fact without restarting
    the server with tracing on.

``to_prometheus`` / ``validate_prometheus``
    Text exposition (format 0.0.4) of a :class:`MetricsRegistry`
    snapshot — counters, gauges, and cumulative ``_bucket{le="..."}``
    histograms — plus a strict parser used by tests and the CI storm
    job to reject malformed output (duplicate families, non-monotone
    buckets, cumulative counts that go backwards).

Everything here is stdlib-only and safe under ``ThreadingHTTPServer``'s
one-thread-per-request model.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
import threading
from collections import OrderedDict, deque

from repro.obs.export import to_chrome_trace
from repro.obs.schema import QLOG_SCHEMA

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PROM_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_PROM_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)\Z"
)
_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def fingerprint(sql: str) -> str:
    """A short stable fingerprint of a SQL text.

    Normalizes case and whitespace so trivially reformatted queries
    share a fingerprint, then hashes — the query log carries this
    instead of the raw SQL, keeping lines short and grep-able
    (``grep` `<fp>`` finds every run of the same statement).
    """
    normalized = " ".join(sql.split()).lower()
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:12]


def query_record(
    *,
    query_id: int,
    sql: str,
    outcome: str,
    queue_wait_seconds: float,
    elapsed_seconds: float,
    exec_seconds=None,
    rung: str = "full",
    strategy: str = "pool",
    cache_hit: bool = False,
    retries: int = 0,
    error=None,
    reason=None,
) -> dict:
    """Build one ``repro-qlog/1`` record (see ``validate_qlog_record``)."""
    return {
        "schema": QLOG_SCHEMA,
        "query_id": query_id,
        "sql_fingerprint": fingerprint(sql),
        "outcome": outcome,
        "queue_wait_seconds": queue_wait_seconds,
        "elapsed_seconds": elapsed_seconds,
        "exec_seconds": exec_seconds,
        "rung": rung,
        "strategy": strategy,
        "cache_hit": cache_hit,
        "retries": retries,
        "error": error,
        "reason": reason,
    }


class QueryLog:
    """Non-blocking JSONL writer with a bounded queue and drop counting.

    ``record`` serializes the dict, appends it to an in-memory queue
    under a lock and returns immediately; a daemon thread appends the
    lines to ``path``.  A full queue drops the record and increments
    ``dropped`` — the caller finds out from the return value and the
    ``svc.qlog.dropped`` counter, never from latency.

    ``autostart=False`` leaves the writer thread unstarted (records
    accumulate and, past ``capacity``, drop) — used by tests to exercise
    the drop path deterministically; ``close`` then drains the queue
    synchronously.
    """

    def __init__(self, path, capacity: int = 1024,
                 autostart: bool = True) -> None:
        capacity = int(capacity)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.path = str(path)
        self.capacity = capacity
        self._queue: deque[str] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._writing = False
        self._dropped = 0
        self._written = 0
        self._thread = None
        if autostart:
            self.start()

    def start(self) -> None:
        """Start the writer thread (idempotent)."""
        with self._cond:
            if self._thread is not None or self._closed:
                return
            self._thread = threading.Thread(
                target=self._run, name="qlog-writer", daemon=True
            )
            self._thread.start()

    def record(self, record: dict) -> bool:
        """Enqueue one record; False (and a drop count) if full/closed."""
        line = json.dumps(record, sort_keys=True)
        with self._cond:
            if self._closed or len(self._queue) >= self.capacity:
                self._dropped += 1
                return False
            self._queue.append(line)
            self._cond.notify_all()
            return True

    @property
    def dropped(self) -> int:
        with self._cond:
            return self._dropped

    @property
    def written(self) -> int:
        with self._cond:
            return self._written

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until every enqueued record reached the file (or timeout)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._queue and not self._writing, timeout
            )

    def close(self) -> None:
        """Stop accepting records, drain the queue, join the writer."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._cond.notify_all()
        if thread is not None:
            thread.join(timeout=5.0)
        else:
            self._drain_once()

    def _drain_once(self) -> None:
        with self._cond:
            batch = list(self._queue)
            self._queue.clear()
        if not batch:
            return
        with open(self.path, "a", encoding="utf-8") as out:
            for line in batch:
                out.write(line + "\n")
        with self._cond:
            self._written += len(batch)
            self._cond.notify_all()

    def _run(self) -> None:
        with open(self.path, "a", encoding="utf-8") as out:
            while True:
                with self._cond:
                    while not self._queue and not self._closed:
                        self._cond.wait(0.5)
                    batch = list(self._queue)
                    self._queue.clear()
                    closed = self._closed
                    self._writing = bool(batch)
                for line in batch:
                    out.write(line + "\n")
                if batch:
                    out.flush()
                with self._cond:
                    self._written += len(batch)
                    self._writing = False
                    self._cond.notify_all()
                    if closed and not self._queue:
                        return


class FlightRecorder:
    """Ring buffer of recent query records + traces of the slow ones.

    ``note`` stores every record in a ``deque(maxlen=entries)`` and,
    when the query's elapsed time clears ``slow_threshold_seconds`` and
    a live tracer was passed, captures its Chrome trace into a bounded
    map (oldest trace evicted past ``trace_entries``).  A threshold of
    ``None`` disables trace capture; ``0.0`` traces everything.
    """

    def __init__(self, entries: int = 128, trace_entries: int = 16,
                 slow_threshold_seconds=1.0) -> None:
        entries = int(entries)
        trace_entries = int(trace_entries)
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if trace_entries < 0:
            raise ValueError(
                f"trace_entries must be non-negative, got {trace_entries}"
            )
        if slow_threshold_seconds is not None and slow_threshold_seconds < 0:
            raise ValueError(
                "slow_threshold_seconds must be non-negative or None, "
                f"got {slow_threshold_seconds}"
            )
        self.entries = entries
        self.trace_entries = trace_entries
        self.slow_threshold_seconds = slow_threshold_seconds
        self._records: deque[dict] = deque(maxlen=entries)
        self._traces: OrderedDict[int, dict] = OrderedDict()
        self._lock = threading.Lock()

    def note(self, record: dict, tracer=None) -> bool:
        """Store a record; True if a slow-query trace was captured."""
        trace = None
        threshold = self.slow_threshold_seconds
        if (
            tracer is not None
            and getattr(tracer, "enabled", False)
            and getattr(tracer, "spans", None)
            and threshold is not None
            and self.trace_entries > 0
            and record.get("elapsed_seconds", 0.0) >= threshold
        ):
            trace = to_chrome_trace(
                tracer, process_name=f"query-{record.get('query_id')}"
            )
        with self._lock:
            self._records.append(dict(record))
            if trace is not None:
                self._traces[record["query_id"]] = trace
                while len(self._traces) > self.trace_entries:
                    self._traces.popitem(last=False)
        return trace is not None

    def queries(self, limit=None) -> list[dict]:
        """The most recent records, newest first."""
        with self._lock:
            records = list(self._records)
        records.reverse()
        if limit is not None:
            records = records[: max(0, int(limit))]
        return records

    def trace(self, query_id: int):
        """The captured Chrome trace for ``query_id``, or None."""
        with self._lock:
            return self._traces.get(query_id)

    def trace_ids(self) -> list[int]:
        """Query ids with a captured trace, oldest first."""
        with self._lock:
            return list(self._traces)


def _prom_name(name: str) -> str:
    sanitized = _PROM_SANITIZE_RE.sub("_", name)
    if not sanitized or not _PROM_NAME_RE.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(source) -> str:
    """Prometheus text exposition (0.0.4) of a registry or snapshot.

    ``source`` is a :class:`MetricsRegistry` or the dict its
    ``snapshot()`` returns.  Dotted handle names sanitize to the
    Prometheus charset (``svc.latency_seconds`` →
    ``svc_latency_seconds``); a sanitization collision appends a
    numeric suffix so no family is emitted twice.  Histograms emit the
    cumulative ``_bucket{le="..."}`` series ending in ``+Inf``, plus
    ``_sum`` and ``_count``.
    """
    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    lines: list[str] = []
    used: set[str] = set()
    for name in sorted(snapshot):
        entry = snapshot[name]
        prom = _prom_name(name)
        candidate, suffix = prom, 2
        while candidate in used:
            candidate = f"{prom}_{suffix}"
            suffix += 1
        prom = candidate
        used.add(prom)
        kind = entry.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(float(bound))}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{prom}_bucket{{le="+Inf"}} {entry["count"]}'
            )
            lines.append(f"{prom}_sum {_prom_value(entry['total'])}")
            lines.append(f"{prom}_count {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_le(labels: str):
    match = re.match(r'le="(?P<le>[^"]*)"\Z', labels or "")
    if match is None:
        return None
    raw = match.group("le")
    if raw == "+Inf":
        return math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def validate_prometheus(text: str) -> list[str]:
    """Problems in a Prometheus 0.0.4 exposition ([] = valid).

    Strict on purpose — the CI storm job scrapes a live server and any
    concurrency bug (duplicate family from a name collision, a torn
    histogram whose cumulative counts run backwards, ``+Inf`` bucket
    disagreeing with ``_count``) must fail the build, not scrape as
    garbage metrics.
    """
    problems: list[str] = []
    families: dict[str, str] = {}
    seen_samples: set[str] = set()
    hist_buckets: dict[str, list[tuple[float, float]]] = {}
    hist_counts: dict[str, float] = {}
    for i, line in enumerate(text.splitlines()):
        where = f"line {i + 1}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"{where}: malformed TYPE line")
                    continue
                _, _, family, kind = parts
                if not _PROM_NAME_RE.match(family):
                    problems.append(
                        f"{where}: invalid family name {family!r}"
                    )
                if kind not in _PROM_TYPES:
                    problems.append(f"{where}: unknown type {kind!r}")
                if family in families:
                    problems.append(f"{where}: duplicate family {family!r}")
                families[family] = kind
            continue
        match = _PROM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"{where}: unparseable sample {line!r}")
            continue
        name, labels = match.group("name"), match.group("labels")
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"{where}: unparseable value {match.group('value')!r}"
            )
            continue
        key = f"{name}{{{labels or ''}}}"
        if key in seen_samples:
            problems.append(f"{where}: duplicate sample {key}")
        seen_samples.add(key)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and families.get(base) == "histogram":
                family = base
                break
        if family not in families:
            problems.append(
                f"{where}: sample {name!r} has no preceding TYPE line"
            )
            continue
        if families[family] == "histogram":
            if name == family + "_bucket":
                le = _parse_le(labels)
                if le is None:
                    problems.append(
                        f"{where}: bucket sample needs a le label"
                    )
                    continue
                hist_buckets.setdefault(family, []).append((le, value))
            elif name == family + "_count":
                hist_counts[family] = value
        elif labels:
            problems.append(
                f"{where}: unexpected labels on {families[family]} "
                f"sample {name!r}"
            )
    for family, buckets in sorted(hist_buckets.items()):
        les = [le for le, _ in buckets]
        counts = [count for _, count in buckets]
        if les != sorted(les) or len(set(les)) != len(les):
            problems.append(
                f"histogram {family!r}: le bounds not strictly increasing"
            )
        if counts != sorted(counts):
            problems.append(
                f"histogram {family!r}: cumulative bucket counts decrease"
            )
        if not les or les[-1] != math.inf:
            problems.append(
                f"histogram {family!r}: missing +Inf bucket"
            )
        elif family in hist_counts and counts[-1] != hist_counts[family]:
            problems.append(
                f"histogram {family!r}: +Inf bucket {counts[-1]} != "
                f"count {hist_counts[family]}"
            )
    for family, kind in sorted(families.items()):
        if kind != "histogram" and not any(
            key == f"{family}{{}}" or key.startswith(f"{family}{{")
            for key in seen_samples
        ):
            problems.append(f"family {family!r} declared but has no samples")
    return problems
