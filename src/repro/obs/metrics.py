"""A typed metrics registry with a deterministic fold.

The simulator's :class:`~repro.sim.metrics.NodeMetrics` /
:class:`~repro.sim.metrics.ClusterMetrics` are purpose-built dataclasses;
the fault layer, the memory governor and the mp executor each grew their
own counters on top.  ``MetricsRegistry`` is the unifying container:
every number is a named :class:`Counter`, :class:`Gauge` or
:class:`Histogram` handle, snapshots are JSON-serializable and sorted
(deterministic), and ``merge`` defines *once* how per-attempt values fold
into a run total — counters add, gauges combine per their declared mode,
histograms merge bucket-wise.  ``from_cluster_metrics`` adapts a
simulated run's accounting into the registry so simulator and
real-executor runs can be compared handle-for-handle.

Every handle is safe under concurrent writers: the query service's
``ThreadingHTTPServer`` gives each request its own thread and they all
share one registry, so ``Counter.inc``'s read-modify-write,
``Gauge.set``'s compare-and-fold and ``Histogram.observe``'s
multi-field update each run under a per-metric lock, and ``snapshot`` /
``merge`` read each metric atomically (a snapshot never shows a
histogram whose ``count`` disagrees with ``sum(counts)``).  The locks
are uncontended in one-shot batch runs, where the cost is one
``threading.Lock`` acquire per update.
"""

from __future__ import annotations

import math
import threading

_MODES = ("last", "max", "min", "sum")

DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def quantile_from_buckets(bounds, counts, q, overflow_value=None):
    """Estimate the ``q``-quantile of a bucketed distribution.

    ``bounds`` are the bucket upper bounds, ``counts`` the per-bucket
    tallies with one extra trailing overflow bucket (the
    :class:`Histogram` layout, which the JSON ``snapshot`` preserves —
    so ``repro top`` can estimate tail latency from a scraped snapshot
    without the live object).  Returns the upper bound of the bucket
    the target rank falls in: a conservative (pessimistic) estimate,
    deterministic given the counts.  An empty distribution returns 0.0;
    a rank landing in the overflow bucket returns ``overflow_value``
    (the observed max, when the caller tracked one) or the last finite
    bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total <= 0:
        return 0.0
    # Rank of the q-quantile among `total` ordered observations,
    # 1-based; q=0 maps to the first observation.
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank:
            return bound
    return overflow_value if overflow_value is not None else bounds[-1]


class Counter:
    """A monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n=1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value with a declared fold mode.

    ``mode`` decides how two observations of the same gauge combine in
    ``MetricsRegistry.merge``: "last" (overwrite), "max", "min", "sum".
    High-water marks are ``mode="max"``; makespans folded across
    recovery attempts are ``mode="last"``.
    """

    __slots__ = ("name", "value", "mode", "_set", "_lock")

    def __init__(self, name: str, mode: str = "last") -> None:
        if mode not in _MODES:
            raise ValueError(f"gauge mode must be one of {_MODES}")
        self.name = name
        self.mode = mode
        self.value = 0.0
        self._set = False
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            if not self._set:
                self.value = value
                self._set = True
                return
            if self.mode == "last":
                self.value = value
            elif self.mode == "max":
                self.value = max(self.value, value)
            elif self.mode == "min":
                self.value = min(self.value, value)
            else:
                self.value += value


class Histogram:
    """A fixed-bucket distribution (durations, sizes).

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min",
                 "max", "_lock")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Conservative ``q``-quantile estimate from the bucket counts
        (the p50/p95/p99 behind ``repro top`` and the bench gate)."""
        with self._lock:
            return quantile_from_buckets(
                self.buckets, self.counts, q, overflow_value=self.max
            )


class MetricsRegistry:
    """Named typed handles; get-or-create, snapshot, deterministic merge."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, mode: str = "last") -> Gauge:
        gauge = self._get(name, Gauge, lambda: Gauge(name, mode))
        if gauge.mode != mode:
            raise ValueError(
                f"gauge {name!r} registered with mode {gauge.mode!r}, "
                f"requested {mode!r}"
            )
        return gauge

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def value(self, name: str):
        """Shortcut: a counter's or gauge's current value."""
        with self._lock:
            metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read its fields")
        return metric.value

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (the one blessed fold).

        Counters add, gauges combine by their mode, histograms combine
        bucket-wise (bucket layouts must match).  Deterministic: the
        result depends only on the two registries' contents.  Each
        source metric is copied out under its own lock before being
        folded in under the target's, so no two metric locks are ever
        held together (two registries may merge into each other
        concurrently without deadlock).
        """
        with other._lock:
            names = sorted(other._metrics)
            metrics = [other._metrics[name] for name in names]
        for name, metric in zip(names, metrics):
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                with metric._lock:
                    was_set, value = metric._set, metric.value
                mine = self.gauge(name, metric.mode)
                if was_set:
                    mine.set(value)
            else:
                with metric._lock:
                    counts = list(metric.counts)
                    count, total = metric.count, metric.total
                    lo, hi = metric.min, metric.max
                mine = self.histogram(name, metric.buckets)
                if mine.buckets != metric.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket layouts differ"
                    )
                with mine._lock:
                    for i, c in enumerate(counts):
                        mine.counts[i] += c
                    mine.count += count
                    mine.total += total
                    for bound_attr, theirs in (("min", lo), ("max", hi)):
                        if theirs is None:
                            continue
                        ours = getattr(mine, bound_attr)
                        if ours is None:
                            setattr(mine, bound_attr, theirs)
                        else:
                            pick = min if bound_attr == "min" else max
                            setattr(mine, bound_attr, pick(ours, theirs))

    def snapshot(self) -> dict:
        """A JSON-serializable, sorted view of every handle.

        Each metric is read under its own lock, so a histogram entry is
        internally consistent (``count == sum(counts)``) even while
        request threads keep observing.
        """
        with self._lock:
            names = sorted(self._metrics)
            metrics = [self._metrics[name] for name in names]
        out: dict[str, dict] = {}
        for name, metric in zip(names, metrics):
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {
                    "type": "gauge",
                    "mode": metric.mode,
                    "value": metric.value,
                }
            else:
                with metric._lock:
                    out[name] = {
                        "type": "histogram",
                        "count": metric.count,
                        "total": metric.total,
                        "min": metric.min,
                        "max": metric.max,
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                    }
        return out

    @classmethod
    def from_cluster_metrics(
        cls, metrics, prefix: str = "sim"
    ) -> "MetricsRegistry":
        """Adapt a :class:`ClusterMetrics` into typed handles.

        Every scattered counter family — timing, I/O, network, fault
        recovery, memory governor — lands under one namespace, so two
        runs (or a simulated and a real one) compare handle-for-handle.
        """
        reg = cls()
        reg.gauge(f"{prefix}.makespan_seconds").set(metrics.makespan)
        reg.gauge(f"{prefix}.degraded_makespan_seconds").set(
            metrics.degraded_makespan
        )
        reg.gauge(f"{prefix}.skew_ratio").set(metrics.skew_ratio())
        reg.gauge(f"{prefix}.network_busy_seconds", mode="sum").set(
            metrics.network_busy_seconds
        )
        reg.counter(f"{prefix}.network_blocks").inc(metrics.network_blocks)
        reg.gauge(f"{prefix}.mem_high_water_bytes", mode="max").set(
            metrics.max_mem_high_water_bytes
        )
        reg.gauge(f"{prefix}.peak_table_entries", mode="sum").set(
            metrics.total_peak_table_entries
        )
        counters = {
            "retries": "total_retries",
            "timeouts": "total_timeouts",
            "reexecuted_tuples": "total_reexecuted_tuples",
            "messages_sent": "total_messages",
            "bytes_sent": "total_bytes_sent",
            "mem_spill_bytes": "total_mem_spill_bytes",
        }
        for short, attr in counters.items():
            reg.counter(f"{prefix}.{short}").inc(getattr(metrics, attr))
        reg.counter(f"{prefix}.crashed_nodes").inc(
            len(metrics.crashed_nodes)
        )
        reg.gauge(f"{prefix}.mem_stall_seconds", mode="sum").set(
            metrics.total_mem_stall_seconds
        )
        spill_pages = reg.counter(f"{prefix}.spill_pages")
        duplicates = reg.counter(f"{prefix}.duplicates_dropped")
        busy = reg.histogram(f"{prefix}.node_busy_seconds")
        for node in metrics.nodes:
            spill_pages.inc(round(node.spill_pages))
            duplicates.inc(node.duplicates_dropped)
            busy.observe(node.busy_seconds)
        for rung, count in sorted(metrics.mem_ladder_rungs.items()):
            reg.counter(f"{prefix}.ladder.{rung}").inc(count)
        return reg
