"""The decision ledger: every adaptive choice, typed and auditable.

The paper's contribution is *decisions made at query evaluation time* —
Samp's estimate-vs-threshold choice, A-2P's per-node overflow switch,
A-Rep's end-of-phase broadcast.  PR 3's tracer shows *when* phases ran;
this module records *why* the run took the shape it did:

``DecisionLedger``
    An opt-in sink (threaded through the engine exactly like the
    tracer — ``ledger=None`` keeps every run bit-identical) collecting
    one :class:`DecisionEvent` per adaptive choice.  Each event carries
    the node, the simulated time, the decision's inputs (estimate,
    threshold, tuples seen, table fill, memory rung, ``initSeg``
    counts…) and, when a tracer is attached, the id of the span it was
    made inside.

``annotate_ground_truth``
    Post-hoc enrichment: once a run finishes, the *true* group count is
    known, so every decision can be judged — estimate error, which
    branch the truth would have picked, and the counterfactual cost of
    the branch not taken (via the Section 2–4 analytical models).  Each
    judged event gets a verdict: ``correct``, ``wrong_but_cheap`` (the
    decision disagreed with the truth but the chosen branch's model
    cost was no worse), or ``wrong_and_costly``.

``run_artifact`` / ``load_run_json``
    A ``repro-run/1`` JSON artifact bundling the ledger with the run's
    metrics and parameters, so ``repro explain <run.json>`` can render
    the report long after the process that ran the query is gone.

See ``docs/decisions.md`` for the schema and report format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

RUN_SCHEMA = "repro-run/1"

# Decision kinds with first-class annotation support.  Anything else a
# node records still lands in the ledger verbatim — the ledger is a log,
# not a whitelist.
SAMPLING_DECISION = "sampling_decision"
A2P_SWITCH = "switch_to_repartitioning"
AREP_SWITCH = "switch_to_two_phase"
AREP_ECHO = "end_of_phase_received"
OPT2P_FORWARD = "forwarded_on_overflow"
PREAGG_EVICTIONS = "evictions"
SPECULATIVE_EXECUTION = "speculative_execution"
# The mp executor's strategy="auto" arbitration between partitioned 2P
# and the shared global hash table (repro.costmodel.globalhash).
MP_STRATEGY_CHOICE = "mp_strategy_choice"
# The mid-run re-estimate of that choice: after the first K fragments
# complete, the executor re-runs the cost model on *observed* group
# cardinality and may flip global <-> pool for the remaining fragments
# (the paper's A-2P switch, lifted to the strategy family).
MP_STRATEGY_RESAMPLE = "mp_strategy_resample"

# Service-layer decision kinds (repro.service): admission-time choices,
# logged with the same machinery as the in-query adaptive decisions so
# one ledger tells the whole robustness story.
ADMISSION_SHED = "admission_shed"
QUERY_RETRY = "query_retry"
DEADLINE_MISS = "deadline_miss"
LADDER_TRANSITION = "ladder_transition"
CACHE_SERVE = "cache_serve"

VERDICT_CORRECT = "correct"
VERDICT_WRONG_CHEAP = "wrong_but_cheap"
VERDICT_WRONG_COSTLY = "wrong_and_costly"


@dataclass
class DecisionEvent:
    """One adaptive choice made during a run.

    ``data`` holds the decision's inputs as recorded at the site;
    ``truth`` is filled in by :func:`annotate_ground_truth` after the
    run, when the real group count is known.
    """

    kind: str
    node: int
    time: float
    data: dict = field(default_factory=dict)
    span_id: int | None = None
    truth: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node,
            "time": self.time,
            "data": dict(self.data),
            "span_id": self.span_id,
            "truth": dict(self.truth),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionEvent":
        return cls(
            kind=data["kind"],
            node=int(data["node"]),
            time=float(data["time"]),
            data=dict(data.get("data") or {}),
            span_id=data.get("span_id"),
            truth=dict(data.get("truth") or {}),
        )


class DecisionLedger:
    """Collects the adaptive decisions of one run.

    Mirrors the tracer's recovery contract: ``time_offset`` shifts
    recorded times and ``track_map`` renumbers node ids, so a
    multi-attempt fault recovery logs one coherent decision history on
    the *original* node ids.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[DecisionEvent] = []
        self.time_offset = 0.0
        self.track_map: dict[int, int] = {}

    def record(
        self,
        kind: str,
        node: int,
        time: float,
        data: dict | None = None,
        span_id: int | None = None,
    ) -> DecisionEvent:
        """Append one decision event (returns it for further annotation)."""
        if node >= 0 and self.track_map:
            node = self.track_map.get(node, node)
        event = DecisionEvent(
            kind=kind,
            node=node,
            time=time + self.time_offset,
            data=dict(data) if data else {},
            span_id=span_id,
        )
        self.events.append(event)
        return event

    def events_of(self, kind: str) -> list[DecisionEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_dicts(cls, events: list[dict]) -> "DecisionLedger":
        ledger = cls()
        ledger.events = [DecisionEvent.from_dict(e) for e in events]
        return ledger


def _model_seconds(algorithm: str, params, selectivity: float) -> float | None:
    """Analytical cost of one branch at the observed selectivity."""
    from repro.costmodel import MODEL_FUNCTIONS, model_cost

    if algorithm not in MODEL_FUNCTIONS:
        return None
    return model_cost(algorithm, params, selectivity).total_seconds


def _true_selectivity(true_groups: int, params) -> float:
    sel = max(true_groups, 1) / max(params.num_tuples, 1)
    return min(max(sel, 1.0 / params.num_tuples), 1.0)


def annotate_ground_truth(
    ledger: DecisionLedger, true_groups: int, params
) -> DecisionLedger:
    """Judge every judgeable decision against the run's real group count.

    ``true_groups`` is the number of groups the query actually produced
    (``AlgorithmOutcome.num_groups``, or ``total_groups_output`` from a
    saved metrics snapshot).  Fills each event's ``truth`` dict in
    place and returns the ledger for chaining.
    """
    from repro.sampling.decision import choose_algorithm

    selectivity = _true_selectivity(true_groups, params)
    for event in ledger.events:
        truth: dict = {"true_groups": true_groups}
        if event.kind == SAMPLING_DECISION:
            estimated = float(event.data.get("estimated_groups", 0.0))
            threshold = int(event.data.get("threshold", 0))
            choice = event.data.get("choice", "")
            truth["estimate_abs_error"] = estimated - true_groups
            truth["estimate_rel_error"] = (
                (estimated - true_groups) / true_groups
                if true_groups
                else 0.0
            )
            if threshold > 0:
                truth_choice = choose_algorithm(true_groups, threshold)
                truth["truth_choice"] = truth_choice
                truth["decision_correct"] = truth_choice == choice
                alternative = (
                    "repartitioning"
                    if choice == "two_phase"
                    else "two_phase"
                )
                chosen_cost = _model_seconds(choice, params, selectivity)
                alt_cost = _model_seconds(alternative, params, selectivity)
                truth["counterfactual"] = {
                    "chosen": choice,
                    "chosen_model_seconds": chosen_cost,
                    "alternative": alternative,
                    "alternative_model_seconds": alt_cost,
                }
                if truth_choice == choice:
                    truth["verdict"] = VERDICT_CORRECT
                elif (
                    chosen_cost is not None
                    and alt_cost is not None
                    and chosen_cost <= alt_cost
                ):
                    truth["verdict"] = VERDICT_WRONG_CHEAP
                else:
                    truth["verdict"] = VERDICT_WRONG_COSTLY
        elif event.kind == A2P_SWITCH:
            capacity = event.data.get("table_entries")
            if capacity is None:
                capacity = params.hash_table_entries
            truth["table_entries"] = capacity
            # The switch is forced by a full table; it is *justified*
            # when the relation genuinely has more groups than one
            # node's table can hold.
            truth["groups_exceed_capacity"] = true_groups > capacity
            truth["verdict"] = (
                VERDICT_CORRECT
                if true_groups > capacity
                else VERDICT_WRONG_CHEAP
            )
        elif event.kind == AREP_SWITCH:
            switch_groups = event.data.get("switch_groups")
            if switch_groups is not None:
                correct = true_groups < int(switch_groups)
                truth["decision_correct"] = correct
                chosen_cost = _model_seconds(
                    "two_phase", params, selectivity
                )
                alt_cost = _model_seconds(
                    "repartitioning", params, selectivity
                )
                truth["counterfactual"] = {
                    "chosen": "two_phase",
                    "chosen_model_seconds": chosen_cost,
                    "alternative": "repartitioning",
                    "alternative_model_seconds": alt_cost,
                }
                if correct:
                    truth["verdict"] = VERDICT_CORRECT
                elif (
                    chosen_cost is not None
                    and alt_cost is not None
                    and chosen_cost <= alt_cost
                ):
                    truth["verdict"] = VERDICT_WRONG_CHEAP
                else:
                    truth["verdict"] = VERDICT_WRONG_COSTLY
        event.truth = truth
    return ledger


# -- run artifacts (``repro explain`` input) ------------------------------


def run_artifact(
    algorithm: str,
    outcome,
    ledger: DecisionLedger,
    params,
    workload: dict | None = None,
) -> dict:
    """Bundle a finished run into a ``repro-run/1`` document.

    ``outcome`` is an :class:`~repro.core.runner.AlgorithmOutcome`;
    ground truth is annotated here (the outcome knows the real group
    count), so the artifact is self-contained.
    """
    annotate_ground_truth(ledger, outcome.num_groups, params)
    return {
        "schema": RUN_SCHEMA,
        "algorithm": algorithm,
        "elapsed_seconds": outcome.elapsed_seconds,
        "num_groups": outcome.num_groups,
        "params": params.to_dict(),
        "workload": dict(workload) if workload else {},
        "decisions": ledger.to_dicts(),
        "metrics": outcome.metrics.to_dict(),
    }


def write_run_json(doc: dict, path: str) -> str:
    """Validate and write a run artifact; returns the path."""
    from repro.obs.schema import validate_or_raise

    validate_or_raise(doc, "run", label=path)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def load_run_json(path: str) -> dict:
    """Read and validate a run artifact (raises SchemaError/OSError)."""
    from repro.obs.schema import validate_or_raise

    with open(path) as handle:
        doc = json.load(handle)
    validate_or_raise(doc, "run", label=path)
    return doc


# -- the explain report ---------------------------------------------------


def _fmt_seconds(value) -> str:
    if value is None:
        return "n/a"
    return f"{value:.4f}s"


def _describe_event(event: DecisionEvent) -> list[str]:
    lines = [
        f"[{event.time:.4f}s] node {event.node}: {event.kind}"
    ]
    for key in sorted(event.data):
        lines.append(f"    {key:<24} {event.data[key]}")
    truth = event.truth
    if not truth:
        return lines
    if "estimate_rel_error" in truth:
        lines.append(
            f"    {'true_groups':<24} {truth['true_groups']}"
        )
        lines.append(
            "    {:<24} {:+.1%}".format(
                "estimate_rel_error", truth["estimate_rel_error"]
            )
        )
    if "truth_choice" in truth:
        lines.append(
            f"    {'truth_would_pick':<24} {truth['truth_choice']}"
        )
    if "groups_exceed_capacity" in truth:
        lines.append(
            "    {:<24} {} (true groups {} vs table {})".format(
                "groups_exceed_capacity",
                truth["groups_exceed_capacity"],
                truth["true_groups"],
                truth.get("table_entries"),
            )
        )
    counterfactual = truth.get("counterfactual")
    if counterfactual:
        lines.append(
            "    model cost: chosen {} = {}, alternative {} = {}".format(
                counterfactual["chosen"],
                _fmt_seconds(counterfactual["chosen_model_seconds"]),
                counterfactual["alternative"],
                _fmt_seconds(counterfactual["alternative_model_seconds"]),
            )
        )
    if "verdict" in truth:
        lines.append(f"    {'verdict':<24} {truth['verdict']}")
    return lines


def render_explain(doc: dict, drift_table: str | None = None) -> str:
    """The human-readable ``repro explain`` report for a run artifact."""
    params = doc.get("params", {})
    lines = [
        "== explain: {} on {} nodes ==".format(
            doc.get("algorithm", "?"), params.get("num_nodes", "?")
        ),
        "elapsed {:.4f}s simulated, {} groups".format(
            float(doc.get("elapsed_seconds", 0.0)),
            doc.get("num_groups", "?"),
        ),
    ]
    decisions = [
        DecisionEvent.from_dict(e) for e in doc.get("decisions", [])
    ]
    if not decisions:
        lines.append(
            "no adaptive decisions recorded (the run never had to choose)"
        )
    else:
        lines.append(f"{len(decisions)} decision(s):")
        for event in decisions:
            lines.extend(_describe_event(event))
        verdicts: dict[str, int] = {}
        for event in decisions:
            verdict = event.truth.get("verdict")
            if verdict:
                verdicts[verdict] = verdicts.get(verdict, 0) + 1
        if verdicts:
            summary = ", ".join(
                f"{count} {name}" for name, count in sorted(verdicts.items())
            )
            lines.append(f"verdicts: {summary}")
    if drift_table:
        lines.append("")
        lines.append(drift_table)
    return "\n".join(lines)
