"""Trace exporters: Chrome ``trace_event`` JSON and flat JSONL.

The Chrome format (the "JSON Array Format" of the trace_event spec) is
loadable directly in ``chrome://tracing`` and https://ui.perfetto.dev.
Mapping: every span becomes a complete ("X") event with microsecond
``ts``/``dur``; instants become "i" events; tracks become thread ids
(track -1, the cluster track, is rendered as tid 0 named "cluster", node
``i`` as tid ``i + 1`` named "node i").  Span categories and the span
tree (ids/parents) ride along in ``args`` so nothing is lost in export.

The JSONL exporter writes one JSON object per line — the grep-friendly
flat log for scripted analysis.
"""

from __future__ import annotations

import json

_US = 1e6  # seconds -> microseconds, the trace_event time unit


def _tid(track: int) -> int:
    return track + 1  # -1 (cluster) -> 0, node i -> i + 1


def to_chrome_trace(tracer, process_name: str = "repro") -> dict:
    """Build the Chrome trace dict for a finished (or aborted) trace."""
    events: list[dict] = []
    tracks = {span.track for span in tracer.spans}
    tracks.update(e["track"] for e in tracer.instants)
    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    )
    for track in sorted(tracks):
        label = "cluster" if track == -1 else f"node {track}"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": _tid(track),
                "args": {"name": label},
            }
        )
    # A span still open at export time (crashed run) is closed at the
    # trace's horizon so viewers render it instead of dropping it.
    horizon = 0.0
    for span in tracer.spans:
        horizon = max(horizon, span.start, span.end or 0.0)
    for inst in tracer.instants:
        horizon = max(horizon, inst["time"])
    for span in tracer.spans:
        end = span.end if span.end is not None else horizon
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.end is None:
            args["unfinished"] = True
        args.update(span.args)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "pid": 0,
                "tid": _tid(span.track),
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "args": args,
            }
        )
    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "name": inst["name"],
                "cat": "event",
                "pid": 0,
                "tid": _tid(inst["track"]),
                "ts": inst["time"] * _US,
                "s": "t",
                "args": dict(inst["args"]),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "time_domain": "seconds"},
    }


def write_chrome_trace(tracer, path: str, process_name: str = "repro") -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer, process_name), handle)
        handle.write("\n")
    return path


def to_jsonl(tracer) -> list[str]:
    """One JSON object per span/instant, in recording order."""
    lines = []
    for span in tracer.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "cat": span.cat,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end,
                    "args": span.args,
                },
                sort_keys=True,
            )
        )
    for inst in tracer.instants:
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "name": inst["name"],
                    "track": inst["track"],
                    "time": inst["time"],
                    "args": inst["args"],
                },
                sort_keys=True,
            )
        )
    return lines


def write_jsonl(tracer, path: str) -> str:
    """Write the flat span log to ``path``; returns the path."""
    with open(path, "w") as handle:
        for line in to_jsonl(tracer):
            handle.write(line + "\n")
    return path
