"""Worker self-profiling for the real (multiprocessing) executors.

A worker process cannot be observed from outside without platform
machinery, so it observes itself: :func:`profile_start` snapshots the
wall and CPU clocks at entry, :func:`profile_finish` turns that into a
plain dict (picklable, pipe-friendly) with wall seconds, CPU seconds and
the process's high-water RSS.  The parent wraps the dict back into a
:class:`WorkerProfile` and feeds registry histograms / tracer spans.

``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the conversion
happens *in the worker*, so the parent always sees bytes.  On platforms
without the ``resource`` module (Windows) the RSS reads as 0 rather
than failing the run.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass


def _max_rss_bytes() -> int:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(rss)
    return int(rss) * 1024


def profile_start() -> tuple[float, float]:
    """Snapshot (wall, cpu) clocks at worker entry."""
    return (time.perf_counter(), time.process_time())


def profile_finish(started: tuple[float, float]) -> dict:
    """The worker's self-measurement as a picklable dict."""
    wall0, cpu0 = started
    return {
        "wall_seconds": time.perf_counter() - wall0,
        "cpu_seconds": time.process_time() - cpu0,
        "max_rss_bytes": _max_rss_bytes(),
        "pid": os.getpid(),
    }


@dataclass(frozen=True)
class WorkerProfile:
    """One fragment attempt's resource usage, as seen by the worker."""

    fragment_index: int
    attempt: int
    wall_seconds: float
    cpu_seconds: float
    max_rss_bytes: int
    pid: int
    ok: bool = True

    @classmethod
    def from_dict(
        cls, fragment_index: int, attempt: int, data: dict, ok: bool = True
    ) -> "WorkerProfile":
        return cls(
            fragment_index=fragment_index,
            attempt=attempt,
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            max_rss_bytes=int(data.get("max_rss_bytes", 0)),
            pid=int(data.get("pid", 0)),
            ok=ok,
        )
