"""Sort-based local aggregation — the [BBDW83] baseline.

The paper's related work (Bitton et al.) aggregates by sorting: sort the
input on the GROUP BY attributes, then fold adjacent equal keys.  This
module provides that alternative local-aggregation engine so the Two
Phase family can be run with ``local_method="sort"`` and compared against
the hash engine the paper (and this library) defaults to.

Memory behaviour mirrors the hash engine's M-entry allocation: the sorter
accumulates at most ``max_entries`` items in memory, then emits a sorted
*run*; runs are spooled (charged through the same spill hooks) and merged
at finish time.  Like the hash engine, equal keys met while a run is in
memory are pre-aggregated immediately, so run length is bounded by
distinct keys, not raw tuples.

Like the hash engine, the sorter registers with the memory governor when
given an operator ``account``: resident entries are charged per key, a
denied charge forces an early run emission (the ladder's spill rung),
and with a ``spill_store`` the emitted runs genuinely leave memory.
"""

from __future__ import annotations

import heapq

from repro.resources.governor import RUNG_SPILL


class SortAggregator:
    """Sort-based aggregation with bounded memory and spooled runs.

    Drop-in replacement for :class:`~repro.core.hashtable.HashAggregator`
    — same ``add_values`` / ``add_partial`` / ``finish`` surface, same
    spill hooks — so node programs can swap engines via configuration.

    Keys must be orderable (tuples of ints/strs, as produced by
    BoundQuery.key_of, are).

    ``account``/``entry_bytes``/``spill_item_bytes`` register the sorter
    with the memory governor (see :mod:`repro.resources`); a
    ``spill_store`` (same protocol as the hash aggregator's) holds the
    emitted runs out of core, one bucket per run.
    """

    def __init__(
        self,
        state_factory,
        max_entries: int,
        on_spill_write=None,
        on_spill_read=None,
        account=None,
        entry_bytes: int = 0,
        spill_item_bytes: int = 0,
        spill_store=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._state_factory = state_factory
        self._max_entries = max_entries
        self._on_spill_write = on_spill_write
        self._on_spill_read = on_spill_read
        self._account = account
        self._entry_bytes = entry_bytes
        self._spill_item_bytes = spill_item_bytes or entry_bytes
        self._store = spill_store
        self._current: dict = {}
        self._runs: list[list] = []
        self._run_lengths: list[int] = []
        self.spilled_items = 0
        self.run_count = 0
        self.governed_runs = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def in_memory_groups(self) -> int:
        return len(self._current)

    @property
    def overflowed(self) -> bool:
        return self.spilled_items > 0

    def _emit_run(self) -> None:
        if not self._current:
            return
        run = sorted(self._current.items())
        if self._store is not None:
            run_id = self.run_count
            for item in run:
                self._store.append(run_id, item)
        else:
            self._runs.append(run)
        self._run_lengths.append(len(run))
        self.run_count += 1
        self.spilled_items += len(run)
        if self._on_spill_write is not None:
            self._on_spill_write(len(run))
        if self._account is not None:
            self._account.release(len(run) * self._entry_bytes)
            self._account.ledger.note_spill(
                len(run) * self._spill_item_bytes
            )
        self._current = {}

    def _absorb(self, key, state_or_values, is_partial: bool) -> None:
        state = self._current.get(key)
        if state is None:
            governed = self._account is not None
            if len(self._current) >= self._max_entries:
                self._emit_run()
                if governed:
                    self._account.charge(self._entry_bytes)
            elif governed and not self._account.try_charge(
                self._entry_bytes
            ):
                # Governor pressure with entries to spare: flush the run
                # early (ladder rung 2) and force-take the freed bytes.
                self.governed_runs += 1
                self._account.ledger.note_rung(RUNG_SPILL)
                self._emit_run()
                self._account.charge(self._entry_bytes)
            state = self._state_factory()
            self._current[key] = state
        if is_partial:
            state.merge(state_or_values)
        else:
            state.update(state_or_values)

    def add_values(self, key, values) -> None:
        self._absorb(key, values, is_partial=False)

    def add_partial(self, key, partial) -> None:
        self._absorb(key, partial, is_partial=True)

    # -- batch entry points --------------------------------------------------
    #
    # Same contract as HashAggregator's: resident-key updates and
    # ungoverned not-full inserts run inline, everything else delegates to
    # _absorb.  _absorb can emit a run, which REBINDS self._current, so the
    # local dict alias must be refreshed after every delegation.

    def _absorb_kv_batch(self, pairs, is_partial: bool) -> None:
        factory = self._state_factory
        governed = self._account is not None
        max_entries = self._max_entries
        current = self._current
        get = current.get
        for key, item in pairs:
            state = get(key)
            if state is None:
                if governed or len(current) >= max_entries:
                    self._absorb(key, item, is_partial)
                    current = self._current
                    get = current.get
                    continue
                state = factory()
                current[key] = state
            if is_partial:
                state.merge(item)
            else:
                state.update(item)

    def add_rows(self, rows, bq, apply_where: bool = True) -> int:
        """Absorb a batch of raw rows; returns how many passed WHERE."""
        if apply_where and bq.query.where is not None:
            matches = bq.matches
            rows = [row for row in rows if matches(row)]
        elif not isinstance(rows, (list, tuple)):
            rows = list(rows)
        key_of = bq.key_of
        values_of = bq.values_of
        self._absorb_kv_batch(
            [(key_of(row), values_of(row)) for row in rows], is_partial=False
        )
        return len(rows)

    def add_projected(self, items, bq) -> None:
        """Absorb a batch of projected tuples (key columns + agg inputs)."""
        k = len(bq.key_indexes)
        self._absorb_kv_batch(
            [(p[:k], p[k:]) for p in items], is_partial=False
        )

    def add_partials(self, items) -> None:
        """Merge a batch of (key, GroupState) partials."""
        self._absorb_kv_batch(items, is_partial=True)

    def _release_current(self) -> None:
        if self._account is not None:
            self._account.release(len(self._current) * self._entry_bytes)

    def finish(self):
        """Yield (key, state) in key order, merging all spooled runs."""
        if not self.run_count:
            # Common case: everything fit — one in-memory sort.
            items = sorted(self._current.items())
            self._release_current()
            self._current = {}
            yield from items
            return
        self._emit_run()  # flush the tail as a final run
        if self._on_spill_read is not None:
            for length in self._run_lengths:
                self._on_spill_read(length)
        self._run_lengths = []
        if self._store is not None:
            runs = [self._store.drain(i) for i in range(self.run_count)]
        else:
            runs, self._runs = self._runs, []
        merged = heapq.merge(*runs, key=lambda item: item[0])
        pending_key, pending_state = None, None
        for key, state in merged:
            if key == pending_key:
                pending_state.merge(state)
                continue
            if pending_key is not None:
                yield pending_key, pending_state
            pending_key, pending_state = key, state
        if pending_key is not None:
            yield pending_key, pending_state
