"""Sort-based local aggregation — the [BBDW83] baseline.

The paper's related work (Bitton et al.) aggregates by sorting: sort the
input on the GROUP BY attributes, then fold adjacent equal keys.  This
module provides that alternative local-aggregation engine so the Two
Phase family can be run with ``local_method="sort"`` and compared against
the hash engine the paper (and this library) defaults to.

Memory behaviour mirrors the hash engine's M-entry allocation: the sorter
accumulates at most ``max_entries`` items in memory, then emits a sorted
*run*; runs are spooled (charged through the same spill hooks) and merged
at finish time.  Like the hash engine, equal keys met while a run is in
memory are pre-aggregated immediately, so run length is bounded by
distinct keys, not raw tuples.
"""

from __future__ import annotations

import heapq


class SortAggregator:
    """Sort-based aggregation with bounded memory and spooled runs.

    Drop-in replacement for :class:`~repro.core.hashtable.HashAggregator`
    — same ``add_values`` / ``add_partial`` / ``finish`` surface, same
    spill hooks — so node programs can swap engines via configuration.

    Keys must be orderable (tuples of ints/strs, as produced by
    BoundQuery.key_of, are).
    """

    def __init__(
        self,
        state_factory,
        max_entries: int,
        on_spill_write=None,
        on_spill_read=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._state_factory = state_factory
        self._max_entries = max_entries
        self._on_spill_write = on_spill_write
        self._on_spill_read = on_spill_read
        self._current: dict = {}
        self._runs: list[list] = []
        self.spilled_items = 0
        self.run_count = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def in_memory_groups(self) -> int:
        return len(self._current)

    @property
    def overflowed(self) -> bool:
        return self.spilled_items > 0

    def _emit_run(self) -> None:
        if not self._current:
            return
        run = sorted(self._current.items())
        self._runs.append(run)
        self.run_count += 1
        self.spilled_items += len(run)
        if self._on_spill_write is not None:
            self._on_spill_write(len(run))
        self._current = {}

    def _absorb(self, key, state_or_values, is_partial: bool) -> None:
        state = self._current.get(key)
        if state is None:
            if len(self._current) >= self._max_entries:
                self._emit_run()
            state = self._state_factory()
            self._current[key] = state
        if is_partial:
            state.merge(state_or_values)
        else:
            state.update(state_or_values)

    def add_values(self, key, values) -> None:
        self._absorb(key, values, is_partial=False)

    def add_partial(self, key, partial) -> None:
        self._absorb(key, partial, is_partial=True)

    def finish(self):
        """Yield (key, state) in key order, merging all spooled runs."""
        if not self._runs:
            # Common case: everything fit — one in-memory sort.
            yield from sorted(self._current.items())
            self._current = {}
            return
        self._emit_run()  # flush the tail as a final run
        runs, self._runs = self._runs, []
        for run in runs:
            if self._on_spill_read is not None:
                self._on_spill_read(len(run))
        merged = heapq.merge(*runs, key=lambda item: item[0])
        pending_key, pending_state = None, None
        for key, state in merged:
            if key == pending_key:
                pending_state.merge(state)
                continue
            if pending_key is not None:
                yield pending_key, pending_state
            pending_key, pending_state = key, state
        if pending_key is not None:
            yield pending_key, pending_state
