"""The GROUP BY aggregate query model.

Captures the paper's canonical query shape::

    SELECT   <group by attributes>, <aggregates>
    FROM     R
    [WHERE   <predicate>]
    GROUP BY <attributes>
    [HAVING  <predicate>]

The paper observes that a properly constructed HAVING clause (one that
cannot be pushed into WHERE) is evaluated *after* grouping and therefore
does not affect the algorithms' relative performance; we support it
exactly that way — applied to finished result rows at each merge site,
at no modelled extra cost.  Scalar aggregation is the special case of an
empty ``group_by`` (one group).

The query also knows its *projectivity* — the fraction of the tuple that is
relevant to the aggregation (group-by columns + aggregated columns) — which
is the ``p`` parameter of the cost model and decides how many bytes travel
over the network when tuples are repartitioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter

from repro.core.aggregates import AggregateSpec
from repro.storage.schema import Schema

_SCALAR_KEY = ()


def _key_getter(key_idx: tuple[int, ...]):
    """A specialized ``row -> key tuple`` closure for one index layout.

    Equivalent to ``tuple(row[i] for i in key_idx)`` but without building
    a generator per row — the single-column and multi-column shapes run
    at C speed (tuple display / itemgetter).
    """
    if not key_idx:
        return lambda row: _SCALAR_KEY
    if len(key_idx) == 1:
        k = key_idx[0]
        return lambda row: (row[k],)
    return itemgetter(*key_idx)


def _values_getter(agg_idx: tuple):
    """A specialized ``row -> aggregate inputs`` closure (None ⇒ COUNT(*)'s
    sentinel 1), same shapes as :func:`_key_getter`."""
    if any(i is None for i in agg_idx):
        if all(i is None for i in agg_idx):
            ones = (1,) * len(agg_idx)
            return lambda row: ones
        idx = tuple(agg_idx)
        return lambda row: tuple(1 if i is None else row[i] for i in idx)
    if len(agg_idx) == 1:
        a = agg_idx[0]
        return lambda row: (row[a],)
    return itemgetter(*agg_idx)


@dataclass(frozen=True)
class AggregateQuery:
    """A GROUP BY aggregate query.

    Parameters
    ----------
    group_by:
        Column names to group on.  Empty means scalar aggregation.
    aggregates:
        The aggregate specs in the SELECT list (at least one).
    where:
        Optional predicate ``row_dict -> bool`` applied during the scan.
        It receives a mapping of column name to value.
    having:
        Optional predicate over the *result* row, as a mapping of output
        name (group-by columns and aggregate aliases) to value.
    """

    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    where: object = None
    having: object = None

    def __init__(self, group_by, aggregates, where=None, having=None) -> None:
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "having", having)
        if not self.aggregates:
            raise ValueError("a query needs at least one aggregate")

    @property
    def is_scalar(self) -> bool:
        return not self.group_by

    def output_names(self) -> list[str]:
        return list(self.group_by) + [
            spec.output_name for spec in self.aggregates
        ]

    def bind(self, schema: Schema) -> "BoundQuery":
        """Resolve column names against a schema for fast row access."""
        return BoundQuery(self, schema)


@dataclass
class BoundQuery:
    """A query with column positions resolved against one schema.

    This is what node programs actually execute: `key_of` extracts the
    grouping key, ``values_of`` the aggregate input values, and
    ``matches`` evaluates the WHERE predicate.
    """

    query: AggregateQuery
    schema: Schema
    _key_idx: tuple[int, ...] = field(init=False)
    _agg_idx: tuple[int | None, ...] = field(init=False)
    _names: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self._key_idx = self.schema.indexes_of(self.query.group_by)
        self._agg_idx = tuple(
            self.schema.index_of(spec.column)
            if spec.column is not None
            else None
            for spec in self.query.aggregates
        )
        self._names = self.schema.names()
        # Shadow the methods below with shape-specialized closures: every
        # hot loop calling ``bq.key_of(row)`` gets the fast path without
        # changing a call site.
        self.key_of = _key_getter(self._key_idx)
        self.values_of = _values_getter(self._agg_idx)

    @property
    def key_indexes(self) -> tuple[int, ...]:
        """Schema positions of the GROUP BY columns (for block key access)."""
        return self._key_idx

    @property
    def agg_indexes(self) -> tuple:
        """Schema positions of the aggregate inputs; None means COUNT(*)."""
        return self._agg_idx

    def key_of(self, row) -> tuple:
        """The grouping key of a row; ``()`` for scalar aggregation."""
        if not self._key_idx:
            return _SCALAR_KEY
        return tuple(row[i] for i in self._key_idx)

    def values_of(self, row) -> tuple:
        """The aggregate input values (COUNT(*) sees a sentinel 1)."""
        return tuple(
            1 if i is None else row[i] for i in self._agg_idx
        )

    def matches(self, row) -> bool:
        if self.query.where is None:
            return True
        return bool(self.query.where(dict(zip(self._names, row))))

    def projected_row(self, row) -> tuple:
        """The network representation of a raw tuple: key + agg values."""
        return self.key_of(row) + self.values_of(row)

    def split_projected(self, projected: tuple) -> tuple[tuple, tuple]:
        """Inverse of :meth:`projected_row`: (key, values)."""
        k = len(self._key_idx)
        return projected[:k], projected[k:]

    @property
    def projected_bytes(self) -> int:
        """Width in bytes of the projected tuple (group key + agg inputs)."""
        names = set(self.query.group_by)
        names.update(
            spec.column
            for spec in self.query.aggregates
            if spec.column is not None
        )
        if not names:
            return 8  # COUNT(*) alone still ships a counter
        return self.schema.projected_bytes(sorted(names))

    @property
    def projectivity(self) -> float:
        """The cost-model parameter p = projected width / tuple width."""
        return self.projected_bytes / self.schema.tuple_bytes

    def result_row(self, key: tuple, group_state) -> tuple:
        return tuple(key) + group_state.results()

    def passes_having(self, result_row: tuple) -> bool:
        """Evaluate the HAVING predicate on a finished result row."""
        if self.query.having is None:
            return True
        names = self.query.output_names()
        return bool(self.query.having(dict(zip(names, result_row))))
