"""The high-level entry point: run any algorithm on a distributed relation.

``run_algorithm`` binds the query, derives a parameter set sized to the
data (unless one is supplied), assembles one node program per fragment,
runs the cluster simulation, and returns the merged result rows together
with simulated time, metrics, and the adaptivity trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.algorithms import ALGORITHM_BODIES, SimConfig
from repro.core.query import AggregateQuery
from repro.costmodel.params import SystemParameters
from repro.sim.cluster import Cluster, RunResult
from repro.sim.events import TraceEvent
from repro.sim.metrics import ClusterMetrics
from repro.sim.recovery import run_resilient
from repro.storage.relation import DistributedRelation

ALGORITHMS = tuple(ALGORITHM_BODIES)

# The paper's implementation ratio: M = 10K entries for 250K tuples/node.
_DEFAULT_TABLE_FRACTION = 0.04
_MIN_TABLE_ENTRIES = 16


@dataclass
class AlgorithmOutcome:
    """Everything a caller wants back from one simulated run."""

    algorithm: str
    rows: list[tuple]
    elapsed_seconds: float
    metrics: ClusterMetrics
    trace: list[TraceEvent] = field(default_factory=list)
    per_node_rows: list[list] = field(default_factory=list)
    timelines: list = field(default_factory=list)

    def render_timeline(self, width: int = 72) -> str:
        """ASCII Gantt of the run (needs record_timeline=True)."""
        from repro.sim.timeline import render_timeline

        if not any(self.timelines):
            return "(timeline not recorded; pass record_timeline=True)"
        return render_timeline(self.timelines, width=width)

    @property
    def num_groups(self) -> int:
        return len(self.rows)

    def events_named(self, what: str) -> list[TraceEvent]:
        """Trace events of one type (e.g. "switch_to_repartitioning")."""
        return [e for e in self.trace if e.what == what]

    def switch_events(self) -> list[TraceEvent]:
        """Adaptivity events (mode switches and decisions)."""
        interesting = {
            "switch_to_repartitioning",
            "switch_to_two_phase",
            "end_of_phase_received",
            "sampling_decision",
            "forwarded_on_overflow",
        }
        return [e for e in self.trace if e.what in interesting]


def default_parameters(
    dist: DistributedRelation,
    network=None,
    hash_table_entries: int | None = None,
) -> SystemParameters:
    """Parameters sized to a generated relation.

    The hash-table allocation defaults to the paper's implementation
    ratio (M ≈ 4% of the tuples per node), which preserves every
    overflow-driven crossover at reduced scale (see DESIGN.md).
    """
    base = SystemParameters.implementation()
    if hash_table_entries is None:
        per_node = max(1, len(dist) // dist.num_nodes)
        hash_table_entries = max(
            _MIN_TABLE_ENTRIES, round(per_node * _DEFAULT_TABLE_FRACTION)
        )
    overrides = dict(
        num_nodes=dist.num_nodes,
        num_tuples=max(1, len(dist)),
        tuple_bytes=dist.schema.tuple_bytes,
        hash_table_entries=hash_table_entries,
    )
    if network is not None:
        overrides["network"] = network
    return base.with_(**overrides)


def run_algorithm(
    algorithm: str,
    dist: DistributedRelation,
    query: AggregateQuery,
    params: SystemParameters | None = None,
    config: SimConfig | None = None,
    record_timeline: bool = False,
    node_speed_factors=None,
    tracer=None,
    ledger=None,
    **config_overrides,
) -> AlgorithmOutcome:
    """Simulate ``algorithm`` over ``dist`` and return the outcome.

    ``config_overrides`` are :class:`SimConfig` fields (``pipeline=True``,
    ``init_seg=500``, ...) for one-off tweaks.  ``record_timeline=True``
    captures per-node activity segments for
    :meth:`AlgorithmOutcome.render_timeline`.  ``node_speed_factors``
    models heterogeneous hardware: node i's CPU and disk run at
    ``factors[i]`` times the Table 1 rates.  ``tracer`` is an optional
    :class:`repro.obs.Tracer` that records the query → node → phase →
    operator span tree of the run; ``tracer=None`` (the default) keeps
    the simulation bit-identical to an untraced run.  ``ledger`` is an
    optional :class:`repro.obs.DecisionLedger` that records every
    adaptive decision (sampling choice, A-2P switch, A-Rep fallback) as
    a typed event; like the tracer it is zero-cost when None.
    """
    try:
        body = ALGORITHM_BODIES[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{sorted(ALGORITHM_BODIES)}"
        ) from None
    if params is None:
        params = default_parameters(dist)
    elif params.num_nodes != dist.num_nodes:
        raise ValueError(
            f"params.num_nodes={params.num_nodes} but the relation has "
            f"{dist.num_nodes} fragments"
        )
    if config is None:
        config = SimConfig(**config_overrides)
    elif config_overrides:
        raise ValueError("pass either config or config overrides, not both")

    bq = query.bind(dist.schema)

    if config.faults is not None:
        # Fault-injected run: execute with crash recovery.  The body is
        # unchanged; only the node-to-fragment assignment may shrink as
        # crashed nodes' fragments are taken over by survivors.
        run = run_resilient(
            params,
            dist.fragments,
            config.faults,
            lambda ctx, fragment: body(ctx, fragment, bq, config),
            record_timeline=record_timeline,
            node_speed_factors=node_speed_factors,
            memory=config.memory,
            tracer=tracer,
            ledger=ledger,
        )
        rows = []
        for node_rows in run.node_results:
            rows.extend(node_rows)
        rows.sort()
        return AlgorithmOutcome(
            algorithm=algorithm,
            rows=rows,
            elapsed_seconds=run.elapsed_seconds,
            metrics=run.metrics,
            trace=run.trace,
            per_node_rows=run.node_results,
            timelines=run.timelines,
        )

    cluster = Cluster(params)

    def make_factory(fragment):
        def factory(ctx):
            return body(ctx, fragment, bq, config)

        return factory

    result: RunResult = cluster.run(
        (make_factory(frag) for frag in dist.fragments),
        record_timeline=record_timeline,
        node_speed_factors=node_speed_factors,
        memory=config.memory,
        tracer=tracer,
        ledger=ledger,
    )
    rows: list[tuple] = []
    for node_rows in result.node_results:
        rows.extend(node_rows)
    rows.sort()
    return AlgorithmOutcome(
        algorithm=algorithm,
        rows=rows,
        elapsed_seconds=result.elapsed_seconds,
        metrics=result.metrics,
        trace=result.trace,
        per_node_rows=result.node_results,
        timelines=result.timelines,
    )
