"""Algorithm selection — the optimizer's side of the paper.

Section 3.1 has "the optimizer decide what is an appropriate switching
point"; Section 7 concludes that a system supporting one algorithm should
ship Adaptive Two Phase, and one supporting two should add Adaptive
Repartitioning for the duplicate-elimination regime.  This module encodes
those rules on top of the analytical cost models, so a caller with (or
without) a group-count estimate gets a concrete plan and its rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel import MODEL_FUNCTIONS, model_cost
from repro.costmodel.params import SystemParameters
from repro.sampling.decision import crossover_threshold


@dataclass(frozen=True)
class PlanChoice:
    """An optimizer decision: which algorithm, and why."""

    algorithm: str
    rationale: str
    estimated_seconds: float | None = None


def rank_algorithms(
    params: SystemParameters, selectivity: float
) -> list[tuple[str, float]]:
    """All six modelled algorithms, cheapest first, at one selectivity."""
    costs = [
        (name, model_cost(name, params, selectivity).total_seconds)
        for name in MODEL_FUNCTIONS
    ]
    costs.sort(key=lambda pair: pair[1])
    return costs


def choose_plan(
    params: SystemParameters,
    estimated_groups: int | None = None,
    expect_duplicate_elimination: bool = False,
    supported=None,
) -> PlanChoice:
    """Pick an algorithm the way the paper's conclusions suggest.

    Parameters
    ----------
    estimated_groups:
        The optimizer's group-count estimate, if it has one.  ``None``
        means unknown — the common case the adaptive algorithms exist
        for.
    expect_duplicate_elimination:
        A hint that the query is DISTINCT-like (result ≈ input), which
        favours starting in Repartitioning (A-Rep).
    supported:
        Optional iterable restricting the algorithms the engine ships.
    """
    supported = set(MODEL_FUNCTIONS if supported is None else supported)
    if not supported:
        raise ValueError("no supported algorithms to choose from")

    def pick(preference: list[str], why: str) -> PlanChoice:
        for name in preference:
            if name in supported:
                return PlanChoice(name, why)
        # Fall back to whatever the engine has, cheapest first if we can
        # cost it (we need a selectivity for that; use the middle range).
        name = sorted(supported)[0]
        return PlanChoice(name, f"{why} (preferred unavailable)")

    if estimated_groups is None:
        if expect_duplicate_elimination:
            return pick(
                ["adaptive_repartitioning", "adaptive_two_phase",
                 "repartitioning"],
                "no group estimate, duplicate elimination expected: "
                "start repartitioning, fall back adaptively",
            )
        return pick(
            ["adaptive_two_phase", "two_phase"],
            "no group estimate: Adaptive Two Phase performs almost as "
            "well as the best algorithm everywhere (paper, Section 7)",
        )

    if estimated_groups < 0:
        raise ValueError("estimated_groups must be non-negative")
    threshold = crossover_threshold(params.num_nodes, groups_per_node=10)
    selectivity = max(
        estimated_groups / params.num_tuples, 1.0 / params.num_tuples
    )
    selectivity = min(selectivity, 1.0)
    if estimated_groups < threshold:
        choice = pick(
            ["adaptive_two_phase", "two_phase"],
            f"estimate {estimated_groups} < crossover {threshold}: "
            "Two Phase regime, adaptive guard against under-estimates",
        )
    else:
        choice = pick(
            ["adaptive_repartitioning", "repartitioning",
             "adaptive_two_phase"],
            f"estimate {estimated_groups} >= crossover {threshold}: "
            "Repartitioning regime, adaptive guard against "
            "over-estimates",
        )
    if choice.algorithm in MODEL_FUNCTIONS:
        cost = model_cost(
            choice.algorithm, params, selectivity
        ).total_seconds
        return PlanChoice(choice.algorithm, choice.rationale, cost)
    return choice
