"""Hash-based aggregation with bounded memory and overflow buckets.

This is the Section 2 uniprocessor algorithm every parallel algorithm builds
on:

1. Build a hash table on the GROUP BY attributes; the first tuple of a new
   group adds an entry, subsequent matches update the running aggregate.
2. If the table would exceed its memory allocation, incoming tuples of
   *new* groups are hash-partitioned into overflow buckets and spooled to
   disk.
3. The overflow buckets are then processed one by one, recursively, each
   with a fresh table.

:class:`BoundedAggregateHashTable` is the bare bounded table — it reports
"full" instead of spooling, because the Adaptive Two Phase algorithm's whole
point is to *react* to that event by switching strategy rather than
spilling.  :class:`HashAggregator` wraps it with the spool-and-recurse
machinery for the phases that must complete locally regardless (e.g. the
merge phase), and exposes spill hooks so the simulator can charge the
intermediate I/O the cost model's ``(1 - M/(S·|R|))`` terms describe.

Both classes optionally register with the memory governor
(``repro.resources``): an :class:`~repro.resources.OperatorAccount` is
charged per resident entry, a governor denial reads exactly like a full
table (unifying the paper's adaptive trigger with budget pressure), and
spilled bytes are reported up the ledger.  Without an account the
behavior is bit-identical to the ungoverned code.
"""

from __future__ import annotations

from repro.resources.governor import RUNG_SPILL, SpillDepthExceededError
from repro.storage.hashing import stable_hash

_MAX_DEPTH = 32


class BoundedAggregateHashTable:
    """An aggregate hash table holding at most ``max_entries`` groups.

    ``add_values``/``add_partial`` return True when absorbed and False when
    the table is full and the key is new — the caller decides what overflow
    means (spool, forward, or switch algorithms).  With a governor
    ``account``, a denied byte charge for a new entry is reported as full
    too (and counted in ``pressure_denials``), so budget pressure fires
    the same adaptive triggers a full table does.
    """

    def __init__(
        self,
        max_entries: int,
        state_factory,
        account=None,
        entry_bytes: int = 0,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._state_factory = state_factory
        self._account = account
        self._entry_bytes = entry_bytes
        # The progress floor: below this many resident entries, a denied
        # budget charge is forced through instead of reported as "full".
        # Without it a starved budget admits nothing, and overflow
        # recursion (which re-aggregates through fresh tables) could
        # never shrink its working set.
        self._min_entries = 0
        if account is not None:
            self._min_entries = min(
                max_entries, account.ledger.policy.min_table_entries
            )
        self.pressure_denials = 0
        self._table: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key) -> bool:
        return key in self._table

    @property
    def is_full(self) -> bool:
        return len(self._table) >= self.max_entries

    def _admit(self) -> bool:
        """Room (entries and budget) for one more group?"""
        if self.is_full:
            return False
        if self._account is not None and not self._account.try_charge(
            self._entry_bytes
        ):
            if len(self._table) < self._min_entries:
                self._account.charge(self._entry_bytes)
                return True
            self.pressure_denials += 1
            return False
        return True

    def add_values(self, key, values) -> bool:
        """Absorb one raw tuple's aggregate inputs for ``key``."""
        state = self._table.get(key)
        if state is None:
            if not self._admit():
                return False
            state = self._state_factory()
            self._table[key] = state
        state.update(values)
        return True

    def add_partial(self, key, partial) -> bool:
        """Merge a partial GroupState for ``key`` (Section 3.2 mixed input)."""
        state = self._table.get(key)
        if state is None:
            if not self._admit():
                return False
            self._table[key] = partial.copy()
            return True
        state.merge(partial)
        return True

    def items(self):
        return self._table.items()

    def drain(self) -> dict:
        """Remove and return all entries (used when a node flushes on switch)."""
        table, self._table = self._table, {}
        if self._account is not None:
            self._account.release(len(table) * self._entry_bytes)
        return table


class HashAggregator:
    """Bounded hash aggregation with hash-partitioned overflow buckets.

    Parameters
    ----------
    state_factory:
        Zero-arg callable producing a fresh GroupState.
    max_entries:
        Memory allocation, in hash-table entries (the model's ``M``).
    fanout:
        Number of overflow buckets created on each overflow pass.
    on_spill_write / on_spill_read:
        Optional callbacks ``(num_items) -> None`` fired when items are
        spooled to / read back from an overflow bucket, so callers can
        charge simulated I/O.
    account / entry_bytes / spill_item_bytes:
        Governor registration: resident entries are charged to the
        operator account at ``entry_bytes`` each, and spilled items are
        reported to the node ledger at ``spill_item_bytes`` each
        (``entry_bytes`` when unset).  ``None`` account = ungoverned.
    max_depth:
        Overflow recursion limit.  A bucket that still spills past this
        depth raises :class:`~repro.resources.SpillDepthExceededError`
        (reporting the bucket skew) instead of recursing forever.
    """

    def __init__(
        self,
        state_factory,
        max_entries: int,
        fanout: int = 8,
        on_spill_write=None,
        on_spill_read=None,
        spill_store=None,
        account=None,
        entry_bytes: int = 0,
        spill_item_bytes: int = 0,
        max_depth: int = _MAX_DEPTH,
        _depth: int = 0,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self._state_factory = state_factory
        self._fanout = fanout
        self._on_spill_write = on_spill_write
        self._on_spill_read = on_spill_read
        if spill_store is None:
            from repro.storage.spill import MemorySpillStore

            spill_store = MemorySpillStore()
        self._store = spill_store
        self._account = account
        self._entry_bytes = entry_bytes
        self._spill_item_bytes = spill_item_bytes or entry_bytes
        self._max_depth = max_depth
        self._depth = _depth
        self._table = BoundedAggregateHashTable(
            max_entries,
            state_factory,
            account=account,
            entry_bytes=entry_bytes,
        )
        # Once anything has spilled, new keys must keep spilling even if
        # budget frees up later — otherwise a key could land both in the
        # table and in a bucket and be emitted twice.  (Ungoverned runs
        # have this property for free: a full table stays full.)
        self._sealed = False
        self.spilled_items = 0
        self.overflow_passes = 0

    @property
    def max_entries(self) -> int:
        return self._table.max_entries

    @property
    def in_memory_groups(self) -> int:
        return len(self._table)

    @property
    def overflowed(self) -> bool:
        return self.spilled_items > 0

    def _bucket_of(self, key) -> int:
        # Salt the hash with the recursion depth so a bucket's keys spread
        # across all sub-buckets when it is reprocessed.
        return stable_hash((self._depth, key)) % self._fanout

    def _spill(self, item) -> None:
        bucket = self._bucket_of(item[1])
        if self._depth >= self._max_depth:
            # Partitioning is no longer reducing the working set: at this
            # depth every level's hash salt has failed to split the keys.
            largest = max(
                (
                    self._store.item_count(b)
                    for b in self._store.bucket_ids()
                ),
                default=0,
            )
            raise SpillDepthExceededError(
                depth=self._depth,
                largest_bucket_items=max(largest, self._store.item_count(
                    bucket) + 1),
                total_spilled_items=self.spilled_items + 1,
                max_entries=self._table.max_entries,
            )
        if self._account is not None:
            if self.spilled_items == 0:
                self._account.ledger.note_rung(RUNG_SPILL)
            self._account.ledger.note_spill(self._spill_item_bytes)
        self._store.append(bucket, item)
        self._sealed = True
        self.spilled_items += 1
        if self._on_spill_write is not None:
            self._on_spill_write(1)

    def add_values(self, key, values) -> None:
        if self._sealed and key not in self._table:
            self._spill(("v", key, values))
        elif not self._table.add_values(key, values):
            self._spill(("v", key, values))

    def add_partial(self, key, partial) -> None:
        if self._sealed and key not in self._table:
            self._spill(("p", key, partial))
        elif not self._table.add_partial(key, partial):
            self._spill(("p", key, partial))

    # -- batch entry points --------------------------------------------------
    #
    # The batch paths absorb whole row batches with the per-row dispatch
    # hoisted out: resident-key updates and ungoverned not-full inserts run
    # inline; anything that could seal, spill, or touch the governor
    # delegates to the per-item methods above, so sealed/spill/budget
    # semantics (and therefore results) are exactly the per-row path's.

    def _absorb_kv(self, pairs) -> None:
        bounded = self._table
        table = bounded._table
        get = table.get
        factory = self._state_factory
        slow_add = self.add_values
        fast = bounded._account is None
        max_entries = bounded.max_entries
        for key, values in pairs:
            state = get(key)
            if state is not None:
                state.update(values)
            elif fast and not self._sealed and len(table) < max_entries:
                state = factory()
                table[key] = state
                state.update(values)
            else:
                slow_add(key, values)

    def add_rows(self, rows, bq, apply_where: bool = True) -> int:
        """Absorb a batch of raw rows; returns how many passed WHERE.

        ``rows`` is any iterable of tuples (a page, a decoded
        :class:`~repro.storage.rowblock.RowBlock`, …).  Set
        ``apply_where=False`` when the input is already filtered (e.g. a
        select operator upstream).
        """
        if apply_where and bq.query.where is not None:
            matches = bq.matches
            rows = [row for row in rows if matches(row)]
        elif not isinstance(rows, (list, tuple)):
            rows = list(rows)
        key_of = bq.key_of
        values_of = bq.values_of
        self._absorb_kv([(key_of(row), values_of(row)) for row in rows])
        return len(rows)

    def add_projected(self, items, bq) -> None:
        """Absorb a batch of projected tuples (key columns + agg inputs)."""
        k = len(bq.key_indexes)
        self._absorb_kv([(p[:k], p[k:]) for p in items])

    def add_partials(self, items) -> None:
        """Merge a batch of (key, GroupState) partials."""
        bounded = self._table
        table = bounded._table
        get = table.get
        slow_add = self.add_partial
        fast = bounded._account is None
        max_entries = bounded.max_entries
        for key, partial in items:
            state = get(key)
            if state is not None:
                state.merge(partial)
            elif fast and not self._sealed and len(table) < max_entries:
                table[key] = partial.copy()
            else:
                slow_add(key, partial)

    def finish(self):
        """Yield every (key, GroupState), processing overflow buckets.

        After this generator is exhausted the aggregator is empty and may
        not be reused.
        """
        yield from self._table.drain().items()
        for bucket in self._store.bucket_ids():
            count = self._store.item_count(bucket)
            if not count:
                continue
            self.overflow_passes += 1
            if self._on_spill_read is not None:
                self._on_spill_read(count)
            sub = HashAggregator(
                self._state_factory,
                self._table.max_entries,
                fanout=self._fanout,
                on_spill_write=self._on_spill_write,
                on_spill_read=self._on_spill_read,
                spill_store=self._store.child(),
                account=self._account,
                entry_bytes=self._entry_bytes,
                spill_item_bytes=self._spill_item_bytes,
                max_depth=self._max_depth,
                _depth=self._depth + 1,
            )
            for item in self._store.drain(bucket):
                if item[0] == "v":
                    sub.add_values(item[1], item[2])
                else:
                    sub.add_partial(item[1], item[2])
            yield from sub.finish()
            self.spilled_items += sub.spilled_items
            self.overflow_passes += sub.overflow_passes
