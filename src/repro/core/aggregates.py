"""Aggregate functions with mergeable partial states.

The Adaptive Two Phase algorithm's merge phase receives *two kinds* of input
for the same hash table (Section 3.2): locally pre-aggregated partial states
and raw tuples that were repartitioned after a node switched strategies.
Every state here therefore supports both ``update(value)`` (absorb one raw
value) and ``merge(other)`` (absorb another partial state), and for SQL AVG
the partial carries (sum, count) so that merging is exact.

All merges are commutative and associative, which the property-based tests
verify — that invariant is what makes the per-node, unsynchronized switching
of the adaptive algorithms correct.
"""

from __future__ import annotations

from dataclasses import dataclass


class AggregateState:
    """Base class for one aggregate function's running state."""

    __slots__ = ()

    def update(self, value) -> None:
        """Absorb one raw column value."""
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        """Absorb another partial state of the same type."""
        raise NotImplementedError

    def result(self):
        """The final SQL value of this aggregate."""
        raise NotImplementedError

    def copy(self) -> "AggregateState":
        raise NotImplementedError


class CountState(AggregateState):
    """SQL COUNT(*) / COUNT(col): number of (non-null) inputs."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update(self, value) -> None:
        if value is not None:
            self.count += 1

    def merge(self, other: "CountState") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count

    def copy(self) -> "CountState":
        fresh = CountState()
        fresh.count = self.count
        return fresh


class SumState(AggregateState):
    """SQL SUM: None until the first non-null input, then the running sum."""

    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total = 0
        self.seen = False

    def update(self, value) -> None:
        if value is None:
            return
        self.total += value
        self.seen = True

    def merge(self, other: "SumState") -> None:
        if other.seen:
            self.total += other.total
            self.seen = True

    def result(self):
        return self.total if self.seen else None

    def copy(self) -> "SumState":
        fresh = SumState()
        fresh.total = self.total
        fresh.seen = self.seen
        return fresh


class MinState(AggregateState):
    """SQL MIN."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def update(self, value) -> None:
        if value is None:
            return
        if self.value is None or value < self.value:
            self.value = value

    def merge(self, other: "MinState") -> None:
        self.update(other.value)

    def result(self):
        return self.value

    def copy(self) -> "MinState":
        fresh = MinState()
        fresh.value = self.value
        return fresh


class MaxState(AggregateState):
    """SQL MAX."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def update(self, value) -> None:
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value

    def merge(self, other: "MaxState") -> None:
        self.update(other.value)

    def result(self):
        return self.value

    def copy(self) -> "MaxState":
        fresh = MaxState()
        fresh.value = self.value
        return fresh


class AvgState(AggregateState):
    """SQL AVG carried as (sum, count) so partials merge exactly.

    This is the paper's Section 3.2 example: "for SQL average, the sum and
    the count will have to be added to the currently accumulated value" when
    merging a partial, while a raw tuple adds to the sum and increments the
    count.
    """

    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def update(self, value) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def merge(self, other: "AvgState") -> None:
        self.total += other.total
        self.count += other.count

    def result(self):
        if self.count == 0:
            return None
        return self.total / self.count

    def copy(self) -> "AvgState":
        fresh = AvgState()
        fresh.total = self.total
        fresh.count = self.count
        return fresh


class VarianceState(AggregateState):
    """SQL VAR_SAMP / STDDEV base: (count, sum, sum of squares).

    Merging partials is exact because the three moments add; the final
    value uses the numerically standard n·Σx² − (Σx)² form, adequate for
    the value ranges the workloads generate.
    """

    __slots__ = ("count", "total", "total_sq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0

    def update(self, value) -> None:
        if value is None:
            return
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def merge(self, other: "VarianceState") -> None:
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq

    def result(self):
        if self.count < 2:
            return None
        num = self.total_sq - self.total * self.total / self.count
        return max(0.0, num / (self.count - 1))

    def copy(self) -> "VarianceState":
        fresh = VarianceState()
        fresh.count = self.count
        fresh.total = self.total
        fresh.total_sq = self.total_sq
        return fresh


class StddevState(VarianceState):
    """SQL STDDEV_SAMP: the square root of the sample variance."""

    __slots__ = ()

    def result(self):
        variance = super().result()
        if variance is None:
            return None
        return variance**0.5

    def copy(self) -> "StddevState":
        fresh = StddevState()
        fresh.count = self.count
        fresh.total = self.total
        fresh.total_sq = self.total_sq
        return fresh


class CountDistinctState(AggregateState):
    """SQL COUNT(DISTINCT col), kept as an exact value set.

    Exact distinct counting is what duplicate elimination needs; the set is
    bounded by the group's distinct values, which in the paper's duplicate
    elimination scenario is small per group.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values = set()

    def update(self, value) -> None:
        if value is not None:
            self.values.add(value)

    def merge(self, other: "CountDistinctState") -> None:
        self.values |= other.values

    def result(self) -> int:
        return len(self.values)

    def copy(self) -> "CountDistinctState":
        fresh = CountDistinctState()
        fresh.values = set(self.values)
        return fresh


_STATE_TYPES = {
    "count": CountState,
    "sum": SumState,
    "min": MinState,
    "max": MaxState,
    "avg": AvgState,
    "count_distinct": CountDistinctState,
    "var": VarianceState,
    "stddev": StddevState,
}

FUNCTIONS = frozenset(_STATE_TYPES)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in the SELECT list, e.g. ``AggregateSpec("avg", "val")``.

    ``column`` may be None only for ``count`` (COUNT(*)).
    """

    func: str
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.func not in _STATE_TYPES:
            raise ValueError(
                f"unknown aggregate {self.func!r}; expected one of "
                f"{sorted(_STATE_TYPES)}"
            )
        if self.column is None and self.func != "count":
            raise ValueError(f"{self.func} requires a column")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        col = self.column if self.column is not None else "*"
        return f"{self.func}({col})"

    def new_state(self) -> AggregateState:
        return _STATE_TYPES[self.func]()


class GroupState:
    """All aggregate states for one group, updated together.

    This is the hash-table entry payload.  ``update`` takes the already
    projected value tuple (one value per spec, extracted by the query), and
    ``merge`` absorbs another GroupState — both paths land in the same entry
    exactly as the mixed hash table of Section 3.2 requires.
    """

    __slots__ = ("states",)

    def __init__(self, specs) -> None:
        self.states = [spec.new_state() for spec in specs]

    def update(self, values) -> None:
        for state, value in zip(self.states, values):
            state.update(value)

    def merge(self, other: "GroupState") -> None:
        for mine, theirs in zip(self.states, other.states):
            mine.merge(theirs)

    def results(self) -> tuple:
        return tuple(state.result() for state in self.states)

    def copy(self) -> "GroupState":
        fresh = GroupState.__new__(GroupState)
        fresh.states = [state.copy() for state in self.states]
        return fresh


def make_state_factory(specs):
    """A zero-argument callable producing fresh GroupStates for ``specs``."""
    spec_list = list(specs)
    if not spec_list:
        raise ValueError("at least one aggregate spec is required")

    def factory() -> GroupState:
        return GroupState(spec_list)

    return factory
