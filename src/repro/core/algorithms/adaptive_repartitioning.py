"""The Adaptive Repartitioning algorithm (Section 3.3).

Start with Repartitioning — the right call when the optimizer expects many
groups.  While repartitioning, each node watches how many distinct groups
it has seen; if after ``init_seg`` tuples the count is suspiciously low,
the node broadcasts an ``end_of_phase`` message and falls back to the
Adaptive Two Phase strategy for its remaining tuples.  Nodes receiving
``end_of_phase`` follow suit (echoing their own notice, as the paper
describes).  The merge phase simply continues on the hash table the
repartitioning phase already populated — raw tuples shipped before the
switch are never reprocessed.
"""

from __future__ import annotations

from repro.core.algorithms.adaptive_two_phase import adaptive_scan
from repro.core.algorithms.base import (
    END_OF_PHASE,
    RAW,
    SimConfig,
    broadcast_eof,
    merge_destination,
    merge_phase,
    raw_item_bytes,
    scan_pages,
)
from repro.core.query import BoundQuery
from repro.sampling.decision import crossover_threshold
from repro.sim.node import BlockedChannel, NodeContext
from repro.storage.relation import Fragment


def _switch_groups(ctx: NodeContext, cfg: SimConfig) -> int:
    if cfg.arep_switch_groups is not None:
        return cfg.arep_switch_groups
    return crossover_threshold(ctx.num_nodes, groups_per_node=10)


def _init_seg(ctx: NodeContext, cfg: SimConfig, switch_groups: int) -> int:
    if cfg.init_seg is not None:
        return cfg.init_seg
    # 10× the group threshold: enough draws (coupon collector) to have
    # seen ≥ switch_groups distinct values whenever the relation really
    # has that many groups.
    return 10 * switch_groups


def adaptive_repartitioning_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's complete A-Rep run; returns its result rows."""
    switch_groups = _switch_groups(ctx, cfg)
    init_seg = _init_seg(ctx, cfg, switch_groups)
    dst_of = merge_destination(ctx)
    raw_chan = BlockedChannel(
        ctx, RAW, raw_item_bytes(bq), operator="repart_buffer"
    )

    seen_keys: set = set()
    tuples_seen = 0
    judged = False
    switching = False
    sent_end_of_phase = False
    leftover_rows: list = []

    with ctx.phase("repartition_scan"):
        for page_rows, io in scan_pages(ctx, fragment, cfg.pipeline):
            if io is not None:
                yield io
            # Poll for a peer's end-of-phase notice (piggy-backed control).
            notice = yield ctx.try_recv(END_OF_PHASE)
            if notice is not None:
                switching = True
                ctx.decision(
                    "end_of_phase_received",
                    ledger_only={"tuples_seen": tuples_seen},
                    from_node=notice.src,
                )
            if switching:
                leftover_rows.extend(page_rows)
                continue

            yield ctx.repart_select_cpu(len(page_rows))
            for row in page_rows:
                if not bq.matches(row):
                    continue
                key = bq.key_of(row)
                tuples_seen += 1
                if not judged:
                    seen_keys.add(key)
                    if tuples_seen >= init_seg:
                        judged = True
                        if len(seen_keys) < switch_groups:
                            switching = True
                            ctx.decision(
                                "switch_to_two_phase",
                                ledger_only={
                                    "switch_groups": switch_groups,
                                    "init_seg": init_seg,
                                },
                                tuples_seen=tuples_seen,
                                groups_seen=len(seen_keys),
                            )
                send = raw_chan.push(dst_of(key), bq.projected_row(row))
                if send is not None:
                    yield send
            if switching and not sent_end_of_phase:
                sent_end_of_phase = True
                for dst in range(ctx.num_nodes):
                    if dst != ctx.node_id:
                        yield ctx.send(dst, END_OF_PHASE)

        if switching and not sent_end_of_phase:
            # A notice arrived on the very last page: still echo it.
            sent_end_of_phase = True
            for dst in range(ctx.num_nodes):
                if dst != ctx.node_id:
                    yield ctx.send(dst, END_OF_PHASE)

        for send in raw_chan.flush():
            yield send

    if switching and leftover_rows:
        # Process the unscanned remainder with Adaptive Two Phase (it can
        # still fall back to repartitioning if the judgement was wrong).
        with ctx.phase("adaptive_fallback"):
            yield from adaptive_scan(
                ctx, fragment, bq, cfg, rows_override=leftover_rows
            )
    yield from broadcast_eof(ctx)
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
