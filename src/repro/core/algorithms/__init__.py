"""The paper's six parallel aggregation algorithms, Graefe's optimized
2P, and a modern eviction-based streaming pre-aggregation extension.

Every algorithm is exposed as a *program body*: a generator function
``body(ctx, fragment, bound_query, config) -> result rows`` that really
executes the algorithm on the node's fragment while yielding simulator
cost requests.  ``repro.core.runner`` assembles one body per node into a
cluster run.
"""

from repro.core.algorithms.base import SimConfig
from repro.core.algorithms.centralized_two_phase import (
    centralized_two_phase_body,
)
from repro.core.algorithms.two_phase import two_phase_body
from repro.core.algorithms.repartitioning import repartitioning_body
from repro.core.algorithms.sampling import sampling_body
from repro.core.algorithms.adaptive_two_phase import adaptive_two_phase_body
from repro.core.algorithms.adaptive_repartitioning import (
    adaptive_repartitioning_body,
)
from repro.core.algorithms.optimized_two_phase import optimized_two_phase_body
from repro.core.algorithms.streaming_pre_aggregation import (
    streaming_pre_aggregation_body,
)

ALGORITHM_BODIES = {
    "centralized_two_phase": centralized_two_phase_body,
    "two_phase": two_phase_body,
    "repartitioning": repartitioning_body,
    "sampling": sampling_body,
    "adaptive_two_phase": adaptive_two_phase_body,
    "adaptive_repartitioning": adaptive_repartitioning_body,
    "optimized_two_phase": optimized_two_phase_body,
    "streaming_pre_aggregation": streaming_pre_aggregation_body,
}

__all__ = [
    "ALGORITHM_BODIES",
    "SimConfig",
    "adaptive_repartitioning_body",
    "adaptive_two_phase_body",
    "centralized_two_phase_body",
    "optimized_two_phase_body",
    "repartitioning_body",
    "sampling_body",
    "streaming_pre_aggregation_body",
    "two_phase_body",
]
