"""The Centralized Two Phase algorithm (Section 2.1).

Identical local phase to Two Phase, but all partial aggregates are merged
sequentially at one coordinator node — the bottleneck that motivates the
rest of the paper the moment the group count stops being tiny.
"""

from __future__ import annotations

from repro.core.algorithms.base import (
    SimConfig,
    broadcast_eof,
    flush_partials,
    merge_phase,
)
from repro.core.algorithms.two_phase import local_aggregation_phase
from repro.core.query import BoundQuery
from repro.sim.node import NodeContext
from repro.storage.relation import Fragment

COORDINATOR = 0


def centralized_two_phase_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's C-2P run; only the coordinator returns rows."""
    with ctx.phase("local_aggregation"):
        partials = yield from local_aggregation_phase(ctx, fragment, bq, cfg)
    with ctx.phase("flush_partials"):
        yield from flush_partials(
            ctx, bq, partials, dst_of=lambda _key: COORDINATOR
        )
        yield from broadcast_eof(ctx, dsts=[COORDINATOR])
    if ctx.node_id != COORDINATOR:
        return []
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
