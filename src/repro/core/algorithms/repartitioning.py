"""The Repartitioning algorithm (Section 2.3).

Hash-partition the (projected) raw tuples on the GROUP BY attributes, then
aggregate each partition in parallel.  Every group is aggregated exactly
once and stored in exactly one place — no duplicated work and minimal
memory — at the price of shipping every tuple across the network and, when
there are fewer groups than processors, leaving nodes idle.
"""

from __future__ import annotations

from repro.core.algorithms.base import (
    RAW,
    SimConfig,
    broadcast_eof,
    merge_destination,
    merge_phase,
    raw_item_bytes,
    scan_pages,
)
from repro.core.query import BoundQuery
from repro.sim.node import BlockedChannel, NodeContext
from repro.storage.relation import Fragment


def repartition_scan(
    ctx: NodeContext,
    fragment: Fragment,
    bq: BoundQuery,
    cfg: SimConfig,
):
    """Scan the fragment and forward every matching tuple to its merger."""
    dst_of = merge_destination(ctx)
    chan = BlockedChannel(
        ctx, RAW, raw_item_bytes(bq), operator="repart_buffer"
    )
    for page_rows, io in scan_pages(ctx, fragment, cfg.pipeline):
        if io is not None:
            yield io
        yield ctx.repart_select_cpu(len(page_rows))
        for row in page_rows:
            if not bq.matches(row):
                continue
            send = chan.push(dst_of(bq.key_of(row)), bq.projected_row(row))
            if send is not None:
                yield send
    for send in chan.flush():
        yield send


def repartitioning_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's complete Repartitioning run; returns its result rows."""
    with ctx.phase("repartition_scan"):
        yield from repartition_scan(ctx, fragment, bq, cfg)
        yield from broadcast_eof(ctx)
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
