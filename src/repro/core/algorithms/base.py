"""Shared building blocks of the algorithm program bodies.

All bodies follow the Gamma operator structure of Section 2: a scan/select
child feeds the aggregation operator(s), and a store parent consumes the
result (``pipeline=True`` removes the scan and store I/O, the Figure 2
scenario).  The pieces here are the ones several algorithms share:
page-wise fragment scanning, spill-I/O accounting for the bounded hash
aggregator, the partial-flush used by both Two Phase variants, and the
merge phase — which, per Section 3.2, absorbs locally aggregated partials
and repartitioned raw tuples into the *same* hash table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregates import make_state_factory
from repro.core.hashtable import HashAggregator
from repro.core.query import BoundQuery
from repro.core.sortagg import SortAggregator
from repro.resources.governor import MemoryPolicy
from repro.sim.faults import FaultPlan
from repro.sim.node import BlockedChannel, NodeContext
from repro.storage.hashing import bucket_of
from repro.storage.relation import Fragment

EOF = "eof"
PARTIALS = "partials"
RAW = "raw"
END_OF_PHASE = "end_of_phase"

# A merged partial carries the projected attributes plus a small running
# state overhead (e.g. AVG's count); raw tuples are just the projection.
_PARTIAL_OVERHEAD_BYTES = 8


@dataclass(frozen=True)
class SimConfig:
    """Per-run knobs of the simulated algorithms.

    Attributes
    ----------
    pipeline:
        Drop base-relation scan and result-store I/O (Figure 2 mode).
    fanout:
        Overflow-bucket fanout of the hash aggregator.
    sampling_threshold:
        Crossover threshold for the Sampling algorithm (default 10·N).
    sample_multiplier:
        Sample size as a multiple of the threshold (paper: 10×).
    init_seg:
        Tuples each Adaptive Repartitioning node observes before judging
        the group count (default 10× the switch threshold).
    arep_switch_groups:
        Distinct groups below which A-Rep abandons Repartitioning
        (default 10·N, the crossover threshold).
    seed:
        Seed for the page sampler.
    local_method:
        Local/merge aggregation engine: "hash" (the paper's default) or
        "sort" (the [BBDW83] baseline).  The adaptive algorithms' switch
        logic is hash-table based and always uses "hash".
    estimator:
        How the Sampling coordinator turns the pooled sample into a
        group-count figure: "lower_bound" (the paper's choice — safe,
        never overestimates), "chao1" or "jackknife" (species
        estimators that correct for unseen groups).
    faults:
        A :class:`~repro.sim.faults.FaultPlan` injecting crashes,
        stragglers, message loss/duplication, and transient disk errors
        into the run; the runner then executes with crash recovery
        (see ``repro.sim.recovery``).  ``None`` (the default) keeps the
        perfect-cluster fast path, bit-identical to the pre-fault engine.
    memory:
        A :class:`~repro.resources.MemoryPolicy` putting every node
        under a byte budget enforced by the memory governor: hash/sort
        tables, repartition buffers and mailboxes charge a per-node
        ledger, and pressure walks the degradation ladder
        (backpressure → spill → algorithm switch; see docs/memory.md).
        ``None`` (the default) keeps runs bit-identical to ungoverned
        behavior.
    """

    pipeline: bool = False
    fanout: int = 8
    sampling_threshold: int | None = None
    sample_multiplier: float = 10.0
    init_seg: int | None = None
    arep_switch_groups: int | None = None
    seed: int = 0
    local_method: str = "hash"
    estimator: str = "lower_bound"
    faults: FaultPlan | None = None
    memory: MemoryPolicy | None = None

    def __post_init__(self) -> None:
        if self.local_method not in ("hash", "sort"):
            raise ValueError(
                f"local_method must be 'hash' or 'sort', got "
                f"{self.local_method!r}"
            )
        from repro.sampling.estimator import ESTIMATORS

        if self.estimator not in ESTIMATORS:
            raise ValueError(
                f"estimator must be one of {sorted(ESTIMATORS)}, got "
                f"{self.estimator!r}"
            )


def raw_item_bytes(bq: BoundQuery) -> int:
    """On-wire bytes of one repartitioned (projected) tuple."""
    return max(1, bq.projected_bytes)


def partial_item_bytes(bq: BoundQuery) -> int:
    """On-wire bytes of one (key, GroupState) partial."""
    return raw_item_bytes(bq) + _PARTIAL_OVERHEAD_BYTES


def result_item_bytes(bq: BoundQuery) -> int:
    """Bytes of one stored result row."""
    return partial_item_bytes(bq)


class SpillCharges:
    """Collects the hash aggregator's spill activity into I/O requests.

    The aggregator's hooks fire synchronously (they cannot yield), so they
    accumulate counts here; the program yields :meth:`drain` after each
    batch, converting spooled tuples into spill-page I/O.
    """

    def __init__(self, ctx: NodeContext, item_bytes: int) -> None:
        self.ctx = ctx
        self.item_bytes = item_bytes
        self._pending_writes = 0
        self._pending_reads = 0
        self.total_spilled = 0

    def on_write(self, n: int) -> None:
        self._pending_writes += n
        self.total_spilled += n

    def on_read(self, n: int) -> None:
        self._pending_reads += n

    def drain(self):
        """Yield the accumulated spill I/O requests (a generator)."""
        if self._pending_writes:
            pages = self.ctx.pages_of(self._pending_writes * self.item_bytes)
            self._pending_writes = 0
            yield self.ctx.write_pages(pages, tag="spill_io")
        if self._pending_reads:
            pages = self.ctx.pages_of(self._pending_reads * self.item_bytes)
            self._pending_reads = 0
            yield self.ctx.read_pages(pages, tag="spill_io")


def make_aggregator(
    bq: BoundQuery,
    max_entries: int,
    fanout: int,
    spill: SpillCharges,
    method: str = "hash",
    ledger=None,
    operator: str | None = None,
    item_bytes: int = 0,
):
    """The node's bounded aggregation engine (hash or sort).

    With a governor ``ledger`` the engine opens an ``operator`` account,
    its allocation is capped to what the node budget can hold
    (``ledger.cap_entries``), and resident entries are charged at
    ``item_bytes`` each; without one, behavior is unchanged.
    """
    factory = make_state_factory(bq.query.aggregates)
    account = None
    if ledger is not None:
        if item_bytes <= 0:
            item_bytes = ledger.policy.entry_bytes
        account = ledger.open(operator or "agg_table")
        max_entries = ledger.cap_entries(max_entries)
    if method == "sort":
        return SortAggregator(
            factory,
            max_entries,
            on_spill_write=spill.on_write,
            on_spill_read=spill.on_read,
            account=account,
            entry_bytes=item_bytes,
        )
    return HashAggregator(
        factory,
        max_entries,
        fanout=fanout,
        on_spill_write=spill.on_write,
        on_spill_read=spill.on_read,
        account=account,
        entry_bytes=item_bytes,
    )


def scan_pages(ctx: NodeContext, fragment: Fragment, pipeline: bool):
    """Iterate the fragment page by page, yielding the scan I/O charge.

    A generator of generators would be unreadable, so this is a plain
    iterator over (page_rows, io_request_or_None); the caller yields the
    request itself.
    """
    for page_rows in fragment.relation.pages(ctx.params.page_bytes):
        # Counting scanned tuples feeds the tuples_scanned metric and is
        # the trigger point for crash-after-K-tuples fault injection.
        ctx.record_scanned(len(page_rows))
        io = None if pipeline else ctx.read_pages(1, tag="scan_io")
        yield page_rows, io


def flush_partials(ctx: NodeContext, bq: BoundQuery, items, dst_of):
    """Charge result generation and ship (key, state) partials.

    ``items`` is an iterable of (key, GroupState); ``dst_of(key)`` picks
    the destination node.  A generator: yields the cost/send requests.
    """
    chan = BlockedChannel(
        ctx, PARTIALS, partial_item_bytes(bq), operator="partials_buffer"
    )
    count = 0
    for key, state in items:
        count += 1
        send = chan.push(dst_of(key), (key, state))
        if send is not None:
            yield send
    yield ctx.result_cpu(count)
    for send in chan.flush():
        yield send


def broadcast_eof(ctx: NodeContext, dsts=None):
    """Tell every merge participant this node has no more input for it."""
    targets = range(ctx.num_nodes) if dsts is None else dsts
    for dst in targets:
        yield ctx.send(dst, EOF)


def merge_phase(
    ctx: NodeContext,
    bq: BoundQuery,
    cfg: SimConfig,
    expected_eofs: int,
    preloaded: HashAggregator | None = None,
    spill: SpillCharges | None = None,
):
    """The global aggregation phase (a generator returning result rows).

    Receives until ``expected_eofs`` EOF markers arrive, merging
    ``partials`` and ``raw`` messages into one hash table; stray
    ``end_of_phase`` control messages are consumed and ignored.  With
    ``preloaded`` the phase continues on a table an earlier phase already
    built (Adaptive Repartitioning reuses its repartitioning-phase table).
    """
    if spill is None:
        spill = SpillCharges(ctx, partial_item_bytes(bq))
    agg = (
        preloaded
        if preloaded is not None
        else make_aggregator(
            bq,
            ctx.params.hash_table_entries,
            cfg.fanout,
            spill,
            method=cfg.local_method,
            ledger=ctx.memory,
            operator="merge_table",
            item_bytes=partial_item_bytes(bq),
        )
    )
    eofs = 0
    while eofs < expected_eofs:
        msg = yield ctx.recv()
        if msg.kind == EOF:
            eofs += 1
            continue
        if msg.kind == END_OF_PHASE:
            continue
        items = msg.payload
        yield ctx.merge_cpu(len(items))
        if msg.kind == PARTIALS:
            agg.add_partials(items)
        elif msg.kind == RAW:
            agg.add_projected(items, bq)
        else:
            raise RuntimeError(
                f"merge phase got unexpected message kind {msg.kind!r}"
            )
        yield from spill.drain()

    ctx.record_memory(agg.in_memory_groups)
    results = []
    for key, state in agg.finish():
        row = bq.result_row(key, state)
        if bq.passes_having(row):
            results.append(row)
    yield from spill.drain()
    ctx.record_groups(len(results))
    yield ctx.result_cpu(len(results))
    if results and not cfg.pipeline:
        pages = ctx.pages_of(len(results) * result_item_bytes(bq))
        yield ctx.write_pages(pages, tag="store_io")
    return results


def merge_destination(ctx: NodeContext):
    """The hash-partitioning function routing a group key to its merger.

    Memoized per distinct key: grouped inputs route millions of tuples
    through a handful of keys, so caching the bucket turns the per-tuple
    FNV hash into a dict hit with identical assignments.
    """
    n = ctx.num_nodes
    cache: dict = {}
    cache_get = cache.get

    def dst_of(key) -> int:
        dst = cache_get(key)
        if dst is None:
            dst = cache[key] = bucket_of(key, n)
        return dst

    return dst_of
