"""The Two Phase algorithm (Section 2.2).

Phase 1: each node hash-aggregates its local fragment (spilling overflow
buckets to local disk if the group count exceeds the memory allocation M).
Phase 2: the local partial aggregates are hash-partitioned on the GROUP BY
attributes and merged in parallel by all nodes.
"""

from __future__ import annotations

from repro.core.algorithms.base import (
    SimConfig,
    SpillCharges,
    broadcast_eof,
    flush_partials,
    make_aggregator,
    merge_destination,
    merge_phase,
    raw_item_bytes,
    scan_pages,
)
from repro.core.query import BoundQuery
from repro.sim.node import NodeContext
from repro.storage.relation import Fragment


def local_aggregation_phase(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """Phase 1: aggregate the local fragment; returns (key, state) items.

    A generator (yields cost requests) returning the finished partials,
    including any that went through overflow buckets.
    """
    spill = SpillCharges(ctx, raw_item_bytes(bq))
    agg = make_aggregator(
        bq,
        ctx.params.hash_table_entries,
        cfg.fanout,
        spill,
        method=cfg.local_method,
        ledger=ctx.memory,
        operator="local_table",
        item_bytes=raw_item_bytes(bq),
    )
    for page_rows, io in scan_pages(ctx, fragment, cfg.pipeline):
        if io is not None:
            yield io
        yield ctx.select_cpu(len(page_rows))
        matched = agg.add_rows(page_rows, bq)
        yield ctx.local_agg_cpu(matched)
        yield from spill.drain()
    ctx.record_memory(agg.in_memory_groups)
    partials = list(agg.finish())
    yield from spill.drain()
    return partials


def two_phase_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's complete Two Phase run; returns its result rows."""
    with ctx.phase("local_aggregation"):
        partials = yield from local_aggregation_phase(ctx, fragment, bq, cfg)
    with ctx.phase("flush_partials"):
        dst_of = merge_destination(ctx)
        yield from flush_partials(ctx, bq, partials, dst_of)
        yield from broadcast_eof(ctx)
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
