"""The Adaptive Two Phase algorithm (Section 3.2) — the paper's headline.

Start as Two Phase under the common-case assumption that groups are few.
The moment a node's local hash table fills — the point where Two Phase
would begin intermediate I/O — that node, *independently of all others*:

1. stops aggregating locally,
2. hash-partitions the partials accumulated so far and ships them to the
   merge phase (freeing its memory), and
3. repartitions its remaining tuples raw, exactly like Repartitioning.

The merge phase absorbs both kinds of input into one hash table: partials
merge their running state, raw tuples update it as usual.  No global
synchronization is needed — which is also why the algorithm shines under
output skew (Section 6): only the group-rich nodes switch.
"""

from __future__ import annotations

from repro.core.aggregates import make_state_factory
from repro.core.algorithms.base import (
    RAW,
    SimConfig,
    broadcast_eof,
    flush_partials,
    merge_destination,
    merge_phase,
    raw_item_bytes,
    scan_pages,
)
from repro.core.hashtable import BoundedAggregateHashTable
from repro.core.query import BoundQuery
from repro.resources.governor import RUNG_SWITCH
from repro.sim.node import BlockedChannel, NodeContext
from repro.storage.relation import Fragment

TWO_PHASE_MODE = "two_phase"
REPARTITION_MODE = "repartitioning"


def adaptive_scan(
    ctx: NodeContext,
    fragment: Fragment,
    bq: BoundQuery,
    cfg: SimConfig,
    table: BoundedAggregateHashTable | None = None,
    rows_override=None,
):
    """Scan in 2P mode, switching to repartitioning when the table fills.

    A generator returning the final mode, so Adaptive Repartitioning can
    reuse this exact loop after its own fallback.  ``rows_override`` (an
    iterable of rows) replaces the fragment contents when the caller has
    already consumed part of the input.
    """
    if table is None:
        max_entries = ctx.params.hash_table_entries
        account = None
        if ctx.memory is not None:
            # Governed: budget pressure reads as a full table, so the
            # paper's switch trigger fires from the same code path.
            account = ctx.memory.open("local_table")
            max_entries = ctx.memory.cap_entries(max_entries)
        table = BoundedAggregateHashTable(
            max_entries,
            make_state_factory(bq.query.aggregates),
            account=account,
            entry_bytes=raw_item_bytes(bq),
        )
    dst_of = merge_destination(ctx)
    raw_chan = BlockedChannel(
        ctx, RAW, raw_item_bytes(bq), operator="repart_buffer"
    )
    mode = TWO_PHASE_MODE

    pages = scan_pages(ctx, fragment, cfg.pipeline)
    if rows_override is not None:
        per_page = max(
            1, ctx.params.page_bytes // fragment.relation.schema.tuple_bytes
        )
        rows = list(rows_override)
        pages = (
            (rows[i : i + per_page], None)
            for i in range(0, len(rows), per_page)
        )

    for page_rows, io in pages:
        if io is not None:
            yield io
        aggregated = 0
        forwarded = 0
        for row in page_rows:
            if not bq.matches(row):
                continue
            if mode == TWO_PHASE_MODE:
                key = bq.key_of(row)
                if table.add_values(key, bq.values_of(row)):
                    aggregated += 1
                    continue
                # Memory full and the key is new: switch, flush, go raw.
                mode = REPARTITION_MODE
                if ctx.memory is not None:
                    ctx.memory.note_rung(RUNG_SWITCH)
                ctx.decision(
                    "switch_to_repartitioning",
                    ledger_only={
                        "table_capacity": table.max_entries,
                        "memory_rung": (
                            RUNG_SWITCH if ctx.memory is not None else None
                        ),
                    },
                    tuples_seen=aggregated + forwarded,
                    groups_accumulated=len(table),
                )
                ctx.record_memory(len(table))
                yield from flush_partials(
                    ctx, bq, table.drain().items(), dst_of
                )
            forwarded += 1
            send = raw_chan.push(dst_of(bq.key_of(row)), bq.projected_row(row))
            if send is not None:
                yield send
        # Page-granular CPU charges for the two processing modes.
        p = ctx.params
        if aggregated:
            yield ctx.select_cpu(aggregated)
            yield ctx.local_agg_cpu(aggregated)
        if forwarded:
            yield ctx.repart_select_cpu(forwarded)
        unmatched = len(page_rows) - aggregated - forwarded
        if unmatched:
            yield ctx.select_cpu(unmatched)

    if mode == TWO_PHASE_MODE and len(table):
        ctx.record_memory(len(table))
        yield from flush_partials(ctx, bq, table.drain().items(), dst_of)
    for send in raw_chan.flush():
        yield send
    return mode


def adaptive_two_phase_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's complete A-2P run; returns its result rows."""
    with ctx.phase("adaptive_scan"):
        yield from adaptive_scan(ctx, fragment, bq, cfg)
        yield from broadcast_eof(ctx)
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
