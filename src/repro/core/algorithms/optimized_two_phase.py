"""Graefe's optimized Two Phase variant (discussed in Section 3.2).

When the local hash table is full, an incoming tuple of a *new* group is
hash-partitioned and forwarded raw to its merge destination instead of
being spooled — hoping an entry already exists there.  Unlike Adaptive Two
Phase, the node keeps its local table to the end (tuples of resident
groups keep aggregating locally), so: memory is held longer, every
locally aggregated tuple still passes through both phases, and a
forwarded tuple may find no entry at the destination either.

The paper argues A-2P dominates this optimization; implementing both lets
the ablation benchmark measure that claim.
"""

from __future__ import annotations

from repro.core.aggregates import make_state_factory
from repro.core.algorithms.base import (
    RAW,
    SimConfig,
    broadcast_eof,
    flush_partials,
    merge_destination,
    merge_phase,
    raw_item_bytes,
    scan_pages,
)
from repro.core.hashtable import BoundedAggregateHashTable
from repro.core.query import BoundQuery
from repro.sim.node import BlockedChannel, NodeContext
from repro.storage.relation import Fragment


def optimized_two_phase_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's optimized-2P run; returns its result rows."""
    max_entries = ctx.params.hash_table_entries
    account = None
    if ctx.memory is not None:
        account = ctx.memory.open("local_table")
        max_entries = ctx.memory.cap_entries(max_entries)
    table = BoundedAggregateHashTable(
        max_entries,
        make_state_factory(bq.query.aggregates),
        account=account,
        entry_bytes=raw_item_bytes(bq),
    )
    dst_of = merge_destination(ctx)
    raw_chan = BlockedChannel(
        ctx, RAW, raw_item_bytes(bq), operator="repart_buffer"
    )
    forwarded_total = 0

    with ctx.phase("local_aggregation"):
        for page_rows, io in scan_pages(ctx, fragment, cfg.pipeline):
            if io is not None:
                yield io
            aggregated = 0
            forwarded = 0
            for row in page_rows:
                if not bq.matches(row):
                    continue
                key = bq.key_of(row)
                if table.add_values(key, bq.values_of(row)):
                    aggregated += 1
                    continue
                forwarded += 1
                send = raw_chan.push(dst_of(key), bq.projected_row(row))
                if send is not None:
                    yield send
            yield ctx.select_cpu(len(page_rows))
            if aggregated:
                yield ctx.local_agg_cpu(aggregated)
            if forwarded:
                # Hash + destination computation for the forwarded tuples.
                p = ctx.params
                yield ctx.compute(forwarded * (p.t_h + p.t_d), "select_cpu")
            forwarded_total += forwarded

        if forwarded_total:
            ctx.decision(
                "forwarded_on_overflow",
                ledger_only={"table_capacity": table.max_entries},
                tuples=forwarded_total,
            )
        ctx.record_memory(len(table))
    with ctx.phase("flush_partials"):
        yield from flush_partials(ctx, bq, table.drain().items(), dst_of)
        for send in raw_chan.flush():
            yield send
        yield from broadcast_eof(ctx)
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
