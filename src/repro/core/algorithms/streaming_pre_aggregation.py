"""Streaming pre-aggregation with LRU eviction — the modern descendant.

The paper's adaptive algorithms later became standard practice; what
engines like Spark, Flink and DuckDB actually ship is a refinement of the
Adaptive Two Phase idea: keep a *bounded* local pre-aggregation table,
and when it fills, **evict one entry** (forwarding its partial to the
merge phase) instead of abandoning local aggregation wholesale.  Hot
groups stay resident and keep absorbing tuples; cold groups stream
through as partials.

* Uniform data, few groups: behaves like Two Phase (nothing evicts).
* Uniform data, many groups: degenerates towards Repartitioning with a
  one-tuple "partial" per input — like A-2P after its switch, but paying
  an extra table probe per tuple.
* Skewed (Zipf) data: this is where eviction wins — the heavy hitters
  collapse locally even when the distinct count far exceeds memory,
  which neither 2P (spills) nor A-2P (switches wholesale) exploits.

Implemented as an eighth algorithm so the ablation benchmarks can measure
that story against the paper's originals.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.aggregates import GroupState, make_state_factory
from repro.core.algorithms.base import (
    PARTIALS,
    SimConfig,
    broadcast_eof,
    merge_destination,
    merge_phase,
    partial_item_bytes,
    scan_pages,
)
from repro.core.query import BoundQuery
from repro.resources.governor import RUNG_BACKPRESSURE
from repro.sim.node import BlockedChannel, NodeContext
from repro.storage.relation import Fragment


class LruAggregationTable:
    """A bounded pre-aggregation table with least-recently-used eviction.

    With a governor ``account``, resident entries are charged at
    ``entry_bytes`` each; a denied charge evicts the LRU entry instead
    of growing (``pressure_evictions``) — the streaming shape of the
    ladder's backpressure rung: pressure pushes partials downstream.
    """

    def __init__(
        self,
        max_entries: int,
        state_factory,
        account=None,
        entry_bytes: int = 0,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._state_factory = state_factory
        self._account = account
        self._entry_bytes = entry_bytes
        self._table: OrderedDict = OrderedDict()
        self.evictions = 0
        self.pressure_evictions = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._table)

    def add_values(self, key, values) -> tuple | None:
        """Absorb one tuple; returns an evicted (key, state) or None."""
        state = self._table.get(key)
        if state is not None:
            state.update(values)
            self._table.move_to_end(key)
            self.hits += 1
            return None
        evicted = None
        if len(self._table) >= self.max_entries:
            evicted = self._table.popitem(last=False)  # LRU out
            self.evictions += 1
        elif self._account is not None and not self._account.try_charge(
            self._entry_bytes
        ):
            # Governor pressure with entries to spare: trade the LRU
            # entry for the new one so resident bytes stay flat.
            if self._table:
                evicted = self._table.popitem(last=False)
                self.evictions += 1
                self.pressure_evictions += 1
                self._account.ledger.note_rung(RUNG_BACKPRESSURE)
            else:
                self._account.charge(self._entry_bytes)
        state = self._state_factory()
        state.update(values)
        self._table[key] = state
        return evicted

    def drain(self) -> list[tuple]:
        items = list(self._table.items())
        self._table.clear()
        if self._account is not None:
            self._account.release(len(items) * self._entry_bytes)
        return items


def streaming_pre_aggregation_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's streaming pre-aggregation run; returns its result rows."""
    max_entries = ctx.params.hash_table_entries
    account = None
    if ctx.memory is not None:
        account = ctx.memory.open("lru_table")
        max_entries = ctx.memory.cap_entries(max_entries)
    table = LruAggregationTable(
        max_entries,
        make_state_factory(bq.query.aggregates),
        account=account,
        entry_bytes=partial_item_bytes(bq),
    )
    dst_of = merge_destination(ctx)
    chan = BlockedChannel(
        ctx, PARTIALS, partial_item_bytes(bq), operator="partials_buffer"
    )

    with ctx.phase("streaming_scan"):
        for page_rows, io in scan_pages(ctx, fragment, cfg.pipeline):
            if io is not None:
                yield io
            matched = 0
            evicted_count = 0
            for row in page_rows:
                if not bq.matches(row):
                    continue
                matched += 1
                evicted = table.add_values(bq.key_of(row), bq.values_of(row))
                if evicted is not None:
                    evicted_count += 1
                    send = chan.push(dst_of(evicted[0]), evicted)
                    if send is not None:
                        yield send
            yield ctx.select_cpu(len(page_rows))
            yield ctx.local_agg_cpu(matched)
            if evicted_count:
                yield ctx.result_cpu(evicted_count)

        if table.evictions:
            ctx.decision(
                "evictions",
                ledger_only={"table_entries": len(table)},
                count=table.evictions,
                hits=table.hits,
            )
        ctx.record_memory(len(table))
    with ctx.phase("flush_partials"):
        final_count = 0
        for key, state in table.drain():
            final_count += 1
            send = chan.push(dst_of(key), (key, state))
            if send is not None:
                yield send
        yield ctx.result_cpu(final_count)
        for send in chan.flush():
            yield send
        yield from broadcast_eof(ctx)
    with ctx.phase("merge"):
        results = yield from merge_phase(
            ctx, bq, cfg, expected_eofs=ctx.num_nodes
        )
    return results
