"""The Sampling algorithm (Section 3.1).

Before running anything, every node random-samples pages of its fragment
(priced at the random-I/O rate), aggregates the sample, and ships the
distinct group keys it saw to a coordinator — a miniature Centralized Two
Phase.  The coordinator compares the pooled distinct count (a lower bound
on the true group count) against the crossover threshold and broadcasts
the verdict; all nodes then run Two Phase or Repartitioning on the full
relation.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.algorithms.base import (
    SimConfig,
    partial_item_bytes,
)
from repro.core.algorithms.repartitioning import repartitioning_body
from repro.core.algorithms.two_phase import two_phase_body
from repro.core.query import BoundQuery
from repro.sampling.decision import (
    TWO_PHASE,
    choose_algorithm,
    crossover_threshold,
)
from repro.sampling.estimator import estimate_groups, paper_sample_size
from repro.sampling.page_sampler import sample_rows
from repro.sim.node import NodeContext
from repro.storage.relation import Fragment

SAMPLE = "sample"
DECISION = "decision"
COORDINATOR = 0


def _threshold(ctx: NodeContext, cfg: SimConfig) -> int:
    if cfg.sampling_threshold is not None:
        return cfg.sampling_threshold
    return crossover_threshold(ctx.num_nodes, groups_per_node=10)


def sampling_body(
    ctx: NodeContext, fragment: Fragment, bq: BoundQuery, cfg: SimConfig
):
    """One node's Sampling run; returns its result rows."""
    threshold = _threshold(ctx, cfg)
    total_sample = paper_sample_size(threshold, cfg.sample_multiplier)
    per_node = max(1, -(-total_sample // ctx.num_nodes))
    rng = np.random.default_rng((cfg.seed, ctx.node_id))

    with ctx.phase("sampling"):
        rows, pages_read = sample_rows(
            fragment.relation, per_node, ctx.params.page_bytes, rng
        )
        if pages_read:
            yield ctx.read_pages(pages_read, random=True, tag="sample_io")
        yield ctx.select_cpu(len(rows))
        matched = [row for row in rows if bq.matches(row)]
        yield ctx.local_agg_cpu(len(matched))
        # Ship (key, sample frequency) pairs: the frequencies cost nothing
        # extra (the sample was aggregated anyway) and let the coordinator
        # apply a species estimator instead of the plain lower bound.
        local_counts = Counter(bq.key_of(row) for row in matched)
        yield ctx.result_cpu(len(local_counts))
        yield ctx.send(
            COORDINATOR,
            SAMPLE,
            payload=sorted(local_counts.items()),
            nbytes=len(local_counts) * partial_item_bytes(bq),
        )

        if ctx.node_id == COORDINATOR:
            pooled: Counter = Counter()
            for _ in range(ctx.num_nodes):
                msg = yield ctx.recv(SAMPLE)
                yield ctx.compute(
                    len(msg.payload) * ctx.params.t_r, "merge_cpu"
                )
                for key, count in msg.payload:
                    pooled[key] += count
            estimated = estimate_groups(pooled.elements(), cfg.estimator)
            choice = choose_algorithm(round(estimated), threshold)
            ctx.decision(
                "sampling_decision",
                ledger_only={
                    "sample_size": total_sample,
                    "sample_per_node": per_node,
                    "sample_tuples_pooled": sum(pooled.values()),
                },
                distinct_in_sample=len(pooled),
                estimated_groups=estimated,
                estimator=cfg.estimator,
                threshold=threshold,
                choice=choice,
            )
            for dst in range(ctx.num_nodes):
                yield ctx.send(dst, DECISION, payload=choice)

        decision = yield ctx.recv(DECISION)
    if decision.payload == TWO_PHASE:
        results = yield from two_phase_body(ctx, fragment, bq, cfg)
    else:
        results = yield from repartitioning_body(ctx, fragment, bq, cfg)
    return results
