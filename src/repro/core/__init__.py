"""The paper's primary contribution: adaptive parallel aggregation.

``repro.core`` holds the query model, the aggregate-function partial states,
the bounded hash-aggregation engine (the Section 2 uniprocessor algorithm
with overflow-bucket spilling), and the six parallel algorithms — three
traditional baselines and the three adaptive algorithms the paper proposes —
plus Graefe's optimized Two Phase variant discussed in Section 3.2.
"""

from repro.core.aggregates import (
    AggregateSpec,
    GroupState,
    make_state_factory,
)
from repro.core.hashtable import BoundedAggregateHashTable, HashAggregator
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, AlgorithmOutcome, run_algorithm

__all__ = [
    "ALGORITHMS",
    "AggregateQuery",
    "AggregateSpec",
    "AlgorithmOutcome",
    "BoundedAggregateHashTable",
    "GroupState",
    "HashAggregator",
    "make_state_factory",
    "run_algorithm",
]
