"""The sequential reference executor — ground truth for every test.

A plain dict-based GROUP BY over all rows, with none of the memory bounds,
spilling, partitioning or adaptivity of the real algorithms.  If a
parallel algorithm's result ever differs from this, the algorithm is
wrong.
"""

from __future__ import annotations

from repro.core.aggregates import GroupState
from repro.core.query import AggregateQuery
from repro.storage.relation import DistributedRelation, Relation


def reference_aggregate(data, query: AggregateQuery) -> list[tuple]:
    """Aggregate ``data`` (a Relation or DistributedRelation) sequentially.

    Returns result rows (group key columns + aggregate values), sorted by
    group key for stable comparison.
    """
    if isinstance(data, DistributedRelation):
        relation = data.as_relation()
    elif isinstance(data, Relation):
        relation = data
    else:
        raise TypeError(
            "expected Relation or DistributedRelation, got "
            f"{type(data).__name__}"
        )
    bq = query.bind(relation.schema)
    table: dict[tuple, GroupState] = {}
    for row in relation:
        if not bq.matches(row):
            continue
        key = bq.key_of(row)
        state = table.get(key)
        if state is None:
            state = GroupState(query.aggregates)
            table[key] = state
        state.update(bq.values_of(row))
    rows = (bq.result_row(key, state) for key, state in table.items())
    return sorted(row for row in rows if bq.passes_having(row))
