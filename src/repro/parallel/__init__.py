"""Executors that run queries for real (outside the simulator).

``local`` is the sequential reference executor every test compares
against; ``mp_executor`` is a genuine multiprocessing two-phase executor
(correctness-oriented — the repro notes explain that GIL/1-core hosts make
Python wall-clock speedups meaningless, so timing claims come from the
simulator).
"""

from repro.parallel.file_executor import (
    file_backed_aggregate,
    materialize_fragments,
)
from repro.parallel.local import reference_aggregate
from repro.parallel.mp_executor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DeadlineExceededError,
    FragmentFailedError,
    InjectedFaultError,
    PoolCircuitBreaker,
    WorkerFailure,
    multiprocessing_aggregate,
    pool_breaker_state,
    reset_pool_breaker,
    shutdown_worker_pool,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "DeadlineExceededError",
    "FragmentFailedError",
    "InjectedFaultError",
    "PoolCircuitBreaker",
    "WorkerFailure",
    "file_backed_aggregate",
    "materialize_fragments",
    "multiprocessing_aggregate",
    "pool_breaker_state",
    "reference_aggregate",
    "reset_pool_breaker",
    "shutdown_worker_pool",
]
