"""An out-of-core, file-backed Two Phase executor.

The fully "real" execution path: each node's fragment lives in a binary
page file (``repro.storage.pagefile``), the local phase streams it page
by page through a bounded :class:`HashAggregator` whose overflow buckets
spool to actual disk files (:class:`FileSpillStore`), and the merge
phase combines the partials.  Nothing is simulated — this is the
Section 2 algorithm running against the operating system's file system,
exactly as the paper's implementation did (minus PVM).
"""

from __future__ import annotations

import os

from repro.core.aggregates import GroupState, make_state_factory
from repro.core.hashtable import HashAggregator
from repro.core.query import AggregateQuery
from repro.storage.pagefile import PageFile, write_relation_file
from repro.storage.relation import DistributedRelation
from repro.storage.spill import FileSpillStore


def materialize_fragments(
    dist: DistributedRelation, directory: str, page_bytes: int = 4096
) -> list[str]:
    """Write each fragment as ``node_<i>.pages``; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for frag in dist.fragments:
        path = os.path.join(directory, f"node_{frag.node_id}.pages")
        write_relation_file(frag.relation, path, page_bytes)
        paths.append(path)
    return paths


def file_backed_aggregate(
    dist: DistributedRelation,
    query: AggregateQuery,
    directory: str,
    max_entries: int = 10_000,
    page_bytes: int = 4096,
) -> tuple[list[tuple], dict]:
    """Run Two Phase out-of-core over page files.

    Returns (sorted result rows, stats) where stats reports pages read,
    spill bytes, and overflow passes — the observable I/O of the run.
    """
    paths = materialize_fragments(dist, directory, page_bytes)
    bq = query.bind(dist.schema)
    factory = make_state_factory(query.aggregates)
    stats = {
        "pages_read": 0,
        "spill_bytes": 0,
        "overflow_passes": 0,
        "partials": 0,
    }

    # Phase 1: per-fragment bounded aggregation, spilling to real files.
    partial_lists: list[list] = []
    for node_id, path in enumerate(paths):
        pagefile = PageFile(path, dist.schema, page_bytes)
        store = FileSpillStore(
            os.path.join(directory, f"spill_{node_id}")
        )
        agg = HashAggregator(factory, max_entries, spill_store=store)
        for page_no in range(pagefile.num_pages()):
            stats["pages_read"] += 1
            for row in pagefile.read_page(page_no):
                if bq.matches(row):
                    agg.add_values(bq.key_of(row), bq.values_of(row))
        partials = list(agg.finish())
        stats["spill_bytes"] += store.bytes_written
        stats["overflow_passes"] += agg.overflow_passes
        stats["partials"] += len(partials)
        store.close()
        partial_lists.append(partials)

    # Phase 2: merge the partials (in memory — the result fits by the
    # time it is one state per group).
    merged: dict[tuple, GroupState] = {}
    for partials in partial_lists:
        for key, state in partials:
            mine = merged.get(key)
            if mine is None:
                merged[key] = state.copy()
            else:
                mine.merge(state)
    rows = (bq.result_row(key, state) for key, state in merged.items())
    results = sorted(row for row in rows if bq.passes_having(row))
    return results, stats
