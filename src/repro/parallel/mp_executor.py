"""A real multiprocessing Two Phase executor.

Each worker process aggregates one node's fragment (phase 1); the parent
merges the partial states (phase 2).  This demonstrates the library's
partial-aggregate states compose across *real* process boundaries — the
states are picklable by construction — while the simulator remains the
source of timing results (see DESIGN.md on the GIL/1-core substitution).

``processes=0`` (the default) sizes the pool to the fragment count but
falls back to in-process execution when the host has a single CPU, so the
test suite stays fast everywhere.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.core.aggregates import GroupState
from repro.core.query import AggregateQuery
from repro.storage.relation import DistributedRelation


def _local_phase(args) -> list[tuple[tuple, GroupState]]:
    """Phase 1 for one fragment: (rows, query, schema) -> partials."""
    rows, query, schema = args
    bq = query.bind(schema)
    table: dict[tuple, GroupState] = {}
    for row in rows:
        if not bq.matches(row):
            continue
        key = bq.key_of(row)
        state = table.get(key)
        if state is None:
            state = GroupState(query.aggregates)
            table[key] = state
        state.update(bq.values_of(row))
    return list(table.items())


def multiprocessing_aggregate(
    dist: DistributedRelation,
    query: AggregateQuery,
    processes: int = 0,
) -> list[tuple]:
    """Two Phase over real processes; returns sorted result rows."""
    jobs = [
        (frag.relation.rows, query, dist.schema) for frag in dist.fragments
    ]
    cpu_count = os.cpu_count() or 1
    if processes == 0:
        processes = min(len(jobs), cpu_count)
    if processes <= 1:
        partial_lists = [_local_phase(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes) as pool:
            partial_lists = pool.map(_local_phase, jobs)

    bq = query.bind(dist.schema)
    merged: dict[tuple, GroupState] = {}
    for partials in partial_lists:
        for key, state in partials:
            mine = merged.get(key)
            if mine is None:
                merged[key] = state.copy()
            else:
                mine.merge(state)
    rows = (bq.result_row(key, state) for key, state in merged.items())
    return sorted(row for row in rows if bq.passes_having(row))
