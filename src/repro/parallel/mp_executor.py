"""A real multiprocessing Two Phase executor, hardened against failures.

Each worker process aggregates one node's fragment (phase 1); the parent
merges the partial states (phase 2).  This demonstrates the library's
partial-aggregate states compose across *real* process boundaries — the
states are picklable by construction — while the simulator remains the
source of timing results (see DESIGN.md on the GIL/1-core substitution).

Dispatch (``strategy="pool"``, the default) runs through a persistent
worker pool: workers are forked once and reused across fragments, retries
and runs, and each fragment's rows travel as one fixed-width
:class:`~repro.storage.RowBlock` encoding in a ``repro_mp_``-named
``multiprocessing.shared_memory`` segment — only a small job descriptor
(segment name, row count, query, schema) is pickled over the pipe.  When
the query has no WHERE predicate and the caller did not substitute a
``phase_fn``, rows are projected to the key + aggregate columns before
encoding, so an evaluation-schema tuple ships 16 of its 100 bytes.
Segments are owned by the parent and unlinked on *every* exit path
(success, worker error, timeout, dead worker, FragmentFailedError).
``strategy="spawn"`` keeps the pre-pool dispatch — one freshly spawned
process per fragment attempt with the whole row list pickled to it — as
the comparison baseline for ``benchmarks/bench_throughput.py``.

Either way the parent detects a worker that raises, dies, or exceeds
``timeout`` seconds and retries that one fragment (in a fresh or
replacement worker) up to ``max_retries`` times.  A fragment that
still fails raises :class:`FragmentFailedError` carrying the partial
progress (every fragment that *did* complete) — the executor never hangs
on a dead or wedged worker.

``processes=0`` (the default) sizes the pool to the fragment count but
falls back to in-process execution when the host has a single CPU, so the
test suite stays fast everywhere.

The pool path is chaos-hardened end to end:

- **Unified fault injection** — the same seedable
  :class:`~repro.sim.faults.FaultPlan` that drives the simulator drives
  real-process injection here (``faults=plan``): a ``CrashFault``
  SIGKILLs the fragment's worker at job start (the worker shim delivers
  the signal to itself, so the crash always lands on the scheduled
  fragment), a ``Straggler`` limps it with an artificial per-row
  slowdown, a ``WorkerStall`` self-SIGSTOPs it until the parent's
  scheduled SIGCONT (the limplock scenario), ``read_error_rate`` raises
  :class:`InjectedFaultError` inside the worker, and ``message_loss``
  unlinks the fragment's shared-memory segment before dispatch.  Which
  faults fire where is the plan's deterministic
  ``injection_schedule`` — identical (kind, target, ordinal) tuples on
  the sim and mp substrates for a given seed.
- **Heartbeats** — workers emit liveness + progress beats mid-job over
  their pipes; the dispatcher declares a silent worker ``HeartbeatLost``
  after ``heartbeat_timeout`` seconds instead of waiting out the full
  job timeout, and detects workers that died while *idle* eagerly.
- **Speculative re-execution** — with ``speculate=True``, a fragment
  running longer than a robust multiple of the median attempt time gets
  a backup attempt on another worker; first result wins, the loser is
  cancelled, and every speculation is recorded through the
  :class:`~repro.obs.decisions.DecisionLedger` with a post-hoc verdict.
- **Quarantine + circuit breaker** — a fragment that kills
  ``poison_threshold`` workers fails fast as a ``PoisonFragment`` with
  the full cause chain; repeated infrastructure-level run failures trip
  a module-level breaker that rebuilds the shared pool once and then
  degrades ``strategy="pool"`` to the spawn path, surfaced in
  ``mp.breaker.*`` metrics and trace events.

The fault-free path is byte-identical to the pre-chaos executor; the
golden parity tests pin that.

The executor is also safe for **concurrent multi-threaded callers**
(the long-lived query service in :mod:`repro.service` is the first):
the shared pool hands out each worker to exactly one dispatcher at a
time under a pool lock, idle-pipe watching is restricted to a sole
dispatcher (concurrent runs detect idle deaths at acquire instead),
worker forks are serialized, and a pool that was shut down while
another run still held its workers discards them on release instead of
resurrecting them as orphans.  ``deadline=`` (an absolute
``time.monotonic()`` value) bounds a whole run: when it expires the
dispatcher cancels every in-flight attempt through the same
discard-on-timeout path, unlinks all shared-memory segments, and
raises :class:`DeadlineExceededError` — cooperative cancellation for
callers that serve queries under latency budgets.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import secrets
import signal
import statistics
import struct
import threading
import time
from collections import deque
from multiprocessing import resource_tracker, shared_memory
from multiprocessing.connection import wait as _connection_wait

from repro.core.aggregates import GroupState
from repro.core.query import AggregateQuery
from repro.obs.decisions import (
    MP_STRATEGY_CHOICE,
    MP_STRATEGY_RESAMPLE,
    SPECULATIVE_EXECUTION,
    VERDICT_CORRECT,
    VERDICT_WRONG_CHEAP,
    VERDICT_WRONG_COSTLY,
)
from repro.obs.profile import WorkerProfile, profile_finish, profile_start
from repro.obs.tracer import PHASE as _CAT_PHASE
from repro.resources.governor import MemoryExceededError
from repro.sim.faults import (
    INJECT_ERROR,
    INJECT_KILL,
    INJECT_SHM_LOSS,
    INJECT_SLOW,
    INJECT_STALL,
)
from repro.storage.columnblock import (
    ColumnBlock,
    StringDictionary,
    have_numpy,
)
from repro.storage.hashing import stable_hash
from repro.storage.relation import DistributedRelation
from repro.storage.serialization import RowCodec

_JOIN_GRACE_SECONDS = 5.0

# Every executor-owned shared-memory segment uses this name prefix, so
# leaked segments are countable (tests/test_mp_shm.py greps /dev/shm).
SHM_PREFIX = "repro_mp_"

# Accounting for the per-fragment memory budget: one resident group costs
# roughly its projected attributes plus running-state overhead.
_ENTRY_OVERHEAD_BYTES = 8
_MIN_SPILL_ENTRIES = 8


class FragmentFailedError(RuntimeError):
    """One fragment's phase-1 job failed after exhausting its retries.

    ``partial_results`` maps fragment index to the completed partial
    lists, so a caller can salvage finished work or re-dispatch only the
    failed fragment.  ``cause_type`` is the exception type name of the
    final failure (e.g. ``"MemoryExceededError"``, ``"WorkerDied"``,
    ``"Timeout"``) so callers can branch on *what* failed without
    parsing the message.
    """

    def __init__(
        self,
        fragment_index: int,
        attempts: int,
        cause: str,
        partial_results: dict[int, list],
        cause_type: str | None = None,
    ) -> None:
        super().__init__(
            f"fragment {fragment_index} failed after {attempts} "
            f"attempt(s): {cause}"
        )
        self.fragment_index = fragment_index
        self.attempts = attempts
        self.cause = cause
        self.cause_type = cause_type
        self.partial_results = partial_results


class DeadlineExceededError(RuntimeError):
    """The run's deadline expired before every fragment completed.

    Raised by :func:`multiprocessing_aggregate` when ``deadline=`` (an
    absolute ``time.monotonic()`` value) passes mid-run.  In-flight
    attempts are cancelled through the pool's discard path and every
    shared-memory segment is unlinked before this propagates, so a
    deadline miss never leaks processes or segments.  Distinct from
    :class:`FragmentFailedError` on purpose: a deadline miss says the
    *caller's* latency budget ran out, not that the executor (or the
    user's phase function) is sick — retrying at the same budget is
    pointless and the circuit breaker ignores it.
    """

    def __init__(
        self,
        deadline_seconds: float,
        completed_fragments: int,
        total_fragments: int,
    ) -> None:
        super().__init__(
            f"run deadline exceeded after {deadline_seconds:.3f}s with "
            f"{completed_fragments}/{total_fragments} fragment(s) complete"
        )
        self.deadline_seconds = deadline_seconds
        self.completed_fragments = completed_fragments
        self.total_fragments = total_fragments


class InjectedFaultError(RuntimeError):
    """Raised inside a worker by the fault injector (``read_error_rate``)."""


class WorkerFailure(RuntimeError):
    """The reconstructed cause of a cross-process fragment failure.

    Worker exceptions arrive as ``{"type", "message"}`` dicts — the
    original object cannot cross the pipe — so the final
    :class:`FragmentFailedError` chains from one of these (``raise …
    from WorkerFailure(error)``), giving pool and spawn dispatch the
    same cause-chain shape the in-process path gets from the real
    exception.
    """

    def __init__(self, error: dict) -> None:
        super().__init__(
            f"{error.get('type', 'Unknown')}: {error.get('message', '')}"
        )
        self.error_type = error.get("type", "Unknown")


def _local_phase(args) -> list[tuple[tuple, GroupState]]:
    """Phase 1 for one fragment: (source, query, schema) -> partials.

    ``source`` is a row list, or — for block-born fragments on the
    in-process path — a :class:`~repro.storage.ColumnBlock`, which runs
    through the columnar kernel and only decodes to rows when a kernel
    guard declines the shape.
    """
    rows, query, schema = args
    if isinstance(rows, ColumnBlock):
        result = _columnar_local_phase(rows, query)
        if result is not None:
            return result
        rows = rows.to_rows()
    bq = query.bind(schema)
    table: dict[tuple, GroupState] = {}
    for row in rows:
        if not bq.matches(row):
            continue
        key = bq.key_of(row)
        state = table.get(key)
        if state is None:
            state = GroupState(query.aggregates)
            table[key] = state
        state.update(bq.values_of(row))
    return list(table.items())


class _GovernedPhase:
    """Phase 1 under a byte budget — rung 4 of the degradation ladder.

    Picklable (a plain instance of a module-level class), so it crosses
    the worker-process boundary like any ``phase_fn``.  First attempt
    (``spill=False``): aggregate in memory with a watchdog that raises
    :class:`~repro.resources.MemoryExceededError` — carrying the
    high-water mark — the moment the table would outgrow the budget.
    Retry attempts (``spill=True``): rerun out-of-core at the reduced
    budget, spooling overflow groups through a
    :class:`~repro.storage.spill.FileSpillStore`, which completes under
    any budget without losing tuples.
    """

    def __init__(self, budget_bytes: int, spill: bool) -> None:
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = budget_bytes
        self.spill = spill

    def _entry_bytes(self, bq) -> int:
        return max(1, bq.projected_bytes) + _ENTRY_OVERHEAD_BYTES

    def __call__(self, job) -> list[tuple[tuple, GroupState]]:
        rows, query, schema = job
        if isinstance(rows, ColumnBlock):
            # The budget ladder governs the per-row table; a block-born
            # fragment decodes first so accounting stays identical.
            rows = rows.to_rows()
        bq = query.bind(schema)
        entry_bytes = self._entry_bytes(bq)
        if self.spill:
            return self._spill_phase(rows, query, bq, entry_bytes)
        return self._watchdog_phase(rows, query, bq, entry_bytes)

    def _watchdog_phase(self, rows, query, bq, entry_bytes):
        table: dict[tuple, GroupState] = {}
        for row in rows:
            if not bq.matches(row):
                continue
            key = bq.key_of(row)
            state = table.get(key)
            if state is None:
                used = len(table) * entry_bytes
                if used + entry_bytes > self.budget_bytes:
                    raise MemoryExceededError(
                        "mp_local_phase",
                        self.budget_bytes,
                        high_water_bytes=used,
                        requested_bytes=entry_bytes,
                    )
                state = GroupState(query.aggregates)
                table[key] = state
            state.update(bq.values_of(row))
        return list(table.items())

    def _spill_phase(self, rows, query, bq, entry_bytes):
        from repro.core.hashtable import HashAggregator
        from repro.storage.spill import FileSpillStore

        max_entries = max(
            _MIN_SPILL_ENTRIES, self.budget_bytes // entry_bytes
        )
        with FileSpillStore() as store:
            agg = HashAggregator(
                lambda: GroupState(query.aggregates),
                max_entries,
                spill_store=store,
            )
            for row in rows:
                if not bq.matches(row):
                    continue
                agg.add_values(bq.key_of(row), bq.values_of(row))
            return list(agg.finish())


def _tracker_noop(*_args, **_kwargs) -> None:
    return None


def _disarm_resource_tracker() -> None:
    """Fork-safety: neuter the inherited resource tracker in a worker.

    Must run first thing in every forked child.  The parent's tracker
    lock may be *held by another thread* at fork time — concurrent
    dispatchers encode segments (``SharedMemory(create=True)`` registers
    with the tracker) while ``WorkerPool.acquire`` forks — and a lock
    captured mid-hold never unlocks in the child, because its owner
    thread does not exist there.  On this Python, merely *attaching* a
    segment also registers with the tracker, so the worker's first shm
    attach would deadlock forever and hang its dispatcher.

    Workers never own segments — the parent creates and unlinks all of
    them — so the tracker has no business in a worker at all: make
    register/unregister no-ops instead of trying to repair the lock.
    """
    resource_tracker.register = _tracker_noop
    resource_tracker.unregister = _tracker_noop
    resource_tracker.ensure_running = _tracker_noop
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    if tracker is not None:
        tracker.register = _tracker_noop
        tracker.unregister = _tracker_noop
        tracker.ensure_running = _tracker_noop


def _child_main(fn, job, conn) -> None:
    """Worker entry: run the phase, self-profile, and report back.

    The reply is ``(status, payload, profile)``: status "ok" carries the
    result, status "error" a ``{"type", "message"}`` dict preserving the
    exception's type so the parent can classify the failure; ``profile``
    is the worker's self-measurement (wall/CPU seconds, high-water RSS).
    """
    _disarm_resource_tracker()
    started = profile_start()
    try:
        result = fn(job)
    except BaseException as exc:  # report, don't let the child hang
        try:
            conn.send(
                (
                    "error",
                    {"type": type(exc).__name__, "message": str(exc)},
                    profile_finish(started),
                )
            )
        finally:
            conn.close()
        return
    conn.send(("ok", result, profile_finish(started)))
    conn.close()


# -- shared-memory row-block transfer ----------------------------------------

_NP_FORMATS = {"int": "<i8", "float": "<f8"}

# Ship fragments as dictionary-encoded ColumnBlocks whenever the query
# shape allows (GROUP BY, no WHERE, default phase).  The toggle exists
# for the benchmarks: bench_columnar.py measures the columnar kernel
# against the PR 5 row-block path by flipping it off.
_COLUMNAR_ENABLED = True


def set_columnar_shipping(enabled: bool) -> bool:
    """Enable/disable columnar block shipping; returns the previous value."""
    global _COLUMNAR_ENABLED
    previous = _COLUMNAR_ENABLED
    _COLUMNAR_ENABLED = bool(enabled)
    return previous


def _block_dtype(schema):
    """The numpy structured dtype matching RowCodec's packed layout, or
    None when numpy is unavailable (str columns become opaque void
    fields, so any schema maps)."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a test/bench dep
        return None
    return np.dtype(
        {
            "names": [c.name for c in schema.columns],
            "formats": [
                _NP_FORMATS.get(c.kind, f"V{c.size_bytes}")
                for c in schema.columns
            ],
        }
    )


def _encode_rows_columnwise(rows, schema, idx=None):
    """Row-block encoding via one numpy array fill per column.

    ``idx`` maps schema column ``i`` to source-row position ``idx[i]``,
    so projection happens during column extraction — the projected
    tuples are never materialized.  ~4x faster than per-row struct
    packing for the numeric schemas the executor ships.  Returns None
    when the shape is outside the fast subset (str columns, values a C
    int64/double cannot hold, no numpy) — the caller then falls back to
    ``RowCodec.encode_many``.
    """
    if any(c.kind == "str" for c in schema.columns):
        return None
    dtype = _block_dtype(schema)
    if dtype is None:
        return None
    try:
        import numpy as np

        arr = np.empty(len(rows), dtype=dtype)
        for i, col in enumerate(schema.columns):
            j = i if idx is None else idx[i]
            values = np.asarray([row[j] for row in rows])
            if col.kind == "int" and values.dtype.kind != "i":
                return None  # bools/objects: let struct decide exactness
            if col.kind == "float":
                values = values.astype("<f8", copy=False)
            arr[col.name] = values
        return arr.tobytes()
    except (OverflowError, TypeError, ValueError, IndexError):
        return None


def _projection_for(query: AggregateQuery, schema):
    """(subschema, column indexes) shipping only key + aggregate columns.

    Returns None when projection is unsafe or useless: a WHERE predicate
    may read any column, and a COUNT(*)-only query has no needed columns
    (an empty schema cannot exist — ship the full rows).
    """
    if query.where is not None:
        return None
    used = set(query.group_by)
    used.update(
        spec.column for spec in query.aggregates if spec.column is not None
    )
    needed = [c.name for c in schema.columns if c.name in used]
    if not needed or len(needed) == len(schema.columns):
        return None
    return schema.project(needed), schema.indexes_of(needed)


def _encode_fragment(rows, query, schema, segments: list, project: bool = True):
    """Encode one fragment into a shared-memory segment; returns the job
    descriptor for the pool worker.

    The descriptor is ``("shm_col", name, nbytes, num_rows, query,
    schema)`` when the fragment ships as a dictionary-encoded
    :class:`~repro.storage.ColumnBlock` (the default for GROUP BY
    queries without WHERE — the shape the columnar kernel covers), or
    ``("shm", name, num_rows, query, schema)`` for the fixed-width
    row-block encoding.  Either way the segment (appended to
    ``segments``, which the caller owns and unlinks) holds one
    contiguous buffer.  Rows neither codec can encode (a value wider
    than its column, an int outside int64) fall back to an
    ``("inline", job)`` descriptor pickled over the pipe, preserving the
    legacy behavior for them.  ``project=False`` ships the full rows —
    required when a substituted ``phase_fn`` inspects raw tuples.

    ``rows`` may also be a :class:`~repro.storage.ColumnBlock` (a
    block-born fragment): the shippable shape projects and serializes
    the block columnwise — zero row round-trips from generator to
    worker — and anything else (columnar shipping off, WHERE, no
    GROUP BY) decodes once and takes the legacy row paths below.
    """
    if isinstance(rows, ColumnBlock):
        block = rows
        if (
            _COLUMNAR_ENABLED
            and project
            and block.num_rows
            and query.group_by
            and query.where is None
            and have_numpy()
        ):
            proj = _projection_for(query, block.schema)
            if proj is not None:
                ship_schema, idx = proj
                block = block.project(idx, ship_schema)
            else:
                ship_schema = block.schema
            data = block.to_bytes()
            shm = shared_memory.SharedMemory(
                create=True, size=len(data),
                name=SHM_PREFIX + secrets.token_hex(8),
            )
            segments.append(shm)
            shm.buf[: len(data)] = data
            return (
                "shm_col", shm.name, len(data), block.num_rows, query,
                ship_schema,
            )
        rows = block.to_rows()
    proj = None if not (rows and project) else _projection_for(query, schema)
    if proj is not None:
        ship_schema, idx = proj
    else:
        ship_schema, idx = schema, None
    if (
        _COLUMNAR_ENABLED
        and project
        and rows
        and query.group_by
        and query.where is None
        and have_numpy()
    ):
        try:
            data = ColumnBlock.from_rows(ship_schema, rows, idx=idx).to_bytes()
        except (ValueError, OverflowError, TypeError):
            data = None  # fall through to the row-block path
        if data:
            shm = shared_memory.SharedMemory(
                create=True, size=len(data),
                name=SHM_PREFIX + secrets.token_hex(8),
            )
            segments.append(shm)
            shm.buf[: len(data)] = data
            return (
                "shm_col", shm.name, len(data), len(rows), query, ship_schema
            )
    data = _encode_rows_columnwise(rows, ship_schema, idx)
    if data is None:
        if idx is not None:
            if len(idx) == 1:
                k = idx[0]
                rows = [(row[k],) for row in rows]
            else:
                rows = [tuple(row[i] for i in idx) for row in rows]
        try:
            data = RowCodec(ship_schema).encode_many(rows)
        except (ValueError, TypeError, AttributeError, struct.error):
            # The rows were already projected above, so the inline job
            # must carry the projected schema — pairing them with the
            # full schema would bind key/aggregate columns to the wrong
            # positions.
            return ("inline", (rows, query, ship_schema))
    if not data:  # SharedMemory cannot be zero-sized
        return ("inline", (rows, query, ship_schema))
    shm = shared_memory.SharedMemory(
        create=True, size=len(data), name=SHM_PREFIX + secrets.token_hex(8)
    )
    segments.append(shm)
    shm.buf[: len(data)] = data
    return ("shm", shm.name, len(rows), query, ship_schema)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifecycle.

    Attaching registers the segment with a resource tracker, which would
    unlink it again at exit — but the parent owns the lifecycle.  Forked
    workers share the parent's tracker, where registration is idempotent
    and the parent's ``unlink`` deregisters exactly once, so nothing to
    undo; under any other start method the worker has its *own* tracker
    and the attachment must be unregistered immediately.
    """
    shm = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:  # pragma: no cover - non-fork platforms
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


def _segment_bytes(descriptor) -> bytes:
    """Copy a descriptor's block payload out of its segment."""
    if descriptor[0] == "shm_col":
        _kind, name, nbytes = descriptor[:3]
    else:
        _kind, name, num_rows, _query, schema = descriptor
        nbytes = num_rows * RowCodec(schema).row_bytes
    shm = _attach_segment(name)
    try:
        return bytes(shm.buf[:nbytes])
    finally:
        shm.close()


def _load_block(descriptor) -> ColumnBlock:
    """Worker side: parse an shm_col descriptor's ColumnBlock."""
    _kind, _name, _nbytes, num_rows, _query, schema = descriptor
    block = ColumnBlock.from_bytes(schema, _segment_bytes(descriptor))
    if block.num_rows != num_rows:
        raise ValueError(
            f"columnar segment holds {block.num_rows} rows, "
            f"descriptor says {num_rows}"
        )
    return block


def _load_job(descriptor):
    """Worker side: materialize a descriptor back into (rows, query, schema)."""
    if descriptor[0] == "inline":
        return descriptor[1]
    if descriptor[0] == "shm_col":
        _kind, _name, _nbytes, _num_rows, query, schema = descriptor
        return (_load_block(descriptor).to_rows(), query, schema)
    _kind, _name, _num_rows, query, schema = descriptor
    rows = RowCodec(schema).decode_many(_segment_bytes(descriptor))
    return (rows, query, schema)


def _vectorized_local_phase(data, num_rows, query, schema):
    """Phase 1 straight off the block encoding — no per-row decode.

    Views the fixed-width buffer as a numpy structured array and folds
    each fragment with ``np.unique`` + ``np.bincount``.  Returns the
    (key, GroupState) partials, or None when the query shape is outside
    the vectorized subset — single int grouping column, no WHERE, and
    count/sum/min/max/avg/var/stddev over float columns — in which case
    the caller decodes and runs the per-row phase.

    Results are identical to the per-row phase, not merely close:
    ``bincount`` accumulates weights in input order, exactly the order
    the sequential loop adds them, so float sums agree bit for bit
    (min/max/count are order-insensitive anyway).  The one deliberate
    deviation: SUM/AVG/VAR over *int* columns fall back, because the
    per-row path keeps Python arbitrary-precision sums.
    """
    if query.where is not None or not query.group_by:
        return None
    bq = query.bind(schema)
    key_idx = bq.key_indexes
    if len(key_idx) != 1:
        return None
    columns = schema.columns
    if columns[key_idx[0]].kind != "int":
        return None
    plans: list[tuple[str, int | None]] = []
    for spec, col_idx in zip(query.aggregates, bq.agg_indexes):
        func = spec.func
        if func == "count":
            # Codec rows never carry NULL, so COUNT(col) == COUNT(*).
            plans.append(("count", None))
            continue
        if func not in ("sum", "min", "max", "avg", "var", "stddev"):
            return None
        kind = columns[col_idx].kind
        if kind == "str" or (func not in ("min", "max") and kind != "float"):
            return None
        plans.append((func, col_idx))
    dtype = _block_dtype(schema)
    if dtype is None or dtype.itemsize * num_rows != len(data):
        return None

    import numpy as np

    arr = np.frombuffer(data, dtype=dtype, count=num_rows)
    uniq, inv = np.unique(arr[columns[key_idx[0]].name], return_inverse=True)
    n_groups = len(uniq)
    counts = np.bincount(inv, minlength=n_groups)
    spec_states: list[list] = []
    for (func, col_idx), spec in zip(plans, query.aggregates):
        states = [spec.new_state() for _ in range(n_groups)]
        if func == "count":
            for state, c in zip(states, counts.tolist()):
                state.count = c
            spec_states.append(states)
            continue
        values = arr[columns[col_idx].name]
        if func in ("min", "max"):
            ufunc = np.minimum if func == "min" else np.maximum
            if columns[col_idx].kind == "int":
                # Accumulate in int64, not float: a float accumulator
                # would round extremes beyond 2**53 where the per-row
                # path keeps exact ints.
                info = np.iinfo(np.int64)
                acc = np.full(
                    n_groups,
                    info.max if func == "min" else info.min,
                    dtype=np.int64,
                )
                ufunc.at(acc, inv, values)
                extremes = acc.tolist()
            else:
                acc = np.full(n_groups, np.inf if func == "min" else -np.inf)
                ufunc.at(acc, inv, values)
                extremes = acc.tolist()
            for state, v in zip(states, extremes):
                state.value = v
        elif func == "sum":
            totals = np.bincount(inv, weights=values, minlength=n_groups)
            for state, t in zip(states, totals.tolist()):
                state.total = t
                state.seen = True
        elif func == "avg":
            totals = np.bincount(inv, weights=values, minlength=n_groups)
            for state, t, c in zip(states, totals.tolist(), counts.tolist()):
                state.total = t
                state.count = c
        else:  # var / stddev share VarianceState's three moments
            totals = np.bincount(inv, weights=values, minlength=n_groups)
            sq = np.bincount(inv, weights=values * values, minlength=n_groups)
            for state, t, s, c in zip(
                states, totals.tolist(), sq.tolist(), counts.tolist()
            ):
                state.total = t
                state.total_sq = s
                state.count = c
        spec_states.append(states)

    out = []
    for g, key in enumerate(uniq.tolist()):
        group = GroupState.__new__(GroupState)
        group.states = [states[g] for states in spec_states]
        out.append(((key,), group))
    return out


# -- the columnar kernel ------------------------------------------------------
#
# Works directly on a ColumnBlock's buffers: group keys of any type and
# arity via per-column ``np.unique`` codes (string columns group over
# their int32 dictionary codes), aggregates via ``bincount``/``ufunc.at``
# folds.  Every guard below exists to keep the kernel *bit-identical* to
# the per-row phase, not merely close — when a shape could diverge
# (NaN keys, signed-zero ties, int sums past exact float range) the
# kernel refuses and the caller runs the per-row loop instead.


def _aslist(data):
    """Python list from a numpy array or any sequence."""
    return data.tolist() if hasattr(data, "tolist") else list(data)


def _decode_unique(cblock, col_idx, kind, uniq):
    """Decoded Python values for one column's unique array."""
    if kind == "str":
        values = cblock.dictionaries[col_idx].values
        return [values[c] for c in uniq.tolist()]
    return uniq.tolist()


def _columnar_group_keys(cblock, query):
    """Group-key codes for a block: (decoded key columns, inv, n_groups).

    ``decoded[j][g]`` is key column ``j``'s Python value for group ``g``
    and ``inv[r]`` is row ``r``'s group index.  Returns None when the
    per-row path's key semantics cannot be reproduced vectorized: NaN
    keys (Python dicts keep distinct NaN objects distinct, ``np.unique``
    collapses them) and signed-zero float keys (the dict keeps the
    first-seen representative, the sort may not).
    """
    import numpy as np

    bq = query.bind(cblock.schema)
    columns = cblock.schema.columns
    per_col = []
    for i in bq.key_indexes:
        col = cblock.columns[i]
        if columns[i].kind == "float" and len(col):
            if np.isnan(col).any():
                return None
            zeros = col == 0.0
            if zeros.any() and np.signbit(col[zeros]).any():
                return None
        uniq, codes = np.unique(col, return_inverse=True)
        per_col.append((i, columns[i].kind, uniq, codes.reshape(-1)))
    if len(per_col) == 1:
        i, kind, uniq, inv = per_col[0]
        return [_decode_unique(cblock, i, kind, uniq)], inv, len(uniq)
    stacked = np.column_stack(
        [np.asarray(c[3], dtype=np.int64) for c in per_col]
    )
    uniq_rows, inv = np.unique(stacked, axis=0, return_inverse=True)
    inv = inv.reshape(-1)
    decoded = []
    for j, (i, kind, uniq, _codes) in enumerate(per_col):
        vals = _decode_unique(cblock, i, kind, uniq)
        decoded.append([vals[c] for c in uniq_rows[:, j].tolist()])
    return decoded, inv, len(uniq_rows)


def _distinct_pairs(cblock, col_idx, inv, n_groups):
    """Sorted-unique ``(group, value)`` arrays for COUNT(DISTINCT).

    One structured-array unique over the whole column; the result is the
    column's distinct pairs sorted by (group, value) — the packed wire
    form for the distinct merge.  None for float columns containing NaN:
    the per-row path's set keeps each decoded NaN object as its own
    element while ``np.unique`` collapses them.
    """
    import numpy as np

    kind = cblock.schema.columns[col_idx].kind
    col = cblock.columns[col_idx]
    if kind == "float" and len(col) and np.isnan(col).any():
        return None
    rec = np.empty(len(col), dtype=[("g", np.int64), ("v", col.dtype)])
    rec["g"] = inv
    rec["v"] = col
    pairs = np.unique(rec)
    return pairs["g"], pairs["v"]


def _distinct_sets(cblock, col_idx, inv, n_groups):
    """Per-group distinct-value sets (the unpacked distinct state)."""
    pairs = _distinct_pairs(cblock, col_idx, inv, n_groups)
    if pairs is None:
        return None
    groups, vals = pairs
    sets: list[set] = [set() for _ in range(n_groups)]
    if cblock.schema.columns[col_idx].kind == "str":
        values = cblock.dictionaries[col_idx].values
        for g, v in zip(groups.tolist(), vals.tolist()):
            sets[g].add(values[v])
    else:
        for g, v in zip(groups.tolist(), vals.tolist()):
            sets[g].add(v)
    return sets


def _str_extremes(cblock, col_idx, inv, n_groups, func, as_codes=False):
    """Per-group MIN/MAX over a dictionary-encoded string column.

    Ranks the dictionary once (sort its values, invert the permutation),
    folds the per-row ranks with ``minimum.at``/``maximum.at``, and
    decodes the winning ranks — the same total order Python's ``<``
    gives, so results match the per-row fold exactly.  With
    ``as_codes=True`` the winners come back as an int64 array of
    *dictionary codes* instead of decoded strings — the packed wire
    form, which the parent merge re-ranks against the union dictionary
    without ever materializing per-group strings.
    """
    import numpy as np

    dvals = cblock.dictionaries[col_idx].values
    order = sorted(range(len(dvals)), key=dvals.__getitem__)
    rank_of = np.empty(len(dvals), dtype=np.int64)
    rank_of[np.asarray(order, dtype=np.int64)] = np.arange(
        len(dvals), dtype=np.int64
    )
    ranks = rank_of[cblock.columns[col_idx]]
    if func == "min":
        acc = np.full(n_groups, len(dvals), dtype=np.int64)
        np.minimum.at(acc, inv, ranks)
    else:
        acc = np.full(n_groups, -1, dtype=np.int64)
        np.maximum.at(acc, inv, ranks)
    if as_codes:
        # Every group holds >= 1 row, so no sentinel rank survives.
        return np.asarray(order, dtype=np.int64)[acc]
    return [dvals[order[r]] for r in acc.tolist()]


# SUM/AVG over int columns stay exact Python ints on the per-row path;
# the int64 kernel must refuse when a sum could leave int64, and the
# VAR/STDDEV square kernel when a value's square could round differently
# than Python's exact int multiply.
_INT64_LIMIT = 2**63
_EXACT_FLOAT_INT = 2**53


def _int_magnitude(values) -> int:
    """max(|v|) of an int64 array as a Python int (0 when empty)."""
    if not len(values):
        return 0
    return max(-int(values.min()), int(values.max()))


def _columnar_local_phase(cblock, query, packed=False):
    """Phase 1 on a ColumnBlock: every key type, every aggregate.

    Returns (key, GroupState) partials like :func:`_local_phase`, or —
    with ``packed=True`` — a
    ``("packed", n_groups, key_columns, state_columns)`` payload of raw
    arrays for the parent's vectorized global merge.  Every aggregate
    has a packed wire form: count_distinct ships sorted-unique
    ``(group, value)`` pair arrays (codes + the block dictionary for
    str columns) and str MIN/MAX ships per-group winner *codes* plus
    the dictionary, so the parent merges via LUT unions instead of
    unpacking to per-row states.  Returns None when
    a guard detects a shape whose vectorized result could differ from
    the per-row loop's (see the section comment); the caller then
    decodes and runs per-row.

    Bit-parity notes: ``bincount`` accumulates weights in input order —
    the sequential loop's order — so float sums agree bit for bit; int
    sums use int64 with an overflow guard and become Python ints again;
    int VAR moments cast int64→float64 exactly as Python's float+int
    add does; MIN/MAX ties are only distinguishable for signed zeros,
    which are guarded.
    """
    if query.where is not None or not query.group_by or not have_numpy():
        return None

    import numpy as np

    comp = _columnar_group_keys(cblock, query)
    if comp is None:
        return None
    decoded_cols, inv, n_groups = comp
    counts = np.bincount(inv, minlength=n_groups).astype(np.int64)
    bq = query.bind(cblock.schema)
    columns = cblock.schema.columns

    state_payload: list[tuple] = []
    for spec, col_idx in zip(query.aggregates, bq.agg_indexes):
        func = spec.func
        if func == "count":
            # Codec rows never carry NULL, so COUNT(col) == COUNT(*).
            state_payload.append(("count", counts))
            continue
        if func == "count_distinct":
            if packed:
                pairs = _distinct_pairs(cblock, col_idx, inv, n_groups)
                if pairs is None:
                    return None
                groups_arr, vals_arr = pairs
                if columns[col_idx].kind == "str":
                    state_payload.append(
                        ("distinct_str", groups_arr, vals_arr,
                         cblock.dictionaries[col_idx].values)
                    )
                else:
                    state_payload.append(
                        ("distinct_num", groups_arr, vals_arr)
                    )
            else:
                sets = _distinct_sets(cblock, col_idx, inv, n_groups)
                if sets is None:
                    return None
                state_payload.append(("distinct", sets))
            continue
        if func not in ("sum", "avg", "min", "max", "var", "stddev"):
            return None
        kind = columns[col_idx].kind
        values = cblock.columns[col_idx]
        if kind == "str":
            if func not in ("min", "max"):
                return None
            if packed:
                state_payload.append(
                    (func + "_str_codes",
                     _str_extremes(cblock, col_idx, inv, n_groups, func,
                                   as_codes=True),
                     cblock.dictionaries[col_idx].values)
                )
            else:
                state_payload.append(
                    (func + "_str", _str_extremes(cblock, col_idx, inv,
                                                  n_groups, func))
                )
        elif kind == "float":
            if func in ("min", "max"):
                if len(values):
                    if np.isnan(values).any():
                        return None  # per-row keeps first, np propagates
                    zeros = values == 0.0
                    if zeros.any() and np.signbit(values[zeros]).any():
                        return None  # -0.0/0.0 tie winner differs
                if func == "min":
                    acc = np.full(n_groups, np.inf)
                    np.minimum.at(acc, inv, values)
                else:
                    acc = np.full(n_groups, -np.inf)
                    np.maximum.at(acc, inv, values)
                state_payload.append((func + "_float", acc))
            elif func == "sum":
                state_payload.append(
                    ("sum_float",
                     np.bincount(inv, weights=values, minlength=n_groups))
                )
            elif func == "avg":
                state_payload.append(
                    ("avg_float",
                     np.bincount(inv, weights=values, minlength=n_groups),
                     counts)
                )
            else:  # var / stddev share VarianceState's three moments
                state_payload.append(
                    ("var",
                     np.bincount(inv, weights=values, minlength=n_groups),
                     np.bincount(inv, weights=values * values,
                                 minlength=n_groups),
                     counts)
                )
        else:  # int
            if func in ("min", "max"):
                info = np.iinfo(np.int64)
                if func == "min":
                    acc = np.full(n_groups, info.max, dtype=np.int64)
                    np.minimum.at(acc, inv, values)
                else:
                    acc = np.full(n_groups, info.min, dtype=np.int64)
                    np.maximum.at(acc, inv, values)
                state_payload.append((func + "_int", acc))
            elif func in ("sum", "avg"):
                if _int_magnitude(values) * len(values) >= _INT64_LIMIT:
                    return None  # per-row Python ints cannot overflow
                acc = np.zeros(n_groups, dtype=np.int64)
                np.add.at(acc, inv, values)
                if func == "sum":
                    state_payload.append(("sum_int", acc))
                else:
                    state_payload.append(("avg_int", acc, counts))
            else:  # var / stddev over ints
                if _int_magnitude(values) > _EXACT_FLOAT_INT:
                    return None  # float64(v)**2 != float64(v*v)
                vf = values.astype(np.float64)
                state_payload.append(
                    ("var",
                     np.bincount(inv, weights=vf, minlength=n_groups),
                     np.bincount(inv, weights=vf * vf, minlength=n_groups),
                     counts)
                )

    if packed:
        key_payload = []
        for j, i in enumerate(bq.key_indexes):
            kind = columns[i].kind
            if kind == "str":
                key_payload.append(("str", decoded_cols[j]))
            else:
                dtype = np.int64 if kind == "int" else np.float64
                key_payload.append(
                    (kind, np.asarray(decoded_cols[j], dtype=dtype))
                )
        return ("packed", n_groups, key_payload, state_payload)

    keys = list(zip(*decoded_cols))
    per_spec = [
        _states_from_payload(spec, payload[0], payload[1:], n_groups)
        for spec, payload in zip(query.aggregates, state_payload)
    ]
    out = []
    for g in range(n_groups):
        group = GroupState.__new__(GroupState)
        group.states = [states[g] for states in per_spec]
        out.append((keys[g], group))
    return out


def _states_from_payload(spec, tag, data, n_groups):
    """Materialize per-group aggregate states from a kernel payload."""
    states = [spec.new_state() for _ in range(n_groups)]
    if tag == "count":
        for state, c in zip(states, _aslist(data[0])):
            state.count = c
    elif tag == "distinct":
        for state, values in zip(states, data[0]):
            state.values = values
    elif tag == "distinct_num":
        for g, v in zip(_aslist(data[0]), _aslist(data[1])):
            states[g].values.add(v)
    elif tag == "distinct_str":
        dvals = data[2]
        for g, c in zip(_aslist(data[0]), _aslist(data[1])):
            states[g].values.add(dvals[c])
    elif tag in ("min_str_codes", "max_str_codes"):
        dvals = data[1]
        for state, c in zip(states, _aslist(data[0])):
            state.value = dvals[c]
    elif tag in ("sum_int", "sum_float"):
        for state, t in zip(states, _aslist(data[0])):
            state.total = t
            state.seen = True
    elif tag in ("avg_int", "avg_float"):
        for state, t, c in zip(states, _aslist(data[0]), _aslist(data[1])):
            state.total = t
            state.count = c
    elif tag == "var":
        for state, t, s, c in zip(
            states, _aslist(data[0]), _aslist(data[1]), _aslist(data[2])
        ):
            state.total = t
            state.total_sq = s
            state.count = c
    else:  # min_*/max_* carry the per-group extremes directly
        for state, v in zip(states, _aslist(data[0])):
            state.value = v
    return states


def _is_packed(result) -> bool:
    return (
        isinstance(result, tuple) and len(result) == 4
        and result[0] == "packed"
    )


def _unpack_packed(payload, query):
    """Expand a packed worker payload into (key, GroupState) partials."""
    _tag, n_groups, key_payload, state_payload = payload
    keys = list(zip(*[_aslist(data) for _kind, data in key_payload]))
    per_spec = [
        _states_from_payload(spec, p[0], p[1:], n_groups)
        for spec, p in zip(query.aggregates, state_payload)
    ]
    out = []
    for g in range(n_groups):
        group = GroupState.__new__(GroupState)
        group.states = [states[g] for states in per_spec]
        out.append((keys[g], group))
    return out


def _merge_packed(payloads, query):
    """Vectorized global merge of per-worker packed payloads.

    ``payloads`` must be every fragment's packed result in fragment
    order.  Re-groups the concatenated per-fragment group keys with the
    same unique/codes machinery the kernel uses, then folds each
    aggregate's arrays — in concatenation (= fragment) order, so float
    accumulation matches the sequential merge bit for bit.  Returns the
    merged ``{key: GroupState}`` table, or None when exactness cannot
    be guaranteed (int-sum overflow risk), in which case the caller
    unpacks and merges sequentially.
    """
    import numpy as np

    if sum(p[1] for p in payloads) == 0:
        return {}
    num_keys = len(payloads[0][2])
    cols = []
    for j in range(num_keys):
        kind = payloads[0][2][j][0]
        if kind == "str":
            full = np.array(
                [v for p in payloads for v in p[2][j][1]], dtype=object
            )
        else:
            full = np.concatenate(
                [np.asarray(p[2][j][1]) for p in payloads]
            )
        uniq, codes = np.unique(full, return_inverse=True)
        cols.append((kind, uniq, codes.reshape(-1)))
    if num_keys == 1:
        kind, uniq, inv = cols[0]
        n_groups = len(uniq)
        decoded = [uniq.tolist()]
    else:
        stacked = np.column_stack(
            [np.asarray(c[2], dtype=np.int64) for c in cols]
        )
        uniq_rows, inv = np.unique(stacked, axis=0, return_inverse=True)
        inv = inv.reshape(-1)
        n_groups = len(uniq_rows)
        decoded = []
        for j, (kind, uniq, _codes) in enumerate(cols):
            vals = uniq.tolist()
            decoded.append([vals[c] for c in uniq_rows[:, j].tolist()])
    keys = list(zip(*decoded))
    # Fragment f's local group g sits at position offsets[f] + g in the
    # concatenated key arrays, so inv[offsets[f] + g] is its global
    # group — the LUT the pair-array and code-array merges fold through.
    offsets = []
    base = 0
    for p in payloads:
        offsets.append(base)
        base += p[1]

    per_spec = []
    for s_idx, spec in enumerate(query.aggregates):
        tag = payloads[0][3][s_idx][0]
        parts = [p[3][s_idx] for p in payloads]
        if any(part[0] != tag for part in parts):
            return None  # pragma: no cover - workers disagree on shape
        if tag == "count":
            full = np.concatenate([np.asarray(part[1]) for part in parts])
            acc = np.zeros(n_groups, dtype=np.int64)
            np.add.at(acc, inv, full)
            merged_payload = (tag, acc)
        elif tag in ("sum_int", "avg_int"):
            arrays = [np.asarray(part[1]) for part in parts]
            if sum(_int_magnitude(a) for a in arrays) >= _INT64_LIMIT:
                return None  # the Python merge keeps exact big ints
            acc = np.zeros(n_groups, dtype=np.int64)
            np.add.at(acc, inv, np.concatenate(arrays))
            if tag == "sum_int":
                merged_payload = (tag, acc)
            else:
                cacc = np.zeros(n_groups, dtype=np.int64)
                np.add.at(
                    cacc, inv,
                    np.concatenate([np.asarray(p[2]) for p in parts]),
                )
                merged_payload = (tag, acc, cacc)
        elif tag in ("sum_float", "avg_float"):
            totals = np.bincount(
                inv,
                weights=np.concatenate(
                    [np.asarray(part[1]) for part in parts]
                ),
                minlength=n_groups,
            )
            if tag == "sum_float":
                merged_payload = (tag, totals)
            else:
                cacc = np.zeros(n_groups, dtype=np.int64)
                np.add.at(
                    cacc, inv,
                    np.concatenate([np.asarray(p[2]) for p in parts]),
                )
                merged_payload = (tag, totals, cacc)
        elif tag == "var":
            totals = np.bincount(
                inv,
                weights=np.concatenate(
                    [np.asarray(part[1]) for part in parts]
                ),
                minlength=n_groups,
            )
            sq = np.bincount(
                inv,
                weights=np.concatenate(
                    [np.asarray(part[2]) for part in parts]
                ),
                minlength=n_groups,
            )
            cacc = np.zeros(n_groups, dtype=np.int64)
            np.add.at(
                cacc, inv,
                np.concatenate([np.asarray(part[3]) for part in parts]),
            )
            merged_payload = (tag, totals, sq, cacc)
        elif tag in ("min_int", "max_int", "min_float", "max_float"):
            full = np.concatenate([np.asarray(part[1]) for part in parts])
            if tag.endswith("_int"):
                info = np.iinfo(np.int64)
                fill = info.max if tag[:3] == "min" else info.min
                acc = np.full(n_groups, fill, dtype=np.int64)
            else:
                acc = np.full(
                    n_groups, np.inf if tag[:3] == "min" else -np.inf
                )
            (np.minimum if tag[:3] == "min" else np.maximum).at(
                acc, inv, full
            )
            merged_payload = (tag, acc)
        elif tag in ("min_str_codes", "max_str_codes"):
            # Dictionary-code LUT union: absorb every fragment's
            # dictionary into one union dictionary, remap the per-group
            # winner codes through it, rank the union once, and fold
            # ranks — ties are equal strings, so any winner decodes to
            # the same value the sequential merge keeps.
            union = StringDictionary()
            luts = [
                np.asarray(
                    [union.code_of(v) for v in part[2]], dtype=np.int64
                )
                for part in parts
            ]
            dvals = union.values
            order = sorted(range(len(dvals)), key=dvals.__getitem__)
            rank_of = np.empty(len(dvals), dtype=np.int64)
            rank_of[np.asarray(order, dtype=np.int64)] = np.arange(
                len(dvals), dtype=np.int64
            )
            ranks = np.concatenate(
                [
                    rank_of[lut[np.asarray(part[1], dtype=np.int64)]]
                    if len(part[1]) else np.empty(0, dtype=np.int64)
                    for lut, part in zip(luts, parts)
                ]
            )
            if tag.startswith("min"):
                acc = np.full(n_groups, len(dvals), dtype=np.int64)
                np.minimum.at(acc, inv, ranks)
            else:
                acc = np.full(n_groups, -1, dtype=np.int64)
                np.maximum.at(acc, inv, ranks)
            merged_payload = (
                tag[:3] + "_str", [dvals[order[r]] for r in acc.tolist()]
            )
        elif tag == "distinct_num":
            # Set fold over sorted-unique (group, value) pair arrays:
            # remap each fragment's local groups to global ones, then
            # one structured unique dedups across fragments.
            gparts, vparts = [], []
            for f, part in enumerate(parts):
                local = np.asarray(part[1], dtype=np.int64)
                gparts.append(inv[offsets[f] + local])
                vparts.append(np.asarray(part[2]))
            gg = np.concatenate(gparts)
            vv = np.concatenate(vparts)
            rec = np.empty(
                len(gg), dtype=[("g", np.int64), ("v", vv.dtype)]
            )
            rec["g"] = gg
            rec["v"] = vv
            upairs = np.unique(rec)
            merged_payload = (tag, upairs["g"], upairs["v"])
        elif tag == "distinct_str":
            # As distinct_num, but codes go through the union-dictionary
            # LUT first so equal strings from different fragments unify.
            union = StringDictionary()
            gparts, cparts = [], []
            for f, part in enumerate(parts):
                lut = np.asarray(
                    [union.code_of(v) for v in part[3]], dtype=np.int64
                )
                local = np.asarray(part[1], dtype=np.int64)
                codes = np.asarray(part[2], dtype=np.int64)
                gparts.append(inv[offsets[f] + local])
                cparts.append(
                    lut[codes] if len(codes)
                    else np.empty(0, dtype=np.int64)
                )
            gg = np.concatenate(gparts)
            cc = np.concatenate(cparts)
            rec = np.empty(
                len(gg), dtype=[("g", np.int64), ("v", np.int64)]
            )
            rec["g"] = gg
            rec["v"] = cc
            upairs = np.unique(rec)
            merged_payload = (
                tag, upairs["g"], upairs["v"], union.values
            )
        else:  # pragma: no cover - unknown payload tag
            return None
        per_spec.append(
            _states_from_payload(
                spec, merged_payload[0], merged_payload[1:], n_groups
            )
        )

    merged: dict[tuple, GroupState] = {}
    for g in range(n_groups):
        group = GroupState.__new__(GroupState)
        group.states = [states[g] for states in per_spec]
        merged[keys[g]] = group
    return merged


def _global_phase(job):
    """Phase 1 for ``strategy="global"`` on inline/per-row inputs.

    Block descriptors take the packed columnar path in
    :func:`_run_worker_job`, and a block-born in-process job packs right
    here; anything else degrades to ordinary partials, which the parent
    merge accepts (it unpacks mixed results).
    """
    source = job[0]
    if isinstance(source, ColumnBlock):
        result = _columnar_local_phase(source, job[1], packed=True)
        if result is not None:
            return result
        job = (source.to_rows(), job[1], job[2])
    return _local_phase(job)


def _local_phase_block(descriptor, pack=False):
    """The pool's default phase 1 for shm descriptors: vectorize when the
    query shape allows, decode + per-row otherwise.  ``pack=True`` asks
    the columnar kernel for a packed payload (``strategy="global"``);
    fallback paths still return ordinary partials."""
    if descriptor[0] == "shm_col":
        _kind, _name, _nbytes, _num_rows, query, schema = descriptor
        block = _load_block(descriptor)
        result = _columnar_local_phase(block, query, packed=pack)
        if result is not None:
            return result
        return _local_phase((block.to_rows(), query, schema))
    data = _segment_bytes(descriptor)
    _kind, _name, num_rows, query, schema = descriptor
    result = _vectorized_local_phase(data, num_rows, query, schema)
    if result is not None:
        return result
    return _local_phase((RowCodec(schema).decode_many(data), query, schema))


# -- the Rep strategy's two worker phases -------------------------------------


class _RepPartitionPhase:
    """Round 1 of ``strategy="rep"``: hash-partition a fragment's rows
    into ``num_buckets`` disjoint key ranges (the paper's Repartitioning
    redistribution step, minus the network).  Picklable, so the pool can
    ship it like any substituted phase function.
    """

    __slots__ = ("num_buckets",)

    def __init__(self, num_buckets: int) -> None:
        self.num_buckets = num_buckets

    def __call__(self, job):
        rows, query, schema = job
        if isinstance(rows, ColumnBlock):
            block = rows
            # Project exactly like the pool's shipping path so round-2
            # chunks decode against the same rep schema either way.
            proj = _projection_for(query, block.schema)
            if proj is not None:
                ship_schema, idx = proj
                block = block.project(idx, ship_schema)
                schema = ship_schema
            out = self._partition_block(block, query, schema)
            if out is not None:
                return out
            rows = block.to_rows()
        bq = query.bind(schema)
        buckets: list[list] = [[] for _ in range(self.num_buckets)]
        memo: dict[tuple, int] = {}
        for row in rows:
            if not bq.matches(row):
                continue
            key = bq.key_of(row)
            b = memo.get(key)
            if b is None:
                b = stable_hash(key) % self.num_buckets
                memo[key] = b
            buckets[b].append(row)
        return ("rep_rows", [chunk or None for chunk in buckets])

    def from_block(self, descriptor):
        """Vectorized partition of an shm_col fragment."""
        _kind, _name, _nbytes, _num_rows, query, schema = descriptor
        block = _load_block(descriptor)
        out = self._partition_block(block, query, schema)
        if out is not None:
            return out
        return self((block.to_rows(), query, schema))

    def _partition_block(self, block, query, schema):
        """Vectorized partition of a ColumnBlock; None to go per-row.

        Computes each row's bucket through the same ``stable_hash(key)``
        the per-row path uses (so a retried fragment that falls back
        per-row lands every group in the same bucket) and slices the
        block columns by bucket mask — each chunk re-serializes with the
        parent dictionary, codes untouched.
        """
        if query.where is not None or not query.group_by:
            return None

        import numpy as np

        comp = _columnar_group_keys(block, query)
        if comp is None:
            return None
        decoded_cols, inv, n_groups = comp
        lut = np.empty(max(n_groups, 1), dtype=np.int64)
        for g, key in enumerate(zip(*decoded_cols)):
            lut[g] = stable_hash(key) % self.num_buckets
        row_buckets = lut[inv]
        chunks = []
        for b in range(self.num_buckets):
            mask = row_buckets == b
            n = int(mask.sum())
            if not n:
                chunks.append(None)
                continue
            sub = ColumnBlock(
                schema, n, [arr[mask] for arr in block.columns],
                block.dictionaries,
            )
            chunks.append(sub.to_bytes())
        return ("rep_blocks", chunks)


def _rep_bucket_phase(job):
    """Round 2 of ``strategy="rep"``: aggregate one bucket's chunks.

    ``job`` is ``(chunks, query, schema)`` with one chunk per source
    fragment, in fragment order: ``("block", bytes)`` for a columnar
    slice or ``("rows", rows)`` for a per-row slice.  Each chunk is
    aggregated exactly like a 2P fragment (columnar kernel first,
    per-row fallback) and the per-chunk partials merged in fragment
    order — reproducing the 2P merge's operation order bit for bit,
    just sharded by key range.
    """
    chunks, query, schema = job
    merged: dict[tuple, GroupState] = {}
    for kind, payload in chunks:
        if kind == "block":
            block = ColumnBlock.from_bytes(schema, payload)
            partial = _columnar_local_phase(block, query)
            if partial is None:
                partial = _local_phase((block.to_rows(), query, schema))
        else:
            partial = _local_phase((payload, query, schema))
        for key, state in partial:
            mine = merged.get(key)
            if mine is None:
                mine = GroupState(query.aggregates)
                merged[key] = mine
            mine.merge(state)
    return list(merged.items())


# -- the persistent worker pool ----------------------------------------------


_SLOW_CHUNK_ROWS = 128


class _HeartbeatSender(threading.Thread):
    """Worker-side beat emitter: one ``("beat", {"rows_done": n}, None)``
    per interval while a job runs, sharing the reply pipe under a lock
    so beats never interleave with the final reply."""

    def __init__(self, conn, lock, interval: float, progress: list) -> None:
        super().__init__(daemon=True)
        self.conn = conn
        self.lock = lock
        self.interval = interval
        self.progress = progress
        self._done = threading.Event()

    def run(self) -> None:
        while not self._done.wait(self.interval):
            try:
                with self.lock:
                    self.conn.send(
                        ("beat", {"rows_done": self.progress[0]}, None)
                    )
            except Exception:  # pragma: no cover - parent went away
                return

    def stop(self) -> None:
        self._done.set()
        self.join()


def _slow_job(fn, descriptor, factor: float, progress: list):
    """Injected straggler: run the job ``factor`` times slower.

    For the default phase the rows run through the per-row loop in
    chunks, sleeping off ``(factor - 1)`` of each chunk's elapsed time
    and advancing ``progress`` — a limping-but-alive worker whose beats
    show partial progress.  The accumulation order is exactly the
    sequential loop's, so results stay bit-identical to the fault-free
    run.  Substituted phase functions are opaque: they run whole, then
    sleep off the multiplier.
    """
    if fn is _local_phase:
        rows, query, schema = _load_job(descriptor)
        bq = query.bind(schema)
        table: dict[tuple, GroupState] = {}
        for start in range(0, len(rows), _SLOW_CHUNK_ROWS):
            t0 = time.perf_counter()
            for row in rows[start:start + _SLOW_CHUNK_ROWS]:
                if not bq.matches(row):
                    continue
                key = bq.key_of(row)
                state = table.get(key)
                if state is None:
                    state = GroupState(query.aggregates)
                    table[key] = state
                state.update(bq.values_of(row))
            progress[0] = min(start + _SLOW_CHUNK_ROWS, len(rows))
            time.sleep((factor - 1.0) * (time.perf_counter() - t0))
        return list(table.items())
    t0 = time.perf_counter()
    result = fn(_load_job(descriptor))
    time.sleep((factor - 1.0) * (time.perf_counter() - t0))
    return result


def _run_worker_job(fn, descriptor, inject: dict, progress: list):
    """Run one job under the (possibly empty) injection directive.

    Kill and stall are delivered *here*, by the worker to itself, so
    the fault lands on the fragment it was scheduled for — a parent
    signal sent after dispatch can race a fast job and hit whatever
    runs on this worker next instead.
    """
    if inject.get(INJECT_KILL):
        # A real crash: no exception, no reply, the parent sees EOF.
        os.kill(os.getpid(), signal.SIGKILL)
    if inject.get(INJECT_STALL) is not None:
        # Limplock: freeze (heartbeats included) until the parent's
        # scheduled SIGCONT — or its heartbeat-loss recovery — ends it.
        os.kill(os.getpid(), signal.SIGSTOP)
    if inject.get(INJECT_ERROR):
        raise InjectedFaultError(
            "injected worker fault (FaultPlan.read_error_rate)"
        )
    slow = inject.get(INJECT_SLOW)
    if slow:
        return _slow_job(fn, descriptor, slow, progress)
    if descriptor[0] in ("shm", "shm_col") and (
        fn is _local_phase or fn is _global_phase
    ):
        return _local_phase_block(descriptor, pack=fn is _global_phase)
    if isinstance(fn, _RepPartitionPhase) and descriptor[0] == "shm_col":
        return fn.from_block(descriptor)
    return fn(_load_job(descriptor))


def _pool_worker_main(conn) -> None:
    """Long-lived worker loop: recv (fn, descriptor, opts), one reply each.

    The final reply is ``(status, payload, profile)`` exactly like the
    legacy one-shot worker's, so the parent-side classification (ok /
    typed error / dead worker on EOF) is shared; ``("beat", …)``
    messages may precede it when ``opts["heartbeat"]`` asks for them.
    ``opts["inject"]`` carries the fault directive for this job
    (self-SIGKILL, self-SIGSTOP limplock, an injected exception, or a
    slowdown factor).  ``None`` is the shutdown
    sentinel; a closed pipe means the parent is gone.
    """
    _disarm_resource_tracker()
    lock = threading.Lock()
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return
        if request is None:
            conn.close()
            return
        fn, descriptor, opts = request
        progress = [0]
        beat = None
        interval = opts.get("heartbeat")
        if interval:
            beat = _HeartbeatSender(conn, lock, interval, progress)
            beat.start()
        started = profile_start()
        try:
            result = _run_worker_job(
                fn, descriptor, opts.get("inject") or {}, progress
            )
        except BaseException as exc:
            reply = (
                "error",
                {"type": type(exc).__name__, "message": str(exc)},
                profile_finish(started),
            )
        else:
            reply = ("ok", result, profile_finish(started))
        if beat is not None:
            beat.stop()  # joins: no beat can trail the final reply
        try:
            with lock:
                conn.send(reply)
        except Exception:  # pragma: no cover - parent went away
            return


class _PoolWorker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn


class WorkerPool:
    """A lazily grown pool of persistent, replaceable worker processes.

    Workers survive across fragments, retries, and whole
    :func:`multiprocessing_aggregate` calls (the module keeps one shared
    instance), which is where the pool strategy's throughput comes from:
    the per-attempt fork/exec and module re-import of the spawn strategy
    is paid once per worker instead of once per fragment.

    A worker that died or was terminated mid-job (timeout, crash) is
    *discarded* and a fresh one forked on demand — the pool never hands
    out a worker in an unknown state.

    The pool is thread-safe: the idle list, fork, and dispatcher
    bookkeeping are guarded by one re-entrant lock, so concurrent
    :func:`multiprocessing_aggregate` calls (the query service runs one
    per request thread) can share it.  Each worker is held by exactly
    one dispatcher between ``acquire`` and ``release``/``discard``, so
    two runs never read the same pipe; idle-pipe *watching* is the one
    single-dispatcher privilege (see :meth:`watch_idle`).
    """

    def __init__(self, ctx=None) -> None:
        self._ctx = ctx or multiprocessing.get_context()
        self._idle: list[_PoolWorker] = []
        self._lock = threading.RLock()
        self._dispatchers = 0
        self.closed = False
        self.spawned = 0

    def acquire(self) -> _PoolWorker:
        with self._lock:
            while self._idle:
                worker = self._idle.pop()
                if worker.proc.is_alive():
                    return worker
                self.discard(worker)  # died while idle: reap, fork fresh
            # Fork under the lock: forking from several threads at once
            # is where fork-safety bugs live, and the fork is cheap
            # relative to the fragment it will run.
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_pool_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self.spawned += 1
            return _PoolWorker(proc, parent_conn)

    def release(self, worker: _PoolWorker) -> None:
        """Return a healthy worker for reuse.

        A pool that was shut down while this worker was busy (circuit-
        breaker rebuild, service drain) must not resurrect it as an
        orphan nobody will ever stop — discard it instead.
        """
        with self._lock:
            if self.closed:
                self.discard(worker)
                return
            self._idle.append(worker)

    def register_dispatcher(self) -> None:
        """A dispatch loop is starting to use this pool."""
        with self._lock:
            self._dispatchers += 1

    def unregister_dispatcher(self) -> None:
        with self._lock:
            self._dispatchers -= 1

    def idle_workers(self) -> list[_PoolWorker]:
        """A snapshot of the idle set."""
        with self._lock:
            return list(self._idle)

    def watch_idle(self) -> list[_PoolWorker]:
        """The idle workers this dispatcher may wait on for eager
        idle-death detection — only when it is the *sole* dispatcher.

        With concurrent dispatchers the privilege is withdrawn: two
        loops waiting on the same idle pipe would race to ``recv`` the
        message (or steal a freshly dispatched job's reply), so idle
        deaths are instead caught at the next ``acquire``.
        """
        with self._lock:
            if self._dispatchers > 1:
                return []
            return list(self._idle)

    def recv_idle(self, worker: _PoolWorker) -> str:
        """Consume a ready message from a watched idle worker, safely.

        Re-checks idle membership under the pool lock before reading:
        between the dispatcher's wait and this call another thread may
        have acquired the worker, in which case the ready data is *that
        run's* reply and must not be stolen.  Returns ``"acquired"``
        (not ours anymore), ``"beat"`` (stale heartbeat from a finished
        job), or ``"dead"`` (EOF — the worker was retired).
        """
        with self._lock:
            if worker not in self._idle:
                return "acquired"
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                message = None
            if (isinstance(message, tuple) and message
                    and message[0] == "beat"):
                return "beat"
            self._idle.remove(worker)
            self.discard(worker)
            return "dead"

    def remove_idle(self, worker: _PoolWorker) -> None:
        """Retire a specific idle worker (it died or sent nonsense)."""
        with self._lock:
            try:
                self._idle.remove(worker)
            except ValueError:  # pragma: no cover - already gone
                return
            self.discard(worker)

    def discard(self, worker: _PoolWorker, hard: bool = False) -> None:
        """Terminate and reap a worker that cannot be reused.

        ``hard`` skips SIGTERM and kills outright — required for
        SIGSTOPped (stalled) workers, which would never see the TERM
        and would eat the full join grace, and used for cancelled
        speculation losers where promptness matters.
        """
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if hard:
            worker.proc.kill()
        else:
            worker.proc.terminate()
        worker.proc.join(_JOIN_GRACE_SECONDS)
        if worker.proc.is_alive():  # pragma: no cover - stuck after kill
            worker.proc.kill()
            worker.proc.join(_JOIN_GRACE_SECONDS)

    def shutdown(self) -> None:
        """Stop every idle worker (busy ones are the dispatcher's to
        kill) and mark the pool closed so late releases discard."""
        with self._lock:
            self.closed = True
            idle, self._idle = self._idle, []
        for worker in idle:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            self.discard(worker)


_shared_pool: WorkerPool | None = None
_atexit_registered = False
# Guards the module pool slot against concurrent get/shutdown — the
# query service calls multiprocessing_aggregate from many threads.
_pool_mutex = threading.Lock()


def _get_shared_pool() -> WorkerPool:
    global _shared_pool, _atexit_registered
    with _pool_mutex:
        if _shared_pool is None:
            _shared_pool = WorkerPool()
            if not _atexit_registered:
                # One hook for the module, not one per pool instance: an
                # explicit shutdown followed by a fresh pool must not
                # leave stale atexit entries resurrecting dead pools.
                atexit.register(shutdown_worker_pool)
                _atexit_registered = True
        return _shared_pool


def shutdown_worker_pool() -> None:
    """Terminate the module's shared pool; idempotent, safe anytime.

    Clears the module slot, so the next pooled run forks a fresh pool —
    this is also how the circuit breaker rebuilds a sick pool.  Runs
    still holding workers from the old pool finish normally; their
    workers are discarded on release (the pool is marked closed) rather
    than leaked as orphans.
    """
    global _shared_pool
    with _pool_mutex:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.shutdown()


# -- circuit breaker: pool -> rebuild -> spawn degradation --------------------

# Failure cause types that indicate executor infrastructure sickness
# rather than a user phase function's exception.
_INFRA_CAUSES = ("WorkerDied", "HeartbeatLost", "PoisonFragment")

# Worker-death cause types a fragment accumulates toward quarantine.
_INFRA_DEATHS = ("WorkerDied", "HeartbeatLost")


# Breaker states, in classic circuit-breaker vocabulary.  ``closed``
# is healthy pooled dispatch; ``open`` means infrastructure failures
# reached the threshold (the rebuild is pending its backoff, or the
# breaker has degraded to spawn for good); ``half_open`` is probation —
# the pool was just rebuilt and the next run's outcome decides.
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"

_BREAKER_STATE_CODES = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}


class PoolCircuitBreaker:
    """Escalating response to repeated pool-infrastructure failures.

    ``threshold`` consecutive runs failing with an infrastructure cause
    (:data:`_INFRA_CAUSES`) *open* the breaker: a rebuild of the shared
    pool is scheduled after an exponential backoff with jitter
    (``rebuild_backoff_seconds``, doubled per scheduled rebuild, capped,
    each delay stretched by up to ``backoff_jitter`` of itself) rather
    than immediately — a pool that is dying because the *host* is sick
    (OOM killer, cgroup pressure) would otherwise be reforked straight
    into the same grinder.  When the backoff elapses the next pooled
    run rebuilds and enters probation (``half_open``); if failures
    reach the threshold again the breaker *degrades* — every later
    ``strategy="pool"`` call silently takes the spawn path, which needs
    no long-lived infrastructure.  A successful run fully closes the
    breaker.  State is surfaced as :attr:`state` /
    :meth:`state_code` (gauge ``mp.breaker.state``: 0 closed,
    1 half-open, 2 open) so health endpoints can report it, and all
    transitions are thread-safe — concurrent service queries share this
    one module-level breaker.
    """

    def __init__(
        self,
        threshold: int = 3,
        rebuild_backoff_seconds: float = 0.5,
        rebuild_backoff_cap_seconds: float = 30.0,
        backoff_jitter: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be positive")
        if rebuild_backoff_seconds < 0:
            raise ValueError("rebuild_backoff_seconds must be >= 0")
        if not 0 <= backoff_jitter <= 1:
            raise ValueError("backoff_jitter must be within [0, 1]")
        self.threshold = threshold
        self.rebuild_backoff_seconds = rebuild_backoff_seconds
        self.rebuild_backoff_cap_seconds = rebuild_backoff_cap_seconds
        self.backoff_jitter = backoff_jitter
        self.consecutive_infra_failures = 0
        self.rebuilt = False
        self.degraded = False
        self.rebuilds = 0
        self.rebuild_not_before: float | None = None
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()

    def _next_backoff(self) -> float:
        base = min(
            self.rebuild_backoff_seconds * (2 ** self.rebuilds),
            self.rebuild_backoff_cap_seconds,
        )
        return base * (1.0 + self.backoff_jitter * self._rng.random())

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_infra_failures = 0
            self.rebuilt = False
            self.rebuild_not_before = None

    def record_failure(self, cause_type: str | None) -> None:
        with self._lock:
            if cause_type not in _INFRA_CAUSES:
                # A user exception says nothing about pool health.
                self.consecutive_infra_failures = 0
                return
            self.consecutive_infra_failures += 1
            if self.consecutive_infra_failures < self.threshold:
                return
            if self.rebuilt:
                self.degraded = True
            elif self.rebuild_not_before is None:
                # Threshold first reached: schedule the rebuild after
                # the backoff; further failures keep the schedule.
                self.rebuild_not_before = (
                    time.monotonic() + self._next_backoff()
                )

    def _rebuild_due(self) -> bool:
        return (
            not self.degraded
            and not self.rebuilt
            and self.consecutive_infra_failures >= self.threshold
            and (
                self.rebuild_not_before is None
                or time.monotonic() >= self.rebuild_not_before
            )
        )

    def should_rebuild(self) -> bool:
        with self._lock:
            return self._rebuild_due()

    def take_rebuild(self) -> bool:
        """Atomically claim the pending rebuild (one thread wins)."""
        with self._lock:
            if not self._rebuild_due():
                return False
            self._note_rebuild()
            return True

    def note_rebuild(self) -> None:
        with self._lock:
            self._note_rebuild()

    def _note_rebuild(self) -> None:
        self.rebuilds += 1
        self.rebuilt = True
        self.consecutive_infra_failures = 0
        self.rebuild_not_before = None

    @property
    def state(self) -> str:
        """``closed`` / ``half_open`` / ``open`` (see module constants)."""
        with self._lock:
            if self.degraded:
                return BREAKER_OPEN
            if self.rebuilt:
                return BREAKER_HALF_OPEN
            if self.consecutive_infra_failures >= self.threshold:
                return BREAKER_OPEN
            return BREAKER_CLOSED

    def state_code(self) -> int:
        """The state as a gauge value: 0 closed, 1 half-open, 2 open."""
        return _BREAKER_STATE_CODES[self.state]


_pool_breaker = PoolCircuitBreaker()


def pool_breaker_state() -> PoolCircuitBreaker:
    """The live module-level breaker (read-only for callers)."""
    return _pool_breaker


def reset_pool_breaker(
    threshold: int = 3,
    rebuild_backoff_seconds: float = 0.5,
    backoff_jitter: float = 0.5,
) -> None:
    """Install a fresh breaker (tests; also un-degrades the executor)."""
    global _pool_breaker
    _pool_breaker = PoolCircuitBreaker(
        threshold,
        rebuild_backoff_seconds=rebuild_backoff_seconds,
        backoff_jitter=backoff_jitter,
    )


class MpFaultInjector:
    """Maps a :class:`~repro.sim.faults.FaultPlan` onto pool workers.

    Consumes the plan's deterministic ``injection_schedule`` — fragment
    index stands in for node id, attempt number for ordinal — and hands
    the dispatcher two views per (fragment, attempt): the directive to
    ship *into* the worker (self-SIGKILL, self-SIGSTOP, injected
    exception, slowdown factor) and the actions the parent applies
    *around* it (unlinking the fragment's shm segment, scheduling the
    SIGCONT that ends a stall).  Kill and stall execute in the worker
    shim at job start rather than as parent-side signals: a parent
    signal sent after dispatch races the job itself — a fast fragment
    can reply (and the worker return to the idle list) before the
    signal lands, killing or freezing whichever fragment is dispatched
    there next and mis-charging the fault.  Each schedule entry fires
    exactly once; ``injected`` logs what actually fired, in firing
    order.
    """

    def __init__(self, plan, num_fragments: int, attempts: int) -> None:
        self.plan = plan
        self.schedule = plan.injection_schedule(
            range(num_fragments), attempts
        )
        self._pending = set(self.schedule)
        self._slow = {s.node_id: s.slowdown for s in plan.stragglers}
        self._stall = {s.node_id: s.seconds for s in plan.worker_stalls}
        self.injected: list[tuple[str, int, int]] = []

    def _take(self, kind: str, index: int, attempt: int) -> bool:
        key = (kind, index, attempt)
        if key not in self._pending:
            return False
        self._pending.discard(key)
        self.injected.append(key)
        return True

    def worker_inject(self, index: int, attempt: int) -> dict | None:
        """The in-worker directive (kill beats everything: a dead worker
        can't limp; error beats slow: the job dies before it crawls)."""
        inject: dict = {}
        if self._take(INJECT_KILL, index, attempt):
            # A dead worker fires nothing else this attempt.
            return {INJECT_KILL: True}
        if self._take(INJECT_STALL, index, attempt):
            inject[INJECT_STALL] = self._stall[index]
        if self._take(INJECT_ERROR, index, attempt):
            inject[INJECT_ERROR] = True
        elif self._take(INJECT_SLOW, index, attempt):
            inject[INJECT_SLOW] = self._slow[index]
        return inject or None

    def parent_actions(self, index: int, attempt: int) -> dict:
        """Parent-side actions around the dispatch."""
        actions: dict = {}
        if self._take(INJECT_SHM_LOSS, index, attempt):
            actions[INJECT_SHM_LOSS] = True
        return actions


class ChaosOptions:
    """Resolved robustness knobs for one pool dispatch."""

    __slots__ = (
        "injector",
        "heartbeat_interval",
        "heartbeat_timeout",
        "speculate",
        "speculation_multiplier",
        "speculation_min_seconds",
        "poison_threshold",
        "ledger",
        "lose_segment",
    )

    def __init__(
        self,
        injector: MpFaultInjector | None = None,
        heartbeat_interval: float | None = 0.5,
        heartbeat_timeout: float | None = None,
        speculate: bool = False,
        speculation_multiplier: float = 3.0,
        speculation_min_seconds: float = 0.05,
        poison_threshold: int = 3,
        ledger=None,
        lose_segment=None,
    ) -> None:
        self.injector = injector
        self.heartbeat_interval = heartbeat_interval or None
        if heartbeat_timeout is None and self.heartbeat_interval:
            # Generous default: a busy single-core box can starve the
            # beat thread for a while without the worker being sick.
            heartbeat_timeout = max(8.0 * self.heartbeat_interval, 5.0)
        self.heartbeat_timeout = (
            heartbeat_timeout if self.heartbeat_interval else None
        )
        self.speculate = speculate
        self.speculation_multiplier = speculation_multiplier
        self.speculation_min_seconds = speculation_min_seconds
        self.poison_threshold = poison_threshold
        self.ledger = ledger
        self.lose_segment = lose_segment


class _PoolAttempt:
    """One in-flight fragment attempt on a pool worker."""

    __slots__ = (
        "index", "attempt", "worker", "deadline", "started",
        "mono_started", "last_beat", "backup", "stall_resume", "rows_done",
    )

    def __init__(self, index, attempt, worker, deadline, started,
                 backup=False) -> None:
        self.index = index
        self.attempt = attempt
        self.worker = worker
        self.deadline = deadline
        self.started = started
        self.mono_started = time.monotonic()
        self.last_beat = self.mono_started
        self.backup = backup
        self.stall_resume = None
        self.rows_done = 0


def _run_jobs_in_pool(
    fn_for,
    descriptors: list,
    processes: int,
    max_retries: int,
    timeout: float | None,
    obs: _ObsSink,
    pool: WorkerPool,
    chaos: ChaosOptions | None = None,
    reencode=None,
    run_deadline: float | None = None,
    on_complete=None,
) -> dict[int, list]:
    """Pool dispatch: same retry/timeout/death semantics as the spawn
    path, but jobs go to persistent workers as small descriptors.

    ``on_complete(index, payload)`` fires once per fragment, on its
    *first* successful payload (speculative losers and duplicate
    replies never re-fire it) — the mid-run strategy controller's
    observation hook.

    Timeout, heartbeat-loss and death handling must discard the worker
    (its loop may be wedged or gone); a clean "error" reply leaves it
    reusable.  ``chaos`` bundles the robustness machinery: heartbeat
    monitoring, fault injection, speculative re-execution and poison-
    fragment quarantine (see :class:`ChaosOptions`); ``reencode(index)``
    rebuilds a fragment's shm descriptor after injected segment loss.
    ``run_deadline`` (absolute monotonic) cancels the whole dispatch
    cooperatively: every in-flight worker is discarded and
    :class:`DeadlineExceededError` raised.
    """
    chaos = chaos if chaos is not None else ChaosOptions()
    injector = chaos.injector
    hb_timeout = chaos.heartbeat_timeout

    pending: deque[tuple[int, int]] = deque(
        (i, 0) for i in range(len(descriptors))
    )
    busy: dict[object, _PoolAttempt] = {}
    completed: dict[int, list] = {}
    durations: list[float] = []      # completed attempt wall seconds
    deaths: dict[int, list[str]] = {}  # fragment -> infra-death causes
    outstanding: dict[int, int] = {}   # fragment -> in-flight attempts
    spec_open: dict[int, dict] = {}    # fragment -> open speculation

    def drop(record: _PoolAttempt) -> None:
        busy.pop(record.worker.conn, None)
        outstanding[record.index] -= 1

    def dispatch(index: int, attempt: int, backup: bool = False) -> None:
        worker = pool.acquire()
        inject = None
        actions: dict = {}
        if injector is not None and not backup:
            # Backups model re-execution on a healthy node: they skip
            # injection, otherwise a straggler would limp its own rescue.
            inject = injector.worker_inject(index, attempt)
            actions = injector.parent_actions(index, attempt)
        if actions.get(INJECT_SHM_LOSS) and chaos.lose_segment is not None:
            if chaos.lose_segment(index):
                obs.fault_injected(INJECT_SHM_LOSS, index, attempt)
        deadline = None if timeout is None else time.monotonic() + timeout
        record = _PoolAttempt(index, attempt, worker, deadline, obs.now(),
                              backup)
        busy[worker.conn] = record
        outstanding[index] = outstanding.get(index, 0) + 1
        opts = {"inject": inject, "heartbeat": chaos.heartbeat_interval}
        try:
            worker.conn.send((fn_for(attempt), descriptors[index], opts))
        except (OSError, ValueError):  # pragma: no cover - died pre-send
            drop(record)
            pool.discard(worker)
            attempt_failed(record, {
                "type": "WorkerDied",
                "message": "worker pipe closed before dispatch",
            })
            return
        if inject:
            for kind in inject:
                obs.fault_injected(kind, index, attempt)
            if inject.get(INJECT_STALL) is not None:
                # The worker self-SIGSTOPs at job start; the parent
                # owns the SIGCONT that ends the limplock.
                record.stall_resume = (
                    time.monotonic() + inject[INJECT_STALL]
                )

    def fail_or_retry(record: _PoolAttempt, error: dict) -> None:
        cause = f"{error.get('type')}: {error.get('message')}"
        cause_type = error.get("type")
        if cause_type in _INFRA_DEATHS:
            chain = deaths.setdefault(record.index, [])
            chain.append(cause)
            obs.worker_death(record.index)
            if len(chain) >= chaos.poison_threshold:
                # Quarantine: this fragment is grinding the pool down —
                # fail fast with the whole chain, retries be damned.
                obs.quarantined(record.index, len(chain))
                raise FragmentFailedError(
                    record.index,
                    record.attempt + 1,
                    f"poison fragment: killed {len(chain)} worker(s) "
                    "[" + " <- ".join(chain) + "]",
                    dict(completed),
                    cause_type="PoisonFragment",
                ) from WorkerFailure(error)
        if record.attempt + 1 > max_retries:
            raise FragmentFailedError(
                record.index,
                record.attempt + 1,
                cause,
                dict(completed),
                cause_type=cause_type,
            ) from WorkerFailure(error)
        obs.retry(record.index, record.attempt, error)
        if (
            reencode is not None
            and cause_type == "FileNotFoundError"
            and descriptors[record.index][0] in ("shm", "shm_col")
        ):
            # The segment vanished (injected shm loss): re-encode the
            # fragment into a fresh one before the retry ships.
            descriptors[record.index] = reencode(record.index)
            obs.reencoded(record.index)
        pending.append((record.index, record.attempt + 1))

    def attempt_failed(record: _PoolAttempt, error: dict,
                       profile=None) -> None:
        obs.attempt_done(record.index, record.attempt, record.started,
                         False, profile, error)
        if record.index in completed:
            return  # a speculative sibling already won
        if outstanding.get(record.index, 0) > 0:
            return  # a sibling is still running; it decides the outcome
        fail_or_retry(record, error)

    def wake_if_stalled(record: _PoolAttempt) -> None:
        # A fast job can reply before the injected SIGSTOP lands; the
        # worker then sits stopped while its stall deadline dies with
        # the finished record.  Wake it before it rejoins the idle list
        # or the next fragment dispatched to it hangs until heartbeat
        # loss.
        if record.stall_resume is not None:
            try:
                os.kill(record.worker.proc.pid, signal.SIGCONT)
            except ProcessLookupError:  # pragma: no cover - already dead
                pass
            record.stall_resume = None

    def resolve_ok(record: _PoolAttempt, payload, profile) -> None:
        drop(record)
        durations.append(time.monotonic() - record.mono_started)
        wake_if_stalled(record)
        pool.release(record.worker)
        first = record.index not in completed
        if first:
            completed[record.index] = payload
            if on_complete is not None:
                on_complete(record.index, payload)
        obs.attempt_done(record.index, record.attempt, record.started,
                         True, profile)
        if outstanding.get(record.index, 0) > 0:
            # First result wins: cancel the losing sibling(s) outright.
            for other in [r for r in busy.values()
                          if r.index == record.index]:
                drop(other)
                pool.discard(other.worker, hard=True)
                obs.speculation_cancelled(other.index, other.attempt,
                                          other.backup)
        marker = spec_open.pop(record.index, None)
        if marker is not None and first:
            obs.speculation_resolved(record.index, record.backup)
            event = marker.get("event")
            if event is not None:
                # Post-hoc verdict: a speculation whose backup won was
                # the right call; one the primary beat was wasted work
                # but cost only an idle-slot fork.
                event.truth = {
                    "backup_won": record.backup,
                    "verdict": (VERDICT_CORRECT if record.backup
                                else VERDICT_WRONG_CHEAP),
                }

    def maybe_speculate() -> None:
        if pending or len(busy) >= processes or len(durations) < 2:
            return
        median = statistics.median(durations)
        threshold = max(chaos.speculation_min_seconds,
                        chaos.speculation_multiplier * median)
        now = time.monotonic()
        for record in list(busy.values()):
            if len(busy) >= processes:
                break
            if record.backup or record.index in spec_open:
                continue
            elapsed = now - record.mono_started
            if elapsed < threshold:
                continue
            obs.speculation_launched(record.index, record.attempt,
                                     elapsed, threshold)
            event = None
            if chaos.ledger is not None:
                event = chaos.ledger.record(
                    SPECULATIVE_EXECUTION, record.index, obs.now(),
                    data={
                        "attempt": record.attempt,
                        "elapsed_seconds": round(elapsed, 6),
                        "threshold_seconds": round(threshold, 6),
                        "median_seconds": round(median, 6),
                    },
                )
            spec_open[record.index] = {"event": event}
            dispatch(record.index, record.attempt, backup=True)

    pool.register_dispatcher()
    try:
        while busy or pending:
            if run_deadline is not None and time.monotonic() >= run_deadline:
                obs.deadline_exceeded(len(completed), len(descriptors))
                raise DeadlineExceededError(
                    obs.now(), len(completed), len(descriptors)
                )
            while pending and len(busy) < processes:
                dispatch(*pending.popleft())
            if chaos.speculate:
                maybe_speculate()
            now = time.monotonic()
            wait_until: list[float] = []
            if run_deadline is not None:
                wait_until.append(run_deadline)
            for record in busy.values():
                if record.deadline is not None:
                    wait_until.append(record.deadline)
                if hb_timeout is not None:
                    wait_until.append(record.last_beat + hb_timeout)
                if record.stall_resume is not None:
                    wait_until.append(record.stall_resume)
            if (chaos.speculate and not pending
                    and len(busy) < processes and len(durations) >= 2):
                threshold = max(
                    chaos.speculation_min_seconds,
                    chaos.speculation_multiplier
                    * statistics.median(durations),
                )
                wait_until.extend(
                    r.mono_started + threshold
                    for r in busy.values()
                    if not r.backup and r.index not in spec_open
                )
            wait_for = (
                None if not wait_until
                else max(0.0, min(wait_until) - now)
            )
            idle = {w.conn: w for w in pool.watch_idle()}
            ready = _connection_wait(
                list(busy) + list(idle), timeout=wait_for
            )
            for conn in ready:
                if conn in idle:
                    if pool.recv_idle(idle[conn]) == "dead":
                        obs.idle_death()
                    continue
                record = busy.get(conn)
                if record is None:
                    continue  # cancelled earlier in this very batch
                profile = None
                try:
                    status, payload, profile = conn.recv()
                except (EOFError, OSError):
                    status, payload = "died", None
                if status == "beat":
                    record.last_beat = time.monotonic()
                    record.rows_done = payload.get(
                        "rows_done", record.rows_done
                    )
                    obs.beat()
                    continue
                if status == "ok":
                    resolve_ok(record, payload, profile)
                    continue
                drop(record)
                if status == "died":
                    error = {
                        "type": "WorkerDied",
                        "message": (
                            "worker died without a result "
                            f"(exitcode={record.worker.proc.exitcode})"
                        ),
                    }
                    pool.discard(record.worker)
                else:
                    error = payload
                    wake_if_stalled(record)
                    pool.release(record.worker)
                attempt_failed(record, error, profile)
            now = time.monotonic()
            for record in list(busy.values()):
                if (record.stall_resume is not None
                        and now >= record.stall_resume):
                    # The injected limplock ends: wake the worker.
                    try:
                        os.kill(record.worker.proc.pid, signal.SIGCONT)
                    except ProcessLookupError:  # pragma: no cover
                        pass
                    record.stall_resume = None
                    record.last_beat = now  # grace until beats resume
            if hb_timeout is not None:
                for record in list(busy.values()):
                    silence = now - record.last_beat
                    if silence >= hb_timeout:
                        drop(record)
                        # hard: a SIGSTOPped worker never sees SIGTERM.
                        pool.discard(record.worker, hard=True)
                        obs.heartbeat_lost(record.index, record.attempt)
                        attempt_failed(record, {
                            "type": "HeartbeatLost",
                            "message": (
                                f"no heartbeat for {silence:.2f}s "
                                "(worker stalled, starved, or wedged)"
                            ),
                        })
            for record in list(busy.values()):
                if record.deadline is not None and now >= record.deadline:
                    drop(record)
                    pool.discard(
                        record.worker,
                        hard=record.stall_resume is not None,
                    )
                    attempt_failed(record, {
                        "type": "Timeout",
                        "message": f"timed out after {timeout:g}s",
                    })
    finally:
        for record in busy.values():
            pool.discard(
                record.worker, hard=record.stall_resume is not None
            )
        pool.unregister_dispatcher()
    return completed


class _ObsSink:
    """Collects the executor's observability: spans, counters, profiles.

    Wraps an optional tracer and metrics registry behind unconditional
    method calls, so the dispatch loops stay readable; with neither
    attached only the ``profiles`` list is maintained.  Times are wall
    seconds relative to the sink's creation (the run start), keeping the
    exported trace starting at zero like a simulated one.
    """

    def __init__(self, tracer=None, metrics=None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.t0 = time.perf_counter()
        self.profiles: list[WorkerProfile] = []

    def now(self) -> float:
        return time.perf_counter() - self.t0

    def attempt_done(
        self,
        index: int,
        attempt: int,
        start: float,
        ok: bool,
        profile: dict | None,
        error: dict | None = None,
    ) -> None:
        """One fragment attempt finished (either way) at ``self.now()``."""
        end = self.now()
        if profile:
            self.profiles.append(
                WorkerProfile.from_dict(index, attempt, profile, ok=ok)
            )
        if self.metrics is not None:
            m = self.metrics
            m.counter("mp.attempts").inc()
            if not ok:
                m.counter("mp.failed_attempts").inc()
            if profile:
                m.histogram("mp.worker_wall_seconds").observe(
                    profile.get("wall_seconds", 0.0)
                )
                m.histogram("mp.worker_cpu_seconds").observe(
                    profile.get("cpu_seconds", 0.0)
                )
                m.gauge("mp.worker_max_rss_bytes", mode="max").set(
                    profile.get("max_rss_bytes", 0)
                )
        if self.tracer is not None:
            args = {"attempt": attempt, "ok": ok}
            if profile:
                args["cpu_seconds"] = profile.get("cpu_seconds", 0.0)
                args["max_rss_bytes"] = profile.get("max_rss_bytes", 0)
            if error is not None:
                args["error_type"] = error.get("type")
                args["error"] = error.get("message")
            self.tracer.complete(
                f"fragment {index}", index, start, end,
                cat=_CAT_PHASE, **args,
            )

    def retry(self, index: int, attempt: int, error: dict) -> None:
        """A failed attempt is being re-dispatched — the exception the
        retry loop would otherwise discard goes on the record here."""
        if self.metrics is not None:
            self.metrics.counter("mp.retries").inc()
            self.metrics.counter(
                f"mp.errors.{error.get('type', 'Unknown')}"
            ).inc()
        if self.tracer is not None:
            self.tracer.instant(
                "fragment_retry", index, self.now(),
                attempt=attempt,
                error_type=error.get("type"),
                error=error.get("message"),
            )

    # -- chaos / robustness events -------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _instant(self, name: str, track: int, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, track, self.now(), **args)

    def beat(self) -> None:
        self._count("mp.heartbeat.beats")

    def heartbeat_lost(self, index: int, attempt: int) -> None:
        self._count("mp.heartbeat.lost")
        self._instant("heartbeat_lost", index, attempt=attempt)

    def idle_death(self) -> None:
        self._count("mp.pool.idle_deaths")
        self._instant("idle_worker_death", -1)

    def fault_injected(self, kind: str, index: int, attempt: int) -> None:
        self._count(f"mp.faults.injected.{kind}")
        self._instant("fault_injected", index, kind=kind, attempt=attempt)

    def speculation_launched(self, index: int, attempt: int,
                             elapsed: float, threshold: float) -> None:
        self._count("mp.speculative.launched")
        self._instant(
            "speculative_launch", index, attempt=attempt,
            elapsed_seconds=round(elapsed, 6),
            threshold_seconds=round(threshold, 6),
        )

    def speculation_resolved(self, index: int, backup_won: bool) -> None:
        self._count(
            "mp.speculative.backup_wins" if backup_won
            else "mp.speculative.primary_wins"
        )
        self._instant("speculation_resolved", index, backup_won=backup_won)

    def speculation_cancelled(self, index: int, attempt: int,
                              backup: bool) -> None:
        self._count("mp.speculative.cancelled")
        self._instant(
            "speculation_cancelled", index, attempt=attempt, backup=backup
        )

    def worker_death(self, index: int) -> None:
        self._count("mp.quarantine.worker_deaths")

    def quarantined(self, index: int, death_count: int) -> None:
        self._count("mp.quarantine.poisoned")
        self._instant("quarantine", index, deaths=death_count)

    def reencoded(self, index: int) -> None:
        self._count("mp.shm.reencoded")

    def pool_rebuild(self) -> None:
        self._count("mp.breaker.rebuilds")
        self._instant("pool_rebuild", -1)

    def pool_degraded(self) -> None:
        self._count("mp.breaker.degraded_runs")
        if self.metrics is not None:
            self.metrics.gauge("mp.breaker.degraded", mode="max").set(1)
        self._instant("pool_degraded", -1)

    def breaker_state(self, code: int) -> None:
        """The breaker's state after this run (0 closed, 1 half-open,
        2 open) — health endpoints read this gauge."""
        if self.metrics is not None:
            self.metrics.gauge("mp.breaker.state", mode="last").set(code)

    def deadline_exceeded(self, completed: int, total: int) -> None:
        self._count("mp.deadline_exceeded")
        self._instant(
            "run_deadline_exceeded", -1, completed=completed, total=total
        )


class _Attempt:
    __slots__ = ("index", "attempt", "proc", "conn", "deadline", "started")

    def __init__(self, index, attempt, proc, conn, deadline, started) -> None:
        self.index = index
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = started


def _reap(attempt: _Attempt) -> None:
    attempt.conn.close()
    attempt.proc.join(_JOIN_GRACE_SECONDS)
    if attempt.proc.is_alive():  # pragma: no cover - stuck after close
        attempt.proc.terminate()
        attempt.proc.join(_JOIN_GRACE_SECONDS)


def _run_jobs_in_processes(
    fn_for,
    jobs: list,
    processes: int,
    max_retries: int,
    timeout: float | None,
    obs: _ObsSink,
    run_deadline: float | None = None,
) -> dict[int, list]:
    """Run every job in its own worker; returns index -> result.

    ``fn_for(attempt)`` resolves the phase function for a given attempt
    number — how the memory ladder swaps in a reduced-budget spill phase
    on retry.  Detects raised exceptions, dead workers (closed pipe
    without a result), and per-attempt timeouts; each failed job is
    retried in a fresh process up to ``max_retries`` times before
    :class:`FragmentFailedError` aborts the run.
    """
    ctx = multiprocessing.get_context()
    pending: deque[tuple[int, int]] = deque((i, 0) for i in range(len(jobs)))
    running: dict[object, _Attempt] = {}
    completed: dict[int, list] = {}

    def launch(index: int, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(fn_for(attempt), jobs[index], send_conn),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        running[recv_conn] = _Attempt(index, attempt, proc, recv_conn,
                                      deadline, obs.now())

    def fail_or_retry(attempt: _Attempt, error: dict) -> None:
        cause = f"{error.get('type')}: {error.get('message')}"
        if attempt.attempt + 1 > max_retries:
            raise FragmentFailedError(
                attempt.index,
                attempt.attempt + 1,
                cause,
                dict(completed),
                cause_type=error.get("type"),
            ) from WorkerFailure(error)
        obs.retry(attempt.index, attempt.attempt, error)
        pending.append((attempt.index, attempt.attempt + 1))

    try:
        while running or pending:
            if run_deadline is not None and time.monotonic() >= run_deadline:
                obs.deadline_exceeded(len(completed), len(jobs))
                raise DeadlineExceededError(
                    obs.now(), len(completed), len(jobs)
                )
            while pending and len(running) < processes:
                launch(*pending.popleft())
            next_deadline = min(
                (a.deadline for a in running.values()
                 if a.deadline is not None),
                default=run_deadline,
            )
            if run_deadline is not None and next_deadline is not None:
                next_deadline = min(next_deadline, run_deadline)
            wait_for = (
                None if next_deadline is None
                else max(0.0, next_deadline - time.monotonic())
            )
            ready = _connection_wait(list(running), timeout=wait_for)
            for conn in ready:
                attempt = running.pop(conn)
                profile = None
                error = None
                try:
                    status, payload, profile = conn.recv()
                except (EOFError, OSError):
                    status = "error"
                    payload = {
                        "type": "WorkerDied",
                        "message": (
                            "worker died without a result "
                            f"(exitcode={attempt.proc.exitcode})"
                        ),
                    }
                _reap(attempt)
                if status == "ok":
                    completed[attempt.index] = payload
                else:
                    error = payload
                obs.attempt_done(
                    attempt.index, attempt.attempt, attempt.started,
                    status == "ok", profile, error,
                )
                if error is not None:
                    fail_or_retry(attempt, error)
            now = time.monotonic()
            for conn, attempt in list(running.items()):
                if attempt.deadline is not None and now >= attempt.deadline:
                    del running[conn]
                    attempt.proc.terminate()
                    _reap(attempt)
                    error = {
                        "type": "Timeout",
                        "message": f"timed out after {timeout:g}s",
                    }
                    obs.attempt_done(
                        attempt.index, attempt.attempt, attempt.started,
                        False, None, error,
                    )
                    fail_or_retry(attempt, error)
    finally:
        for attempt in running.values():
            attempt.proc.terminate()
            _reap(attempt)
    return completed


def _run_jobs_in_process(
    fn_for, jobs: list, max_retries: int, obs: _ObsSink,
    run_deadline: float | None = None,
    on_complete=None,
) -> dict[int, list]:
    """The single-CPU path: same retry semantics, no processes.

    Failures are classified like the process path's:
    :class:`~repro.resources.MemoryExceededError` is the budget ladder's
    *expected* trigger (the retry reruns with spilling), anything else
    is an unexpected fragment error — and either way the exception of a
    retried attempt is logged through the sink, never discarded, and
    the final :class:`FragmentFailedError` chains from its cause.
    The run deadline is checked between fragments and between attempts
    (a running fragment cannot preempt itself without a process).
    """
    completed: dict[int, list] = {}
    for index, job in enumerate(jobs):
        attempts = 0
        while True:
            if (run_deadline is not None
                    and time.monotonic() >= run_deadline):
                obs.deadline_exceeded(len(completed), len(jobs))
                raise DeadlineExceededError(
                    obs.now(), len(completed), len(jobs)
                )
            attempts += 1
            started = profile_start()
            span_start = obs.now()
            try:
                completed[index] = fn_for(attempts - 1)(job)
                if on_complete is not None:
                    on_complete(index, completed[index])
            except MemoryExceededError as exc:
                cause = exc
                error = {
                    "type": "MemoryExceededError",
                    "message": str(exc),
                    "expected": True,
                }
            except Exception as exc:
                cause = exc
                error = {"type": type(exc).__name__, "message": str(exc)}
            else:
                obs.attempt_done(
                    index, attempts - 1, span_start, True,
                    profile_finish(started),
                )
                break
            obs.attempt_done(
                index, attempts - 1, span_start, False,
                profile_finish(started), error,
            )
            if attempts > max_retries:
                raise FragmentFailedError(
                    index,
                    attempts,
                    f"{error['type']}: {error['message']}",
                    dict(completed),
                    cause_type=error["type"],
                ) from cause
            obs.retry(index, attempts - 1, error)
    return completed


def _run_rep_strategy(
    jobs, query, schema, processes, max_retries, timeout, obs,
    deadline=None,
):
    """Dispatch both Rep rounds; returns per-bucket partial lists.

    Round 1 hash-partitions each fragment into ``len(jobs)`` disjoint
    key buckets (:class:`_RepPartitionPhase` — vectorized for columnar
    segments, per-row otherwise).  Round 2 aggregates each bucket's
    chunks in fragment order (:func:`_rep_bucket_phase`), so the final
    parent merge sees one partial per key and the result is
    bit-identical to the 2P strategies.  Both rounds reuse the shared
    worker pool; in-process when ``processes <= 1``.
    """
    num_buckets = len(jobs)
    part_fn = _RepPartitionPhase(num_buckets)

    def part_for(_attempt):
        return part_fn

    if processes <= 1:
        round1 = _run_jobs_in_process(
            part_for, jobs, max_retries, obs, run_deadline=deadline
        )
    else:
        segments: list = []

        def encode(index: int):
            rows, q, s = jobs[index]
            return _encode_fragment(rows, q, s, segments)

        try:
            descriptors = [encode(i) for i in range(len(jobs))]
            round1 = _run_jobs_in_pool(
                part_for, descriptors, processes, max_retries, timeout,
                obs, _get_shared_pool(), reencode=encode,
                run_deadline=deadline,
            )
        finally:
            for shm in segments:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    proj = _projection_for(query, schema)
    rep_schema = proj[0] if proj is not None else schema
    bucket_jobs = []
    for b in range(num_buckets):
        chunks = []
        for f in range(len(jobs)):
            tag, parts = round1[f]
            payload = parts[b]
            if payload is None:
                continue
            chunks.append(
                ("block" if tag == "rep_blocks" else "rows", payload)
            )
        bucket_jobs.append((chunks, query, rep_schema))

    def bucket_for(_attempt):
        return _rep_bucket_phase

    if processes <= 1:
        return _run_jobs_in_process(
            bucket_for, bucket_jobs, max_retries, obs,
            run_deadline=deadline,
        )
    descriptors2 = [("inline", job) for job in bucket_jobs]
    return _run_jobs_in_pool(
        bucket_for, descriptors2, processes, max_retries, timeout, obs,
        _get_shared_pool(), run_deadline=deadline,
    )


_AUTO_SAMPLE_ROWS = 1024


def _auto_params(dist):
    """The cost-model parameters both auto decisions (pre-run and
    mid-run) are evaluated under."""
    from repro.costmodel.params import SystemParameters

    total = sum(len(f.relation) for f in dist.fragments)
    tuple_bytes = max(1, RowCodec(dist.schema).row_bytes)
    return SystemParameters.implementation().with_(
        num_nodes=max(1, len(dist.fragments)),
        num_tuples=max(1, total),
        tuple_bytes=tuple_bytes,
        page_bytes=max(4096, tuple_bytes),
    )


def _auto_sample(dist):
    """A stratified prefix sample: rows drawn from *every* fragment.

    Sampling only fragment 0 lets one skewed fragment (all tuples of
    one hot group, say) lock in the wrong strategy for the whole run;
    splitting the budget across fragments keeps the estimate honest
    under placement skew.  Block-born fragments decode only their
    sampled prefix.  Returns ``(sample_rows, fragments_sampled)``.
    """
    frags = dist.fragments
    if not frags:
        return [], 0
    per = max(1, _AUTO_SAMPLE_ROWS // len(frags))
    sample: list = []
    sampled = 0
    for frag in frags:
        head = frag.relation.head(per)
        if head:
            sampled += 1
        sample.extend(head)
    return sample, sampled


def _resolve_auto_strategy(dist, query, ledger):
    """Pick "pool" (2P) or "global" from the paper's cost terms.

    Estimates selectivity (groups per tuple) from a stratified prefix
    sample across all fragments, feeds it to
    :func:`repro.costmodel.globalhash.choose_mp_strategy`, and records
    the choice — with both modeled costs and the estimate — in
    ``ledger`` so the decision is auditable after the fact.  Returns
    ``(strategy, inputs, event)`` with the recorded ledger event (None
    without a ledger) so the run can attach a post-hoc verdict.
    """
    from repro.costmodel.globalhash import choose_mp_strategy

    total = sum(len(f.relation) for f in dist.fragments)
    sample, sampled_fragments = _auto_sample(dist)
    if sample and query.group_by:
        bq = query.bind(dist.schema)
        distinct = len({bq.key_of(row) for row in sample})
        selectivity = max(
            1.0 / max(total, 1), min(1.0, distinct / len(sample))
        )
    else:
        selectivity = 1.0 / max(total, 1)
    params = _auto_params(dist)
    strategy, inputs = choose_mp_strategy(params, selectivity)
    inputs["sampled_rows"] = len(sample)
    inputs["sampled_fragments"] = sampled_fragments
    event = None
    if ledger is not None:
        event = ledger.record(MP_STRATEGY_CHOICE, -1, 0.0, data=inputs)
    return strategy, inputs, event


# One mid-run re-estimate keeps the controller cheap and mirrors the
# paper's A-2P discipline (switch at most once, when the evidence is
# in); the default observation window is a quarter of the fragments.
_AUTO_VERDICT_MARGIN = 0.10


class _AutoStrategyController:
    """Mid-run re-sampling for ``strategy="auto"`` (the A-2P move).

    The pre-run choice comes from a prefix sample — cheap but blind to
    what execution actually sees.  The controller watches the first
    ``resample_after`` completed fragments, re-estimates the group
    cardinality from their *observed* per-fragment group counts (the
    max over fragments: under round-robin placement each fragment sees
    nearly every group, so the max is a tight lower bound on |G|),
    re-runs :func:`~repro.costmodel.globalhash.choose_mp_strategy`
    once, and — when the winner flips — switches the phase function
    handed to still-undispatched fragments: global ↔ pool, exactly the
    way A-2P abandons its first-phase plan when the table overflows.
    Both the pre-run choice and the re-decision are recorded in the
    ledger and judged post-hoc against the run's true group count.

    The parent merge accepts the resulting mix of packed and unpacked
    partials, so a switch in either direction stays bit-identical.
    """

    def __init__(self, initial, total_rows, params, ledger,
                 resample_after):
        self.current = initial
        self.total_rows = max(1, total_rows)
        self.params = params
        self.ledger = ledger
        self.resample_after = max(1, resample_after)
        self.observed: dict[int, int] = {}
        self.resampled = False
        self.switched_to = None
        self.initial_event = None
        self.event = None

    def phase_fn(self):
        return _global_phase if self.current == "global" else _local_phase

    def on_complete(self, index, payload) -> None:
        """Observe one fragment's first result; re-decide at the window."""
        if self.resampled or index in self.observed:
            return
        self.observed[index] = (
            payload[1] if _is_packed(payload) else len(payload)
        )
        if len(self.observed) < self.resample_after:
            return
        self.resampled = True
        from repro.costmodel.globalhash import choose_mp_strategy

        groups = max(self.observed.values())
        selectivity = max(
            1.0 / self.total_rows, min(1.0, groups / self.total_rows)
        )
        strategy, inputs = choose_mp_strategy(self.params, selectivity)
        inputs["observed_groups"] = groups
        inputs["observed_fragments"] = sorted(self.observed)
        inputs["previous"] = self.current
        inputs["switched"] = strategy != self.current
        if self.ledger is not None:
            self.event = self.ledger.record(
                MP_STRATEGY_RESAMPLE, -1, 0.0, data=inputs
            )
        if strategy != self.current:
            self.switched_to = strategy
            self.current = strategy

    def annotate(self, true_groups: int) -> None:
        """Judge both auto decisions against the run's real group count.

        Mirrors :func:`repro.obs.decisions.annotate_ground_truth`'s
        verdict scheme: ``correct`` when the decision matches what the
        model picks at the true selectivity, otherwise
        ``wrong_but_cheap``/``wrong_and_costly`` split on whether the
        chosen branch's modeled regret stays within 10%.
        """
        from repro.costmodel.globalhash import choose_mp_strategy

        selectivity = max(
            1.0 / self.total_rows,
            min(1.0, max(true_groups, 1) / self.total_rows),
        )
        best, inputs = choose_mp_strategy(self.params, selectivity)
        cost = {
            "pool": inputs["cost_two_phase_seconds"],
            "global": inputs["cost_global_seconds"],
        }
        for event in (self.initial_event, self.event):
            if event is None:
                continue
            chosen = event.data.get("chosen")
            truth = {
                "true_groups": true_groups,
                "truth_choice": best,
                "decision_correct": chosen == best,
                "cost_chosen_seconds": cost.get(chosen),
                "cost_best_seconds": cost[best],
            }
            if chosen == best:
                truth["verdict"] = VERDICT_CORRECT
            else:
                regret = (
                    (cost[chosen] - cost[best]) / cost[best]
                    if chosen in cost and cost[best] > 0 else 0.0
                )
                truth["regret"] = regret
                truth["verdict"] = (
                    VERDICT_WRONG_CHEAP
                    if regret <= _AUTO_VERDICT_MARGIN
                    else VERDICT_WRONG_COSTLY
                )
            event.truth = truth


def multiprocessing_aggregate(
    dist: DistributedRelation,
    query: AggregateQuery,
    processes: int = 0,
    *,
    max_retries: int = 2,
    timeout: float | None = None,
    phase_fn=None,
    memory_budget_bytes: int | None = None,
    tracer=None,
    metrics=None,
    profiles: list | None = None,
    strategy: str = "pool",
    faults=None,
    faults_log: list | None = None,
    speculate: bool = False,
    speculation_multiplier: float = 3.0,
    speculation_min_seconds: float = 0.05,
    heartbeat_interval: float | None = 0.5,
    heartbeat_timeout: float | None = None,
    poison_threshold: int = 3,
    ledger=None,
    deadline: float | None = None,
    auto_resample_after: int | None = None,
) -> list[tuple]:
    """Two Phase over real processes; returns sorted result rows.

    ``timeout`` bounds each worker attempt in wall-clock seconds
    (process dispatch only — the in-process fallback cannot preempt
    itself); ``max_retries`` bounds re-dispatches per fragment;
    ``phase_fn`` substitutes the phase-1 worker function (picklable —
    used by the fault-injection tests).

    ``deadline`` bounds the *whole run* with an absolute
    ``time.monotonic()`` value: when it passes, in-flight attempts are
    cancelled (workers discarded, segments unlinked) and
    :class:`DeadlineExceededError` is raised.  Unlike ``timeout`` it is
    not retried around — it is the caller's latency budget, threaded
    down from the query service's per-query deadline or the CLI's
    ``--timeout``.  A deadline miss does not count toward the circuit
    breaker.

    ``strategy`` picks the aggregation discipline and dispatch
    mechanism:

    * ``"pool"`` (the default): partitioned two-phase on the module's
      persistent worker pool, fragments shipped as shared-memory
      columnar blocks (row blocks when the columnar codec declines).
    * ``"spawn"``: the same two-phase, but one fresh process per
      fragment attempt with pickled rows (the pre-pool behavior, kept
      as the benchmark baseline).
    * ``"global"``: the shared global-hash-table discipline — workers
      return *packed* columnar partials (raw per-group arrays) and the
      parent folds them all into one table vectorized, instead of
      re-materializing per-key states.  Cheapest at high selectivity,
      where 2P's per-fragment partials approach fragment size.
    * ``"rep"``: the paper's Repartitioning — round 1 hash-partitions
      every fragment into ``len(fragments)`` disjoint key buckets,
      round 2 aggregates each bucket on one worker, so no group is
      touched by two workers and the parent merge is a concatenation.
    * ``"auto"``: takes a stratified prefix sample across all
      fragments, estimates selectivity, and picks ``"pool"`` or
      ``"global"`` from the cost model
      (:func:`repro.costmodel.globalhash.choose_mp_strategy`); the
      choice and both modeled costs are recorded in ``ledger``.  The
      choice is then *re-sampled mid-run* (the paper's A-2P move):
      after the first ``auto_resample_after`` fragments complete
      (default: a quarter of the fragments, at least one), the cost
      model re-runs on their observed group cardinality and a flipped
      winner switches global ↔ pool for the fragments not yet
      dispatched.  The re-decision lands in ``ledger`` as an
      ``mp_strategy_resample`` event; both auto events get post-hoc
      verdicts against the true group count once the run finishes.
      ``auto_resample_after=0`` disables the mid-run re-estimate
      (pre-run choice only); substituted ``phase_fn`` and
      ``memory_budget_bytes`` also disable it.

    Results are bit-identical across all strategies.  ``phase_fn`` is
    pool/spawn-only; ``memory_budget_bytes`` excludes ``"rep"``; fault
    injection and speculation require ``"pool"`` or ``"global"``.

    ``memory_budget_bytes`` puts each fragment's phase-1 table under a
    byte budget: the first attempt aggregates in memory but raises
    :class:`~repro.resources.MemoryExceededError` on overrun, and each
    retry reruns the fragment out-of-core at *half* the previous budget
    (rung 4 of the degradation ladder) — so an over-budget fragment
    completes exactly, just slower, instead of failing the run.
    Mutually exclusive with ``phase_fn``; ``None`` leaves the executor
    byte-identical to ungoverned behavior.

    Observability (all optional, zero overhead when omitted):
    ``tracer`` (a :class:`repro.obs.Tracer`) records one wall-clock span
    per fragment attempt — including failed ones, with the error type in
    the span args — under a run-wide query span; ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) collects attempt/retry counters,
    per-error-type counters, and worker wall/CPU/RSS distributions from
    the workers' self-profiles; ``profiles`` (a list) is extended with
    one :class:`repro.obs.WorkerProfile` per attempt that reported back.

    Chaos / robustness (pool strategy only):

    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`) injects the
    plan's deterministic fault schedule into the real workers — kills,
    limplock stalls, slowdowns, in-worker exceptions, shm-segment loss
    (see the module docstring for the mapping).  Requires real
    processes: a run that would fall back in-process is bumped to two
    workers.  ``faults_log`` (a list) receives the injected
    ``(kind, fragment, attempt)`` entries in firing order.
    ``speculate`` enables speculative re-execution: a fragment running
    longer than ``max(speculation_min_seconds, speculation_multiplier ×
    median attempt time)`` gets a backup attempt on a free worker;
    first result wins, the loser is killed, and each speculation is
    recorded in ``ledger`` (a :class:`~repro.obs.DecisionLedger`) with
    a post-hoc verdict.  ``heartbeat_interval`` makes workers emit
    liveness beats mid-job (``None`` disables); a worker silent for
    ``heartbeat_timeout`` seconds (default ``max(8×interval, 5)``) is
    declared lost without waiting out ``timeout``.  A fragment whose
    attempts kill ``poison_threshold`` workers is quarantined: it fails
    fast as a ``PoisonFragment`` instead of grinding the pool down.
    Runs that repeatedly fail with infrastructure causes trip a
    module-level circuit breaker (see :class:`PoolCircuitBreaker`):
    the pool is rebuilt once, then ``strategy="pool"`` degrades to the
    spawn path (fault injection is skipped while degraded).
    """
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    if deadline is not None and time.monotonic() >= deadline:
        # Already out of budget: fail before any work is dispatched.
        raise DeadlineExceededError(0.0, 0, len(dist.fragments))
    if memory_budget_bytes is not None:
        if phase_fn is not None:
            raise ValueError(
                "pass either phase_fn or memory_budget_bytes, not both"
            )
        if memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive")
    if strategy not in ("pool", "spawn", "global", "rep", "auto"):
        raise ValueError(
            "strategy must be 'pool', 'spawn', 'global', 'rep' or "
            f"'auto', got {strategy!r}"
        )
    if phase_fn is not None and strategy not in ("pool", "spawn"):
        raise ValueError(
            "phase_fn substitution requires strategy='pool' or 'spawn'"
        )
    if memory_budget_bytes is not None and strategy == "rep":
        raise ValueError(
            "memory_budget_bytes is not supported with strategy='rep' "
            "(the budget ladder governs the two-phase local phase)"
        )
    faults_active = faults is not None and faults.active
    if strategy not in ("pool", "global"):
        if faults_active:
            raise ValueError(
                "fault injection requires strategy='pool' or 'global' "
                "(other paths have no injection shim)"
            )
        if speculate:
            raise ValueError(
                "speculative re-execution requires strategy='pool' or "
                "'global'"
            )
    if auto_resample_after is not None and auto_resample_after < 0:
        raise ValueError("auto_resample_after must be non-negative")
    strategy_inputs = None
    controller = None
    if strategy == "auto":
        strategy, strategy_inputs, auto_event = _resolve_auto_strategy(
            dist, query, ledger
        )
        resample_after = (
            max(1, len(dist.fragments) // 4)
            if auto_resample_after is None else auto_resample_after
        )
        if (
            resample_after
            and phase_fn is None
            and memory_budget_bytes is None
        ):
            controller = _AutoStrategyController(
                strategy,
                sum(len(f.relation) for f in dist.fragments),
                _auto_params(dist),
                ledger,
                resample_after,
            )
            controller.initial_event = auto_event
    if speculation_multiplier < 1.0:
        raise ValueError("speculation_multiplier must be >= 1")
    if speculation_min_seconds <= 0:
        raise ValueError("speculation_min_seconds must be positive")
    if heartbeat_interval is not None and heartbeat_interval <= 0:
        raise ValueError("heartbeat_interval must be positive (or None)")
    if heartbeat_timeout is not None and heartbeat_timeout <= 0:
        raise ValueError("heartbeat_timeout must be positive")
    if poison_threshold < 1:
        raise ValueError("poison_threshold must be positive")
    if phase_fn is not None:
        fn = phase_fn
    elif strategy == "global":
        fn = _global_phase
    else:
        fn = _local_phase

    def fn_for(attempt: int):
        if memory_budget_bytes is None:
            # Resolved at dispatch time, so the mid-run controller's
            # switch reaches fragments not yet handed to a worker.
            if controller is not None:
                return controller.phase_fn()
            return fn
        if attempt == 0:
            return _GovernedPhase(memory_budget_bytes, spill=False)
        return _GovernedPhase(
            max(1, memory_budget_bytes >> attempt), spill=True
        )

    # Block-born fragments stay columnar end to end: the job carries the
    # ColumnBlock itself and rows are never materialized on the default
    # phases (encode ships the block; the in-process kernel reads it
    # directly).  The spawn baseline and substituted phase functions
    # keep their row-list contract — BlockRelation decodes lazily.
    want_blocks = strategy != "spawn" and phase_fn is None and have_numpy()
    jobs = [
        (
            frag.relation.block
            if want_blocks
            and getattr(frag.relation, "block", None) is not None
            else frag.relation.rows,
            query,
            dist.schema,
        )
        for frag in dist.fragments
    ]
    on_complete = controller.on_complete if controller is not None else None
    cpu_count = os.cpu_count() or 1
    if processes == 0:
        processes = min(len(jobs), cpu_count)
    if faults_active and processes == 1:
        # Injection needs real worker processes; the in-process fallback
        # has nothing to kill, stall, or starve.
        processes = 2
    obs = _ObsSink(tracer, metrics)
    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            "mp_aggregate", track=-1, t=0.0, cat="query",
            fragments=len(jobs), processes=processes,
        )
    breaker = _pool_breaker
    try:
        if strategy == "rep":
            completed = _run_rep_strategy(
                jobs, query, dist.schema, processes, max_retries,
                timeout, obs, deadline,
            )
        elif processes <= 1:
            completed = _run_jobs_in_process(
                fn_for, jobs, max_retries, obs, run_deadline=deadline,
                on_complete=on_complete,
            )
        elif strategy == "spawn":
            completed = _run_jobs_in_processes(
                fn_for, jobs, processes, max_retries, timeout, obs,
                run_deadline=deadline,
            )
        elif breaker.degraded:
            # The breaker gave up on pool infrastructure: degrade to the
            # spawn path (correct, just slower); injection is skipped.
            obs.pool_degraded()
            completed = _run_jobs_in_processes(
                fn_for, jobs, processes, max_retries, timeout, obs,
                run_deadline=deadline,
            )
        else:
            if breaker.take_rebuild():
                shutdown_worker_pool()
                obs.pool_rebuild()
            injector = None
            if faults_active:
                injector = MpFaultInjector(faults, len(jobs),
                                           max_retries + 1)
            segments: list = []
            shm_owner: dict[int, shared_memory.SharedMemory] = {}

            def encode(index: int):
                rows, q, schema = jobs[index]
                desc = _encode_fragment(
                    rows, q, schema, segments, project=phase_fn is None
                )
                if desc[0] in ("shm", "shm_col"):
                    shm_owner[index] = segments[-1]
                return desc

            def lose_segment(index: int) -> bool:
                shm = shm_owner.get(index)
                if shm is None:
                    return False  # inline descriptor: nothing to lose
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - lost twice
                    pass
                return True

            chaos = ChaosOptions(
                injector=injector,
                heartbeat_interval=heartbeat_interval,
                heartbeat_timeout=heartbeat_timeout,
                speculate=speculate,
                speculation_multiplier=speculation_multiplier,
                speculation_min_seconds=speculation_min_seconds,
                poison_threshold=poison_threshold,
                ledger=ledger,
                lose_segment=lose_segment,
            )
            try:
                descriptors = [encode(i) for i in range(len(jobs))]
                completed = _run_jobs_in_pool(
                    fn_for, descriptors, processes, max_retries, timeout,
                    obs, _get_shared_pool(), chaos=chaos, reencode=encode,
                    run_deadline=deadline, on_complete=on_complete,
                )
            except FragmentFailedError as exc:
                breaker.record_failure(exc.cause_type)
                raise
            else:
                breaker.record_success()
            finally:
                obs.breaker_state(breaker.state_code())
                if injector is not None and faults_log is not None:
                    faults_log.extend(injector.injected)
                # The parent owns every segment: unlink on success,
                # worker error, timeout, death, and FragmentFailedError
                # alike, so /dev/shm never accumulates repro_mp_* files.
                for shm in segments:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:
                        pass
    except (FragmentFailedError, DeadlineExceededError):
        if tracer is not None:
            tracer.close_all(obs.now())
        if profiles is not None:
            profiles.extend(obs.profiles)
        raise
    if profiles is not None:
        profiles.extend(obs.profiles)
    if metrics is not None:
        metrics.counter("mp.fragments").inc(len(jobs))
        if strategy_inputs is not None:
            metrics.counter("mp.auto_strategy." + strategy).inc()
        if controller is not None and controller.resampled:
            metrics.counter("mp.auto_strategy.resampled").inc()
            if controller.switched_to is not None:
                metrics.counter(
                    "mp.auto_strategy.switched_to."
                    + controller.switched_to
                ).inc()

    merge_start = obs.now()
    bq = query.bind(dist.schema)
    # Merge into states owned by this function: never mutate (or shallow-
    # copy) the pooled partials, so re-running over the same inputs can
    # never see aliased state from an earlier merge.
    merged: dict[tuple, GroupState] | None = None
    if strategy == "global" or controller is not None:
        # A mid-run switch leaves a mix of packed (global) and unpacked
        # (pool) partials; all-packed folds vectorized, anything else
        # unpacks and takes the sequential merge.
        ordered = [completed[i] for i in range(len(jobs))]
        if all(_is_packed(p) for p in ordered):
            merged = _merge_packed(ordered, query)
        if merged is None:
            # Mixed or guard-failed payloads: unpack everything and use
            # the sequential merge below (same result, just slower).
            completed = {
                i: _unpack_packed(p, query) if _is_packed(p) else p
                for i, p in completed.items()
            }
    if merged is None:
        merged = {}
        for index in range(len(jobs)):
            for key, state in completed[index]:
                mine = merged.get(key)
                if mine is None:
                    mine = GroupState(query.aggregates)
                    merged[key] = mine
                mine.merge(state)
    if controller is not None:
        # The merged table's size is the run's true group count: judge
        # both auto decisions (pre-run sample, mid-run re-sample) now.
        controller.annotate(len(merged))
    rows = (bq.result_row(key, state) for key, state in merged.items())
    result = sorted(row for row in rows if bq.passes_having(row))
    if tracer is not None:
        tracer.complete(
            "merge", -1, merge_start, obs.now(), cat=_CAT_PHASE,
            groups=len(result),
        )
        tracer.end(run_span, obs.now())
    if metrics is not None:
        metrics.gauge("mp.elapsed_seconds", mode="max").set(obs.now())
        metrics.counter("mp.groups_output").inc(len(result))
        # Worker-vs-merge wall split, consumed by the drift layer
        # (repro.obs.drift.compare_model_to_mp).
        metrics.gauge("mp.phase_seconds.local", mode="max").set(merge_start)
        metrics.gauge("mp.phase_seconds.merge", mode="max").set(
            obs.now() - merge_start
        )
    return result
