"""A real multiprocessing Two Phase executor, hardened against failures.

Each worker process aggregates one node's fragment (phase 1); the parent
merges the partial states (phase 2).  This demonstrates the library's
partial-aggregate states compose across *real* process boundaries — the
states are picklable by construction — while the simulator remains the
source of timing results (see DESIGN.md on the GIL/1-core substitution).

Dispatch is per-job (one worker process per fragment attempt, at most
``processes`` in flight) rather than a bare ``pool.map``, so the parent
can detect a worker that raises, dies, or exceeds ``timeout`` seconds and
retry that one fragment up to ``max_retries`` times.  A fragment that
still fails raises :class:`FragmentFailedError` carrying the partial
progress (every fragment that *did* complete) — the executor never hangs
on a dead or wedged worker.

``processes=0`` (the default) sizes the pool to the fragment count but
falls back to in-process execution when the host has a single CPU, so the
test suite stays fast everywhere.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from multiprocessing.connection import wait as _connection_wait

from repro.core.aggregates import GroupState
from repro.core.query import AggregateQuery
from repro.obs.profile import WorkerProfile, profile_finish, profile_start
from repro.obs.tracer import PHASE as _CAT_PHASE
from repro.resources.governor import MemoryExceededError
from repro.storage.relation import DistributedRelation

_JOIN_GRACE_SECONDS = 5.0

# Accounting for the per-fragment memory budget: one resident group costs
# roughly its projected attributes plus running-state overhead.
_ENTRY_OVERHEAD_BYTES = 8
_MIN_SPILL_ENTRIES = 8


class FragmentFailedError(RuntimeError):
    """One fragment's phase-1 job failed after exhausting its retries.

    ``partial_results`` maps fragment index to the completed partial
    lists, so a caller can salvage finished work or re-dispatch only the
    failed fragment.  ``cause_type`` is the exception type name of the
    final failure (e.g. ``"MemoryExceededError"``, ``"WorkerDied"``,
    ``"Timeout"``) so callers can branch on *what* failed without
    parsing the message.
    """

    def __init__(
        self,
        fragment_index: int,
        attempts: int,
        cause: str,
        partial_results: dict[int, list],
        cause_type: str | None = None,
    ) -> None:
        super().__init__(
            f"fragment {fragment_index} failed after {attempts} "
            f"attempt(s): {cause}"
        )
        self.fragment_index = fragment_index
        self.attempts = attempts
        self.cause = cause
        self.cause_type = cause_type
        self.partial_results = partial_results


def _local_phase(args) -> list[tuple[tuple, GroupState]]:
    """Phase 1 for one fragment: (rows, query, schema) -> partials."""
    rows, query, schema = args
    bq = query.bind(schema)
    table: dict[tuple, GroupState] = {}
    for row in rows:
        if not bq.matches(row):
            continue
        key = bq.key_of(row)
        state = table.get(key)
        if state is None:
            state = GroupState(query.aggregates)
            table[key] = state
        state.update(bq.values_of(row))
    return list(table.items())


class _GovernedPhase:
    """Phase 1 under a byte budget — rung 4 of the degradation ladder.

    Picklable (a plain instance of a module-level class), so it crosses
    the worker-process boundary like any ``phase_fn``.  First attempt
    (``spill=False``): aggregate in memory with a watchdog that raises
    :class:`~repro.resources.MemoryExceededError` — carrying the
    high-water mark — the moment the table would outgrow the budget.
    Retry attempts (``spill=True``): rerun out-of-core at the reduced
    budget, spooling overflow groups through a
    :class:`~repro.storage.spill.FileSpillStore`, which completes under
    any budget without losing tuples.
    """

    def __init__(self, budget_bytes: int, spill: bool) -> None:
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = budget_bytes
        self.spill = spill

    def _entry_bytes(self, bq) -> int:
        return max(1, bq.projected_bytes) + _ENTRY_OVERHEAD_BYTES

    def __call__(self, job) -> list[tuple[tuple, GroupState]]:
        rows, query, schema = job
        bq = query.bind(schema)
        entry_bytes = self._entry_bytes(bq)
        if self.spill:
            return self._spill_phase(rows, query, bq, entry_bytes)
        return self._watchdog_phase(rows, query, bq, entry_bytes)

    def _watchdog_phase(self, rows, query, bq, entry_bytes):
        table: dict[tuple, GroupState] = {}
        for row in rows:
            if not bq.matches(row):
                continue
            key = bq.key_of(row)
            state = table.get(key)
            if state is None:
                used = len(table) * entry_bytes
                if used + entry_bytes > self.budget_bytes:
                    raise MemoryExceededError(
                        "mp_local_phase",
                        self.budget_bytes,
                        high_water_bytes=used,
                        requested_bytes=entry_bytes,
                    )
                state = GroupState(query.aggregates)
                table[key] = state
            state.update(bq.values_of(row))
        return list(table.items())

    def _spill_phase(self, rows, query, bq, entry_bytes):
        from repro.core.hashtable import HashAggregator
        from repro.storage.spill import FileSpillStore

        max_entries = max(
            _MIN_SPILL_ENTRIES, self.budget_bytes // entry_bytes
        )
        with FileSpillStore() as store:
            agg = HashAggregator(
                lambda: GroupState(query.aggregates),
                max_entries,
                spill_store=store,
            )
            for row in rows:
                if not bq.matches(row):
                    continue
                agg.add_values(bq.key_of(row), bq.values_of(row))
            return list(agg.finish())


def _child_main(fn, job, conn) -> None:
    """Worker entry: run the phase, self-profile, and report back.

    The reply is ``(status, payload, profile)``: status "ok" carries the
    result, status "error" a ``{"type", "message"}`` dict preserving the
    exception's type so the parent can classify the failure; ``profile``
    is the worker's self-measurement (wall/CPU seconds, high-water RSS).
    """
    started = profile_start()
    try:
        result = fn(job)
    except BaseException as exc:  # report, don't let the child hang
        try:
            conn.send(
                (
                    "error",
                    {"type": type(exc).__name__, "message": str(exc)},
                    profile_finish(started),
                )
            )
        finally:
            conn.close()
        return
    conn.send(("ok", result, profile_finish(started)))
    conn.close()


class _ObsSink:
    """Collects the executor's observability: spans, counters, profiles.

    Wraps an optional tracer and metrics registry behind unconditional
    method calls, so the dispatch loops stay readable; with neither
    attached only the ``profiles`` list is maintained.  Times are wall
    seconds relative to the sink's creation (the run start), keeping the
    exported trace starting at zero like a simulated one.
    """

    def __init__(self, tracer=None, metrics=None) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.t0 = time.perf_counter()
        self.profiles: list[WorkerProfile] = []

    def now(self) -> float:
        return time.perf_counter() - self.t0

    def attempt_done(
        self,
        index: int,
        attempt: int,
        start: float,
        ok: bool,
        profile: dict | None,
        error: dict | None = None,
    ) -> None:
        """One fragment attempt finished (either way) at ``self.now()``."""
        end = self.now()
        if profile:
            self.profiles.append(
                WorkerProfile.from_dict(index, attempt, profile, ok=ok)
            )
        if self.metrics is not None:
            m = self.metrics
            m.counter("mp.attempts").inc()
            if not ok:
                m.counter("mp.failed_attempts").inc()
            if profile:
                m.histogram("mp.worker_wall_seconds").observe(
                    profile.get("wall_seconds", 0.0)
                )
                m.histogram("mp.worker_cpu_seconds").observe(
                    profile.get("cpu_seconds", 0.0)
                )
                m.gauge("mp.worker_max_rss_bytes", mode="max").set(
                    profile.get("max_rss_bytes", 0)
                )
        if self.tracer is not None:
            args = {"attempt": attempt, "ok": ok}
            if profile:
                args["cpu_seconds"] = profile.get("cpu_seconds", 0.0)
                args["max_rss_bytes"] = profile.get("max_rss_bytes", 0)
            if error is not None:
                args["error_type"] = error.get("type")
                args["error"] = error.get("message")
            self.tracer.complete(
                f"fragment {index}", index, start, end,
                cat=_CAT_PHASE, **args,
            )

    def retry(self, index: int, attempt: int, error: dict) -> None:
        """A failed attempt is being re-dispatched — the exception the
        retry loop would otherwise discard goes on the record here."""
        if self.metrics is not None:
            self.metrics.counter("mp.retries").inc()
            self.metrics.counter(
                f"mp.errors.{error.get('type', 'Unknown')}"
            ).inc()
        if self.tracer is not None:
            self.tracer.instant(
                "fragment_retry", index, self.now(),
                attempt=attempt,
                error_type=error.get("type"),
                error=error.get("message"),
            )


class _Attempt:
    __slots__ = ("index", "attempt", "proc", "conn", "deadline", "started")

    def __init__(self, index, attempt, proc, conn, deadline, started) -> None:
        self.index = index
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = started


def _reap(attempt: _Attempt) -> None:
    attempt.conn.close()
    attempt.proc.join(_JOIN_GRACE_SECONDS)
    if attempt.proc.is_alive():  # pragma: no cover - stuck after close
        attempt.proc.terminate()
        attempt.proc.join(_JOIN_GRACE_SECONDS)


def _run_jobs_in_processes(
    fn_for,
    jobs: list,
    processes: int,
    max_retries: int,
    timeout: float | None,
    obs: _ObsSink,
) -> dict[int, list]:
    """Run every job in its own worker; returns index -> result.

    ``fn_for(attempt)`` resolves the phase function for a given attempt
    number — how the memory ladder swaps in a reduced-budget spill phase
    on retry.  Detects raised exceptions, dead workers (closed pipe
    without a result), and per-attempt timeouts; each failed job is
    retried in a fresh process up to ``max_retries`` times before
    :class:`FragmentFailedError` aborts the run.
    """
    ctx = multiprocessing.get_context()
    pending: deque[tuple[int, int]] = deque((i, 0) for i in range(len(jobs)))
    running: dict[object, _Attempt] = {}
    completed: dict[int, list] = {}

    def launch(index: int, attempt: int) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(fn_for(attempt), jobs[index], send_conn),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        running[recv_conn] = _Attempt(index, attempt, proc, recv_conn,
                                      deadline, obs.now())

    def fail_or_retry(attempt: _Attempt, error: dict) -> None:
        cause = f"{error.get('type')}: {error.get('message')}"
        if attempt.attempt + 1 > max_retries:
            raise FragmentFailedError(
                attempt.index,
                attempt.attempt + 1,
                cause,
                dict(completed),
                cause_type=error.get("type"),
            )
        obs.retry(attempt.index, attempt.attempt, error)
        pending.append((attempt.index, attempt.attempt + 1))

    try:
        while running or pending:
            while pending and len(running) < processes:
                launch(*pending.popleft())
            next_deadline = min(
                (a.deadline for a in running.values()
                 if a.deadline is not None),
                default=None,
            )
            wait_for = (
                None if next_deadline is None
                else max(0.0, next_deadline - time.monotonic())
            )
            ready = _connection_wait(list(running), timeout=wait_for)
            for conn in ready:
                attempt = running.pop(conn)
                profile = None
                error = None
                try:
                    status, payload, profile = conn.recv()
                except (EOFError, OSError):
                    status = "error"
                    payload = {
                        "type": "WorkerDied",
                        "message": (
                            "worker died without a result "
                            f"(exitcode={attempt.proc.exitcode})"
                        ),
                    }
                _reap(attempt)
                if status == "ok":
                    completed[attempt.index] = payload
                else:
                    error = payload
                obs.attempt_done(
                    attempt.index, attempt.attempt, attempt.started,
                    status == "ok", profile, error,
                )
                if error is not None:
                    fail_or_retry(attempt, error)
            now = time.monotonic()
            for conn, attempt in list(running.items()):
                if attempt.deadline is not None and now >= attempt.deadline:
                    del running[conn]
                    attempt.proc.terminate()
                    _reap(attempt)
                    error = {
                        "type": "Timeout",
                        "message": f"timed out after {timeout:g}s",
                    }
                    obs.attempt_done(
                        attempt.index, attempt.attempt, attempt.started,
                        False, None, error,
                    )
                    fail_or_retry(attempt, error)
    finally:
        for attempt in running.values():
            attempt.proc.terminate()
            _reap(attempt)
    return completed


def _run_jobs_in_process(
    fn_for, jobs: list, max_retries: int, obs: _ObsSink
) -> dict[int, list]:
    """The single-CPU path: same retry semantics, no processes.

    Failures are classified like the process path's:
    :class:`~repro.resources.MemoryExceededError` is the budget ladder's
    *expected* trigger (the retry reruns with spilling), anything else
    is an unexpected fragment error — and either way the exception of a
    retried attempt is logged through the sink, never discarded, and
    the final :class:`FragmentFailedError` chains from its cause.
    """
    completed: dict[int, list] = {}
    for index, job in enumerate(jobs):
        attempts = 0
        while True:
            attempts += 1
            started = profile_start()
            span_start = obs.now()
            try:
                completed[index] = fn_for(attempts - 1)(job)
            except MemoryExceededError as exc:
                cause = exc
                error = {
                    "type": "MemoryExceededError",
                    "message": str(exc),
                    "expected": True,
                }
            except Exception as exc:
                cause = exc
                error = {"type": type(exc).__name__, "message": str(exc)}
            else:
                obs.attempt_done(
                    index, attempts - 1, span_start, True,
                    profile_finish(started),
                )
                break
            obs.attempt_done(
                index, attempts - 1, span_start, False,
                profile_finish(started), error,
            )
            if attempts > max_retries:
                raise FragmentFailedError(
                    index,
                    attempts,
                    f"{error['type']}: {error['message']}",
                    dict(completed),
                    cause_type=error["type"],
                ) from cause
            obs.retry(index, attempts - 1, error)
    return completed


def multiprocessing_aggregate(
    dist: DistributedRelation,
    query: AggregateQuery,
    processes: int = 0,
    *,
    max_retries: int = 2,
    timeout: float | None = None,
    phase_fn=None,
    memory_budget_bytes: int | None = None,
    tracer=None,
    metrics=None,
    profiles: list | None = None,
) -> list[tuple]:
    """Two Phase over real processes; returns sorted result rows.

    ``timeout`` bounds each worker attempt in wall-clock seconds
    (process dispatch only — the in-process fallback cannot preempt
    itself); ``max_retries`` bounds re-dispatches per fragment;
    ``phase_fn`` substitutes the phase-1 worker function (picklable —
    used by the fault-injection tests).

    ``memory_budget_bytes`` puts each fragment's phase-1 table under a
    byte budget: the first attempt aggregates in memory but raises
    :class:`~repro.resources.MemoryExceededError` on overrun, and each
    retry reruns the fragment out-of-core at *half* the previous budget
    (rung 4 of the degradation ladder) — so an over-budget fragment
    completes exactly, just slower, instead of failing the run.
    Mutually exclusive with ``phase_fn``; ``None`` leaves the executor
    byte-identical to ungoverned behavior.

    Observability (all optional, zero overhead when omitted):
    ``tracer`` (a :class:`repro.obs.Tracer`) records one wall-clock span
    per fragment attempt — including failed ones, with the error type in
    the span args — under a run-wide query span; ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) collects attempt/retry counters,
    per-error-type counters, and worker wall/CPU/RSS distributions from
    the workers' self-profiles; ``profiles`` (a list) is extended with
    one :class:`repro.obs.WorkerProfile` per attempt that reported back.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")
    if memory_budget_bytes is not None:
        if phase_fn is not None:
            raise ValueError(
                "pass either phase_fn or memory_budget_bytes, not both"
            )
        if memory_budget_bytes < 1:
            raise ValueError("memory_budget_bytes must be positive")
    fn = _local_phase if phase_fn is None else phase_fn

    def fn_for(attempt: int):
        if memory_budget_bytes is None:
            return fn
        if attempt == 0:
            return _GovernedPhase(memory_budget_bytes, spill=False)
        return _GovernedPhase(
            max(1, memory_budget_bytes >> attempt), spill=True
        )

    jobs = [
        (frag.relation.rows, query, dist.schema) for frag in dist.fragments
    ]
    cpu_count = os.cpu_count() or 1
    if processes == 0:
        processes = min(len(jobs), cpu_count)
    obs = _ObsSink(tracer, metrics)
    run_span = None
    if tracer is not None:
        run_span = tracer.begin(
            "mp_aggregate", track=-1, t=0.0, cat="query",
            fragments=len(jobs), processes=processes,
        )
    try:
        if processes <= 1:
            completed = _run_jobs_in_process(fn_for, jobs, max_retries, obs)
        else:
            completed = _run_jobs_in_processes(
                fn_for, jobs, processes, max_retries, timeout, obs
            )
    except FragmentFailedError:
        if tracer is not None:
            tracer.close_all(obs.now())
        if profiles is not None:
            profiles.extend(obs.profiles)
        raise
    if profiles is not None:
        profiles.extend(obs.profiles)
    if metrics is not None:
        metrics.counter("mp.fragments").inc(len(jobs))

    merge_start = obs.now()
    bq = query.bind(dist.schema)
    # Merge into states owned by this function: never mutate (or shallow-
    # copy) the pooled partials, so re-running over the same inputs can
    # never see aliased state from an earlier merge.
    merged: dict[tuple, GroupState] = {}
    for index in range(len(jobs)):
        for key, state in completed[index]:
            mine = merged.get(key)
            if mine is None:
                mine = GroupState(query.aggregates)
                merged[key] = mine
            mine.merge(state)
    rows = (bq.result_row(key, state) for key, state in merged.items())
    result = sorted(row for row in rows if bq.passes_having(row))
    if tracer is not None:
        tracer.complete(
            "merge", -1, merge_start, obs.now(), cat=_CAT_PHASE,
            groups=len(result),
        )
        tracer.end(run_span, obs.now())
    if metrics is not None:
        metrics.gauge("mp.elapsed_seconds", mode="max").set(obs.now())
        metrics.counter("mp.groups_output").inc(len(result))
        # Worker-vs-merge wall split, consumed by the drift layer
        # (repro.obs.drift.compare_model_to_mp).
        metrics.gauge("mp.phase_seconds.local", mode="max").set(merge_start)
        metrics.gauge("mp.phase_seconds.merge", mode="max").set(
            obs.now() - merge_start
        )
    return result
