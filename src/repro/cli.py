"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run      simulate one algorithm on a generated workload
compare  simulate every algorithm on the same workload
figure   regenerate a paper table/figure (writes results/<name>.csv)
params   print a parameter preset (Table 1 or the Section 5 cluster)
plan     ask the optimizer which algorithm to use
trace    run one algorithm traced; write Chrome/Perfetto trace JSON
explain  render a run's adaptive decisions, judged against ground truth
bench    compare BENCH artifacts against the committed baseline
scale    sweep node counts and print speedup/scaleup tables
sql      run one SQL query over a generated or saved workload
serve    long-lived HTTP/JSON query service over the worker pool
top      live one-screen view of a running service (polls /metrics)
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures as figure_runners
from repro.bench.harness import format_table, write_results
from repro.core.aggregates import FUNCTIONS, AggregateSpec
from repro.core.optimizer import choose_plan
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, default_parameters, run_algorithm
from repro.costmodel.params import NetworkKind, SystemParameters
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform, generate_zipf
from repro.workloads.skew import generate_input_skew, generate_output_skew

_NETWORKS = {
    "fast": NetworkKind.HIGH_BANDWIDTH,
    "ethernet": NetworkKind.LIMITED_BANDWIDTH,
}


class CliError(Exception):
    """A user-facing failure rendered as one actionable line, no traceback.

    ``exit_code`` defaults to 2 (usage/query errors); deadline misses
    use :data:`EXIT_DEADLINE_MISS` so scripts can tell "the query is
    wrong" from "the query ran out of time" without parsing text.
    """

    def __init__(self, message: str, exit_code: int = 2) -> None:
        super().__init__(message)
        self.exit_code = exit_code


EXIT_DEADLINE_MISS = 3


def _lazy_extensions():
    from repro.bench import scaling, validation

    return {
        "sim_scaleup": scaling.sim_scaleup,
        "sim_speedup": scaling.sim_speedup,
        "validation": validation.model_vs_simulator,
    }


FIGURES = {
    "table1": figure_runners.table1,
    "fig1": figure_runners.figure1,
    "fig2": figure_runners.figure2,
    "fig3": figure_runners.figure3,
    "fig4": figure_runners.figure4,
    "fig5": figure_runners.figure5,
    "fig6": figure_runners.figure6,
    "fig7": figure_runners.figure7,
    "fig8": figure_runners.figure8,
    "fig8_fast": figure_runners.figure8_fast_network,
    "fig9": figure_runners.figure9,
    "skew_input": figure_runners.input_skew_study,
    **_lazy_extensions(),
}


def _parse_agg(text: str) -> AggregateSpec:
    """"sum:val" -> AggregateSpec("sum", "val"); "count" -> COUNT(*)."""
    func, _, column = text.partition(":")
    if func not in FUNCTIONS:
        raise argparse.ArgumentTypeError(
            f"unknown aggregate {func!r}; choose from {sorted(FUNCTIONS)}"
        )
    return AggregateSpec(func, column or None)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tuples", type=int, default=40_000)
    parser.add_argument("--groups", type=int, default=2_000)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workload",
        choices=["uniform", "zipf", "output-skew", "input-skew"],
        default="uniform",
    )
    parser.add_argument(
        "--network", choices=sorted(_NETWORKS), default="ethernet"
    )
    parser.add_argument("--table-entries", type=int, default=None)
    parser.add_argument("--pipeline", action="store_true")
    parser.add_argument(
        "--agg",
        type=_parse_agg,
        action="append",
        help='aggregate spec like "sum:val" or "count"; repeatable',
    )


def _build_workload(args):
    if args.workload == "uniform":
        return generate_uniform(
            args.tuples, args.groups, args.nodes, seed=args.seed
        )
    if args.workload == "zipf":
        return generate_zipf(
            args.tuples, args.groups, args.nodes, seed=args.seed
        )
    if args.workload == "output-skew":
        return generate_output_skew(
            args.tuples, args.groups, num_nodes=args.nodes, seed=args.seed
        )
    return generate_input_skew(
        args.tuples, args.groups, args.nodes, seed=args.seed
    )


def _build_query(args) -> AggregateQuery:
    aggs = args.agg or [AggregateSpec("sum", "val")]
    return AggregateQuery(group_by=["gkey"], aggregates=aggs)


def _run_one(name, dist, query, args, out, record_timeline=False,
             ledger=None, faults=None):
    params = default_parameters(
        dist,
        network=_NETWORKS[args.network],
        hash_table_entries=args.table_entries,
    )
    outcome = run_algorithm(
        name,
        dist,
        query,
        params=params,
        record_timeline=record_timeline,
        pipeline=args.pipeline,
        ledger=ledger,
        faults=faults,
    )
    switches = [
        e for e in outcome.switch_events() if e.what.startswith("switch")
    ]
    print(
        f"{name:<26} {outcome.elapsed_seconds:9.4f}s  "
        f"groups={outcome.num_groups:<7d} "
        f"sent={outcome.metrics.total_bytes_sent / 1e6:7.2f}MB  "
        f"spill={outcome.metrics.total_spill_pages:7.1f}pg  "
        f"switches={len(switches)}",
        file=out,
    )
    return outcome


def _workload_dict(args) -> dict:
    return {
        "workload": args.workload,
        "tuples": args.tuples,
        "groups": args.groups,
        "nodes": args.nodes,
        "seed": args.seed,
        "network": args.network,
    }


def _parse_fault_plan(text: str):
    """Parse the ``--faults`` mini-grammar into a :class:`FaultPlan`.

    ``seed=S,kill=N[@TUPLES],slow=NxFACTOR,stall=NxSECONDS,loss=P,dup=P,
    error-rate=P`` — ``kill``/``slow``/``stall`` may repeat to target
    several nodes.  ``kill=N`` crashes node N at time zero; ``kill=N@T``
    crashes it after scanning T tuples (simulator substrate only — the
    mp pool kills at the fragment's first dispatch either way).
    """
    from repro.sim.faults import (
        CrashFault,
        FaultConfigError,
        FaultPlan,
        Straggler,
        WorkerStall,
    )

    seed = 0
    crashes: list = []
    stragglers: list = []
    stalls: list = []
    rates = {"loss": 0.0, "dup": 0.0, "error-rate": 0.0}

    def _pair(value: str, sep: str, what: str) -> tuple[int, float]:
        node_text, _, amount_text = value.partition(sep)
        try:
            return int(node_text), float(amount_text)
        except ValueError:
            raise CliError(
                f"bad --faults entry {what}={value!r} "
                f"(expected NODE{sep}NUMBER)"
            ) from None

    for entry in filter(None, (e.strip() for e in text.split(","))):
        key, sep, value = entry.partition("=")
        if not sep:
            raise CliError(
                f"bad --faults entry {entry!r} (expected key=value)"
            )
        try:
            if key == "seed":
                seed = int(value)
            elif key == "kill":
                node_text, _, tuples_text = value.partition("@")
                node = int(node_text)
                if tuples_text:
                    crashes.append(
                        CrashFault(node, after_tuples=int(tuples_text))
                    )
                else:
                    crashes.append(CrashFault(node, at_time=0.0))
            elif key == "slow":
                node, factor = _pair(value, "x", "slow")
                stragglers.append(Straggler(node, factor))
            elif key == "stall":
                node, seconds = _pair(value, "x", "stall")
                stalls.append(WorkerStall(node, seconds))
            elif key in rates:
                rates[key] = float(value)
            else:
                raise CliError(
                    f"unknown --faults key {key!r} (expected seed, kill, "
                    "slow, stall, loss, dup, or error-rate)"
                )
        except (ValueError, FaultConfigError) as exc:
            raise CliError(f"bad --faults entry {entry!r}: {exc}") from exc
    try:
        return FaultPlan(
            seed=seed,
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            worker_stalls=tuple(stalls),
            message_loss=rates["loss"],
            message_duplication=rates["dup"],
            read_error_rate=rates["error-rate"],
        )
    except FaultConfigError as exc:
        raise CliError(f"bad --faults plan: {exc}") from exc


def _cmd_run_mp(args, out, faults) -> int:
    """``repro run --substrate mp``: the real-process pool executor."""
    import time as _time

    from repro.obs.metrics import MetricsRegistry
    from repro.parallel import (
        DeadlineExceededError,
        multiprocessing_aggregate,
        pool_breaker_state,
    )

    if args.timeline:
        raise CliError(
            "--timeline needs the simulator (use --substrate sim)"
        )
    if args.save_run:
        raise CliError(
            "--save-run records simulator decisions (use --substrate sim)"
        )
    dist = _build_workload(args)
    query = _build_query(args)
    metrics = MetricsRegistry()
    faults_log: list = []
    start = _time.monotonic()
    deadline = None
    if args.timeout is not None:
        deadline = start + args.timeout
    try:
        rows = multiprocessing_aggregate(
            dist,
            query,
            processes=args.processes,
            strategy=args.strategy,
            faults=faults,
            faults_log=faults_log,
            speculate=args.speculate,
            metrics=metrics,
            deadline=deadline,
        )
    except DeadlineExceededError as exc:
        raise CliError(
            f"deadline missed: {exc}; raise --timeout (was "
            f"{args.timeout}s) or shrink the workload",
            exit_code=EXIT_DEADLINE_MISS,
        ) from exc
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    elapsed = _time.monotonic() - start

    def _metric(name: str) -> int:
        try:
            return int(metrics.value(name))
        except KeyError:
            return 0

    breaker = pool_breaker_state()
    print(
        f"mp[{args.strategy}]{'':<17} {elapsed:9.4f}s  "
        f"groups={len(rows):<7d} "
        f"retries={_metric('mp.retries'):<3d} "
        f"injected={len(faults_log):<3d} "
        f"speculated={_metric('mp.speculative.launched')}"
        f"/{_metric('mp.speculative.backup_wins')} won",
        file=out,
    )
    if breaker.degraded or breaker.rebuilds:
        print(
            f"breaker: rebuilds={breaker.rebuilds} "
            f"degraded={breaker.degraded}",
            file=out,
        )
    if args.verify:
        expected = {
            tuple(r[: len(query.group_by)]): r
            for r in reference_aggregate(dist, query)
        }
        got = {tuple(r[: len(query.group_by)]): r for r in rows}
        ok = expected.keys() == got.keys() and all(
            all(
                abs(a - b) <= 1e-9 + 1e-9 * abs(b)
                if isinstance(a, float)
                else a == b
                for a, b in zip(got[key], expected[key])
            )
            for key in expected
        )
        print(
            f"verified against reference: {'OK' if ok else 'MISMATCH'}",
            file=out,
        )
        if not ok:
            return 1
    if args.show_rows:
        for row in rows[: args.show_rows]:
            print("  ", row, file=out)
    return 0


def _cmd_run(args, out) -> int:
    faults = _parse_fault_plan(args.faults) if args.faults else None
    if args.substrate == "mp":
        return _cmd_run_mp(args, out, faults)
    if args.timeout is not None:
        raise CliError(
            "--timeout is the real executor's deadline; it needs "
            "--substrate mp (the simulator reports simulated seconds)"
        )
    dist = _build_workload(args)
    query = _build_query(args)
    ledger = None
    if args.save_run:
        from repro.obs.decisions import DecisionLedger

        ledger = DecisionLedger()
    outcome = _run_one(
        args.algorithm, dist, query, args, out,
        record_timeline=args.timeline,
        ledger=ledger,
        faults=faults,
    )
    if args.save_run:
        from repro.obs.decisions import run_artifact, write_run_json

        params = default_parameters(
            dist,
            network=_NETWORKS[args.network],
            hash_table_entries=args.table_entries,
        )
        doc = run_artifact(
            args.algorithm, outcome, ledger, params,
            workload=_workload_dict(args),
        )
        try:
            write_run_json(doc, args.save_run)
        except OSError as exc:
            raise CliError(
                f"cannot write run artifact to {args.save_run!r}: {exc}"
            ) from exc
        print(
            f"wrote {args.save_run} (inspect with `repro explain "
            f"{args.save_run}`)",
            file=out,
        )
    if args.timeline:
        print(outcome.render_timeline(), file=out)
    if args.verify:
        expected = reference_aggregate(dist, query)
        ok = len(outcome.rows) == len(expected)
        print(f"verified against reference: {'OK' if ok else 'MISMATCH'}",
              file=out)
        if not ok:
            return 1
    if args.show_rows:
        for row in outcome.rows[: args.show_rows]:
            print("  ", row, file=out)
    return 0


def _cmd_trace(args, out) -> int:
    from repro.obs import Tracer
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.schema import validate_chrome_trace
    from repro.obs.export import to_chrome_trace

    dist = _build_workload(args)
    query = _build_query(args)
    params = default_parameters(
        dist,
        network=_NETWORKS[args.network],
        hash_table_entries=args.table_entries,
    )
    tracer = Tracer(operator_spans=not args.no_operator_spans)
    outcome = run_algorithm(
        args.algorithm,
        dist,
        query,
        params=params,
        pipeline=args.pipeline,
        tracer=tracer,
    )
    doc = to_chrome_trace(tracer, process_name=f"repro:{args.algorithm}")
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - exporter bug guard
        for problem in problems:
            print(f"schema problem: {problem}", file=out)
        return 1
    try:
        write_chrome_trace(tracer, args.out, f"repro:{args.algorithm}")
    except OSError as exc:
        raise CliError(
            f"cannot write trace to {args.out!r}: {exc}; "
            "check the output directory exists and is writable"
        ) from exc
    print(f"wrote {args.out} (load in ui.perfetto.dev)", file=out)
    if args.jsonl:
        try:
            write_jsonl(tracer, args.jsonl)
        except OSError as exc:
            raise CliError(
                f"cannot write span log to {args.jsonl!r}: {exc}"
            ) from exc
        print(f"wrote {args.jsonl}", file=out)
    summary = tracer.summary()
    print(
        f"{args.algorithm}: {outcome.elapsed_seconds:.4f}s simulated, "
        f"{summary['spans']} spans, {summary['instants']} instants",
        file=out,
    )
    for phase_name, seconds in summary["phase_seconds"].items():
        print(f"  {phase_name:<24} {seconds:9.4f}s", file=out)
    return 0


def _load_run_file(path: str) -> dict:
    """Load a ``repro-run/1`` artifact or raise a one-line CliError."""
    from repro.obs.decisions import load_run_json

    try:
        return load_run_json(path)
    except FileNotFoundError:
        raise CliError(
            f"run file {path!r} not found; produce one with "
            f"`repro run --algorithm sampling --save-run {path}`"
        ) from None
    except IsADirectoryError:
        raise CliError(
            f"{path!r} is a directory, not a run artifact"
        ) from None
    except ValueError as exc:  # json decode errors and SchemaError
        raise CliError(
            f"run file {path!r} is not a valid repro-run/1 artifact: {exc}"
        ) from exc
    except OSError as exc:
        raise CliError(f"cannot read run file {path!r}: {exc}") from exc


def _cmd_explain(args, out) -> int:
    from repro.obs.decisions import (
        DecisionLedger,
        render_explain,
        run_artifact,
    )

    if args.run_file is not None:
        doc = _load_run_file(args.run_file)
        print(render_explain(doc), file=out)
        return 0
    if args.algorithm is None:
        raise CliError(
            "pass a saved run file or --algorithm to simulate one "
            "(e.g. `repro explain --algorithm sampling`)"
        )
    from repro.costmodel import MODEL_FUNCTIONS

    dist = _build_workload(args)
    query = _build_query(args)
    params = default_parameters(
        dist,
        network=_NETWORKS[args.network],
        hash_table_entries=args.table_entries,
    )
    ledger = DecisionLedger()
    tracer = None
    if args.drift:
        if args.algorithm not in MODEL_FUNCTIONS:
            raise CliError(
                f"no analytical cost model for {args.algorithm!r}; "
                f"--drift supports {sorted(MODEL_FUNCTIONS)}"
            )
        from repro.obs import Tracer

        tracer = Tracer(operator_spans=False)
    outcome = run_algorithm(
        args.algorithm,
        dist,
        query,
        params=params,
        pipeline=args.pipeline,
        tracer=tracer,
        ledger=ledger,
    )
    doc = run_artifact(
        args.algorithm, outcome, ledger, params,
        workload=_workload_dict(args),
    )
    drift_table = None
    if args.drift:
        from repro.obs.drift import compare_model_to_run, format_drift_table

        selectivity = max(outcome.num_groups, 1) / max(params.num_tuples, 1)
        report = compare_model_to_run(
            args.algorithm, params, selectivity, outcome.metrics,
            tracer=tracer,
        )
        drift_table = format_drift_table(report)
    print(render_explain(doc, drift_table=drift_table), file=out)
    if args.save_run:
        from repro.obs.decisions import write_run_json

        try:
            write_run_json(doc, args.save_run)
        except OSError as exc:
            raise CliError(
                f"cannot write run artifact to {args.save_run!r}: {exc}"
            ) from exc
        print(f"wrote {args.save_run}", file=out)
    return 0


def _cmd_bench_compare(args, out) -> int:
    from repro.bench.regression import (
        compare_to_baseline,
        format_delta_table,
        has_regression,
    )

    try:
        deltas, missing = compare_to_baseline(
            args.results_dir,
            args.baseline,
            threshold=args.threshold,
            wall_threshold=args.wall_threshold,
        )
    except FileNotFoundError as exc:
        raise CliError(
            f"baseline not found: {exc}; seed one with "
            "`repro bench baseline`"
        ) from exc
    except (ValueError, OSError) as exc:
        raise CliError(f"cannot compare benches: {exc}") from exc
    table = format_delta_table(
        deltas, missing, only_interesting=not args.all_rows
    )
    print(table, file=out)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(
                    format_delta_table(deltas, missing) + "\n"
                )
        except OSError as exc:
            raise CliError(
                f"cannot write delta table to {args.out!r}: {exc}"
            ) from exc
        print(f"wrote {args.out}", file=out)
    if args.record:
        import json as _json
        import os as _os

        from repro.bench.regression import (
            append_trajectory,
            trajectory_entry,
        )

        index_names = sorted(
            set(d.bench for d in deltas)
        )
        docs = {}
        for name in index_names:
            path = _os.path.join(args.results_dir, f"BENCH_{name}.json")
            with open(path) as handle:
                docs[name] = _json.load(handle)
        if docs:
            append_trajectory(
                args.baseline, trajectory_entry(args.label, docs)
            )
            print(
                f"appended trajectory entry {args.label!r}", file=out
            )
    if missing:
        print(
            "FAIL: missing bench artifact(s): " + ", ".join(missing),
            file=out,
        )
        return 1
    if has_regression(deltas):
        print("FAIL: regression beyond threshold", file=out)
        return 1
    print("bench gate: no regression beyond threshold", file=out)
    return 0


def _cmd_bench_baseline(args, out) -> int:
    from repro.bench.regression import seed_baseline

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    if not names:
        raise CliError("--names must list at least one bench")
    try:
        seed_baseline(
            args.results_dir,
            args.baseline,
            names,
            threshold=args.threshold,
            label=args.label,
        )
    except FileNotFoundError as exc:
        raise CliError(
            f"bench artifact not found: {exc}; run the benchmarks first "
            "(pytest benchmarks/ emits results/BENCH_<name>.json)"
        ) from exc
    except (ValueError, OSError) as exc:
        raise CliError(f"cannot seed baseline: {exc}") from exc
    print(
        f"seeded {args.baseline} from {len(names)} bench artifact(s): "
        + ", ".join(names),
        file=out,
    )
    return 0


def _cmd_compare(args, out) -> int:
    dist = _build_workload(args)
    query = _build_query(args)
    print(
        f"{len(dist)} tuples, {args.groups} groups, {dist.num_nodes} "
        f"nodes, {args.network} network",
        file=out,
    )
    for name in sorted(ALGORITHMS):
        _run_one(name, dist, query, args, out)
    return 0


def _cmd_figure(args, out) -> int:
    names = sorted(FIGURES) if args.name == "all" else [args.name]
    for name in names:
        result = FIGURES[name]()
        print(format_table(result), file=out)
        if args.plot and name != "table1":
            from repro.bench.plotting import render_chart

            print(render_chart(result, log_y=args.log_y), file=out)
        if args.results_dir:
            path = write_results(result, args.results_dir)
            print(f"wrote {path}", file=out)
    return 0


def _cmd_params(args, out) -> int:
    params = (
        SystemParameters.implementation()
        if args.preset == "implementation"
        else SystemParameters.paper_default()
    )
    for field_name, value in vars(params).items():
        print(f"{field_name:<22} {value}", file=out)
    for derived in ("t_r", "t_w", "t_h", "t_a", "t_d", "m_p", "m_l"):
        print(f"{derived:<22} {getattr(params, derived):.3e} s", file=out)
    return 0


def _cmd_plan(args, out) -> int:
    params = SystemParameters.paper_default().with_(num_nodes=args.nodes)
    choice = choose_plan(
        params,
        estimated_groups=args.groups_estimate,
        expect_duplicate_elimination=args.duplicate_elimination,
    )
    print(f"algorithm: {choice.algorithm}", file=out)
    print(f"rationale: {choice.rationale}", file=out)
    if choice.estimated_seconds is not None:
        print(f"estimated: {choice.estimated_seconds:.2f} s", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive parallel aggregation (SIGMOD 1995) "
        "reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="run one algorithm (simulated or real processes)"
    )
    p_run.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS),
        default="adaptive_two_phase",
        help="simulator algorithm (ignored by --substrate mp, which "
        "always runs the real two-phase pool executor)",
    )
    _add_workload_args(p_run)
    p_run.add_argument(
        "--substrate", choices=("sim", "mp"), default="sim",
        help="sim = event simulator; mp = real multiprocessing executor",
    )
    p_run.add_argument(
        "--strategy",
        choices=("pool", "spawn", "global", "rep", "auto"),
        default="pool",
        help="mp substrate dispatch strategy: pool/spawn = partitioned "
        "2P, global = shared global hash table with packed merges, "
        "rep = two-round repartitioning, auto = cost-model choice",
    )
    p_run.add_argument(
        "--processes", type=int, default=0,
        help="mp substrate worker count (0 = one per fragment, capped "
        "at the CPU count)",
    )
    p_run.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="seedable fault plan for either substrate: "
        "seed=S,kill=N[@TUPLES],slow=NxFACTOR,stall=NxSECONDS,"
        "loss=P,dup=P,error-rate=P",
    )
    p_run.add_argument(
        "--speculate", action="store_true",
        help="mp substrate: re-execute straggling fragments speculatively",
    )
    p_run.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="mp substrate: wall-clock deadline for the whole run; a "
        f"miss cancels in-flight work and exits {EXIT_DEADLINE_MISS}",
    )
    p_run.add_argument("--verify", action="store_true")
    p_run.add_argument("--show-rows", type=int, default=0)
    p_run.add_argument(
        "--timeline", action="store_true",
        help="print a per-node activity Gantt chart",
    )
    p_run.add_argument(
        "--save-run", default=None, metavar="PATH",
        help="record the decision ledger and write a repro-run/1 "
        "artifact for `repro explain`",
    )
    p_run.set_defaults(func=_cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="simulate one algorithm with tracing; write Chrome trace JSON",
    )
    p_trace.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), required=True
    )
    _add_workload_args(p_trace)
    p_trace.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event JSON output path (default trace.json)",
    )
    p_trace.add_argument(
        "--jsonl", default=None,
        help="also write a flat JSONL span log to this path",
    )
    p_trace.add_argument(
        "--no-operator-spans", action="store_true",
        help="record only query/node/phase spans (smaller traces)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="render a run's adaptive decisions judged against truth",
    )
    p_explain.add_argument(
        "run_file", nargs="?", default=None,
        help="a saved repro-run/1 artifact (from --save-run); omit to "
        "simulate a fresh run instead",
    )
    p_explain.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default=None,
        help="simulate this algorithm and explain it (no run file)",
    )
    _add_workload_args(p_explain)
    p_explain.add_argument(
        "--drift", action="store_true",
        help="append the predicted-vs-observed cost-model drift table",
    )
    p_explain.add_argument(
        "--save-run", default=None, metavar="PATH",
        help="also write the run artifact to PATH",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_bench = sub.add_parser(
        "bench", help="bench baseline / regression-gate commands"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bcmp = bench_sub.add_parser(
        "compare",
        help="compare results/BENCH_*.json against the committed baseline",
    )
    p_bcmp.add_argument("--results-dir", default="results")
    p_bcmp.add_argument("--baseline", default="results/baseline")
    p_bcmp.add_argument(
        "--threshold", type=float, default=None,
        help="relative figure-cell increase that fails the gate "
        "(default: the baseline index's threshold)",
    )
    p_bcmp.add_argument(
        "--wall-threshold", type=float, default=None,
        help="also gate wall_seconds_total at this relative increase "
        "(off by default: CI wall clocks are noisy)",
    )
    p_bcmp.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full delta table to PATH (CI artifact)",
    )
    p_bcmp.add_argument(
        "--all-rows", action="store_true",
        help="print every compared cell, not just regressions/improvements",
    )
    p_bcmp.add_argument(
        "--record", action="store_true",
        help="append a trajectory entry for this comparison",
    )
    p_bcmp.add_argument("--label", default="compare")
    p_bcmp.set_defaults(func=_cmd_bench_compare)
    p_bbase = bench_sub.add_parser(
        "baseline",
        help="seed results/baseline/ from current BENCH artifacts",
    )
    p_bbase.add_argument("--results-dir", default="results")
    p_bbase.add_argument("--baseline", default="results/baseline")
    p_bbase.add_argument(
        "--names", default="fig2,table1",
        help="comma-separated bench names (BENCH_<name>.json)",
    )
    p_bbase.add_argument("--threshold", type=float, default=0.10)
    p_bbase.add_argument("--label", default="seed")
    p_bbase.set_defaults(func=_cmd_bench_baseline)

    p_cmp = sub.add_parser("compare", help="simulate every algorithm")
    _add_workload_args(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument(
        "--name", choices=[*sorted(FIGURES), "all"], required=True
    )
    p_fig.add_argument("--results-dir", default=None)
    p_fig.add_argument("--plot", action="store_true",
                       help="render an ASCII chart under the table")
    p_fig.add_argument("--log-y", action="store_true")
    p_fig.set_defaults(func=_cmd_figure)

    p_par = sub.add_parser("params", help="print a parameter preset")
    p_par.add_argument(
        "--preset",
        choices=["paper", "implementation"],
        default="paper",
    )
    p_par.set_defaults(func=_cmd_params)

    p_plan = sub.add_parser("plan", help="ask the optimizer for a plan")
    p_plan.add_argument("--nodes", type=int, default=32)
    p_plan.add_argument("--groups-estimate", type=int, default=None)
    p_plan.add_argument(
        "--duplicate-elimination", action="store_true"
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_scale = sub.add_parser(
        "scale", help="simulator scaleup/speedup study"
    )
    p_scale.add_argument(
        "--mode", choices=["scaleup", "speedup"], default="scaleup"
    )
    p_scale.add_argument("--selectivity", type=float, default=0.25)
    p_scale.add_argument("--tuples-per-node", type=int, default=5_000)
    p_scale.add_argument("--tuples", type=int, default=40_000)
    p_scale.add_argument("--groups", type=int, default=10_000)
    p_scale.add_argument("--seed", type=int, default=0)
    p_scale.set_defaults(func=_cmd_scale)

    p_sql = sub.add_parser(
        "sql", help="run a SQL aggregate query on a generated workload"
    )
    p_sql.add_argument("query", help='e.g. "SELECT gkey, SUM(val) '
                       'FROM r GROUP BY gkey"')
    p_sql.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS),
        default="adaptive_two_phase",
    )
    p_sql.add_argument("--data-dir", default=None,
                       help="load a saved DistributedRelation instead "
                       "of generating one")
    _add_workload_args(p_sql)
    p_sql.add_argument("--show-rows", type=int, default=10)
    p_sql.add_argument(
        "--substrate", choices=("sim", "mp"), default="sim",
        help="sim = event simulator; mp = real multiprocessing executor",
    )
    p_sql.add_argument(
        "--processes", type=int, default=0,
        help="mp substrate worker count (0 = one per fragment, capped "
        "at the CPU count)",
    )
    p_sql.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="mp substrate: wall-clock deadline; a miss cancels "
        f"in-flight work and exits {EXIT_DEADLINE_MISS}",
    )
    p_sql.set_defaults(func=_cmd_sql)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived HTTP/JSON query service over the worker pool",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="0 = let the OS pick (printed at startup)")
    p_serve.add_argument(
        "--table", default="r",
        help="name queries use in FROM for the served workload",
    )
    p_serve.add_argument("--data-dir", default=None,
                         help="serve a saved DistributedRelation instead "
                         "of generating one")
    _add_workload_args(p_serve)
    p_serve.add_argument("--max-concurrency", type=int, default=4)
    p_serve.add_argument("--queue-depth", type=int, default=16)
    p_serve.add_argument(
        "--memory-pool-mb", type=int, default=64,
        help="service-wide budget pool queries lease slices from",
    )
    p_serve.add_argument(
        "--default-timeout", type=float, default=10.0, metavar="SECONDS",
        help="per-query deadline when the request does not set one",
    )
    p_serve.add_argument(
        "--processes", type=int, default=2,
        help="pool workers per admitted query at full parallelism",
    )
    p_serve.add_argument(
        "--strategy", default="pool",
        choices=("pool", "spawn", "global", "rep", "auto"),
        help="execution strategy for every admitted query",
    )
    p_serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject this fault plan into every query's pool run "
        "(chaos testing; same grammar as `repro run --faults`)",
    )
    p_serve.add_argument(
        "--query-log", default=None, metavar="PATH",
        help="append one repro-qlog/1 JSONL record per query outcome",
    )
    p_serve.add_argument(
        "--slow-trace-threshold", type=float, default=1.0,
        metavar="SECONDS",
        help="flight-recorder trace capture threshold; 0 traces every "
        "query (GET /debug/trace/<id>)",
    )
    p_serve.add_argument(
        "--no-live-observability", action="store_true",
        help="disable the query log, flight recorder, and latency "
        "histograms (PR-7-identical serving path)",
    )
    p_serve.add_argument(
        "--access-log", action="store_true",
        help="log every HTTP request to stderr (off by default)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="live one-screen view of a running `repro serve` instance",
    )
    p_top.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="base URL of the service (default %(default)s)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between refreshes",
    )
    p_top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="frames to render before exiting (0 = until interrupted)",
    )
    p_top.add_argument(
        "--slow", type=int, default=5, metavar="N",
        help="slowest recent queries shown",
    )
    p_top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    p_top.set_defaults(func=_cmd_top)
    return parser


def _cmd_sql(args, out) -> int:
    from repro.sql import run_sql
    from repro.storage.io import load_distributed

    if args.data_dir:
        dist = load_distributed(args.data_dir)
    else:
        dist = _build_workload(args)
    if args.substrate == "mp":
        return _cmd_sql_mp(args, out, dist, run_sql)
    if args.timeout is not None:
        raise CliError(
            "--timeout is the real executor's deadline; it needs "
            "--substrate mp (the simulator reports simulated seconds)"
        )
    params = default_parameters(
        dist,
        network=_NETWORKS[args.network],
        hash_table_entries=args.table_entries,
    )
    outcome = run_sql(
        args.query, dist, algorithm=args.algorithm, params=params
    )
    print(
        f"{outcome.algorithm}: {outcome.num_groups} groups in "
        f"{outcome.elapsed_seconds:.4f}s simulated",
        file=out,
    )
    for row in outcome.rows[: args.show_rows]:
        print("  ", row, file=out)
    if outcome.num_groups > args.show_rows:
        print(f"   ... {outcome.num_groups - args.show_rows} more rows",
              file=out)
    return 0


def _cmd_sql_mp(args, out, dist, run_sql) -> int:
    """``repro sql --substrate mp``: real pool, optional deadline."""
    import time as _time

    from repro.parallel import DeadlineExceededError
    from repro.sql.parser import ParseError

    start = _time.monotonic()
    deadline = None
    if args.timeout is not None:
        deadline = start + args.timeout
    try:
        rows = run_sql(
            args.query, dist,
            substrate="mp",
            processes=args.processes,
            deadline=deadline,
        )
    except DeadlineExceededError as exc:
        raise CliError(
            f"deadline missed: {exc}; raise --timeout (was "
            f"{args.timeout}s) or shrink the workload",
            exit_code=EXIT_DEADLINE_MISS,
        ) from exc
    except ParseError as exc:
        raise CliError(f"bad SQL: {exc}") from exc
    except ValueError as exc:
        raise CliError(str(exc)) from exc
    elapsed = _time.monotonic() - start
    print(
        f"mp: {len(rows)} groups in {elapsed:.4f}s wall",
        file=out,
    )
    for row in rows[: args.show_rows]:
        print("  ", row, file=out)
    if len(rows) > args.show_rows:
        print(f"   ... {len(rows) - args.show_rows} more rows", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    """``repro serve``: boot the HTTP query service until SIGTERM."""
    from repro.service import QueryService, ServiceConfig
    from repro.service.http import create_server, serve
    from repro.storage.io import load_distributed

    faults = _parse_fault_plan(args.faults) if args.faults else None
    if args.data_dir:
        dist = load_distributed(args.data_dir)
    else:
        dist = _build_workload(args)
    try:
        config = ServiceConfig(
            max_concurrency=args.max_concurrency,
            queue_depth=args.queue_depth,
            memory_pool_bytes=args.memory_pool_mb * 1024 * 1024,
            default_timeout_seconds=args.default_timeout,
            processes=args.processes,
            strategy=args.strategy,
            faults=faults,
            live_observability=not args.no_live_observability,
            query_log_path=args.query_log,
            slow_trace_threshold_seconds=args.slow_trace_threshold,
            access_log=args.access_log,
        )
    except ValueError as exc:
        raise CliError(f"bad service configuration: {exc}") from exc
    service = QueryService(config)
    service.register_table(args.table, dist)
    try:
        server = create_server(service, args.host, args.port)
    except OSError as exc:
        raise CliError(
            f"cannot bind {args.host}:{args.port}: {exc}; "
            "pick another --port (0 = OS-assigned)"
        ) from exc
    print(
        f"serving table {args.table!r} ({len(dist)} tuples, "
        f"{dist.num_nodes} fragments) on "
        f"http://{args.host}:{server.server_port} — POST /query, "
        "GET /healthz, GET /metrics[?format=prom], GET /debug/queries, "
        "GET /debug/trace/<id>; SIGTERM drains",
        file=out,
        flush=True,
    )
    serve(service, server=server)
    print("drained clean; worker pool shut down", file=out)
    return 0


def _top_fetch(url: str, timeout: float = 2.0):
    import json as json_mod
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json_mod.loads(resp.read())
    except urllib.error.HTTPError as exc:
        # A draining /healthz answers 503 with a valid JSON body —
        # still worth rendering.
        try:
            return json_mod.loads(exc.read())
        except ValueError:
            raise CliError(
                f"{url} answered HTTP {exc.code} without JSON"
            ) from exc
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise CliError(
            f"cannot reach {url}: {exc} — is `repro serve` running there?"
        ) from exc


def _top_frame(base: str, slow_rows: int, previous: dict) -> str:
    """One rendered frame of ``repro top`` (pure text, no cursor moves)."""
    from repro.obs.metrics import quantile_from_buckets

    health = _top_fetch(f"{base}/healthz")
    snapshot = _top_fetch(f"{base}/metrics")
    try:
        debug = _top_fetch(f"{base}/debug/queries")
    except CliError:
        debug = None
    if debug is not None and "queries" not in debug:
        debug = None  # live observability disabled server-side (404 body)

    def counter(name):
        entry = snapshot.get(name) or {}
        return entry.get("value") or 0

    def gauge(name, default=0.0):
        entry = snapshot.get(name) or {}
        value = entry.get("value")
        return default if value is None else value

    uptime = gauge("svc.uptime_seconds")
    admitted = counter("svc.admitted")
    prev_uptime = previous.get("uptime", 0.0)
    prev_admitted = previous.get("admitted", 0)
    dt = uptime - prev_uptime
    if previous and dt > 0:
        qps = max(0, admitted - prev_admitted) / dt
    elif uptime > 0:
        qps = admitted / uptime  # first frame: lifetime average
    else:
        qps = 0.0
    previous["uptime"], previous["admitted"] = uptime, admitted

    lines = []
    lines.append(
        f"repro top — {base}  status={health.get('status', '?')}  "
        f"uptime={uptime:8.1f}s"
    )
    lines.append(
        f"load {health.get('load', 0):.2f}  "
        f"running {health.get('running', 0)}  "
        f"queued {health.get('queued', 0)}  "
        f"rung {health.get('ladder_rung', '?')}  "
        f"breaker {health.get('breaker', '?')}"
    )
    latency = snapshot.get("svc.latency_seconds")
    if isinstance(latency, dict) and latency.get("type") == "histogram":
        quantiles = {
            q: quantile_from_buckets(
                latency["buckets"], latency["counts"], q,
                overflow_value=latency["max"],
            )
            for q in (0.5, 0.95, 0.99)
        }
        lines.append(
            f"qps {qps:7.1f}   latency p50 {quantiles[0.5] * 1000:7.1f}ms"
            f"  p95 {quantiles[0.95] * 1000:7.1f}ms"
            f"  p99 {quantiles[0.99] * 1000:7.1f}ms"
        )
    else:
        lines.append(
            f"qps {qps:7.1f}   latency histogram not yet populated"
        )
    lines.append(
        f"admitted {admitted}  shed {counter('svc.shed')}  "
        f"failed {counter('svc.failed')}  "
        f"deadline_miss {counter('svc.deadline_misses')}  "
        f"retries {counter('svc.retries')}  "
        f"cache {counter('svc.cache.hits')}/"
        f"{counter('svc.cache.hits') + counter('svc.cache.misses')}  "
        f"qlog_dropped {counter('svc.qlog.dropped')}"
    )
    records = (debug or {}).get("queries") or []
    if records and slow_rows > 0:
        slow = sorted(
            records,
            key=lambda r: r.get("elapsed_seconds", 0.0),
            reverse=True,
        )[:slow_rows]
        lines.append("")
        lines.append(
            f"{'QID':>6} {'FINGERPRINT':12} {'OUTCOME':13} "
            f"{'RUNG':14} {'WAIT_MS':>8} {'ELAPSED_MS':>10} CACHE"
        )
        for r in slow:
            lines.append(
                f"{r.get('query_id', '?'):>6} "
                f"{str(r.get('sql_fingerprint', '?')):12} "
                f"{str(r.get('outcome', '?')):13} "
                f"{str(r.get('rung', '?')):14} "
                f"{r.get('queue_wait_seconds', 0.0) * 1000:8.1f} "
                f"{r.get('elapsed_seconds', 0.0) * 1000:10.1f} "
                f"{'yes' if r.get('cache_hit') else 'no'}"
            )
    elif debug is None:
        lines.append("(no /debug/queries — live observability disabled)")
    return "\n".join(lines)


def _cmd_top(args, out) -> int:
    """``repro top``: poll /metrics + /debug/queries, render a screen."""
    import time

    base = args.url.rstrip("/")
    previous: dict = {}
    frame_index = 0
    try:
        while True:
            frame = _top_frame(base, args.slow, previous)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="", file=out)
            print(frame, file=out, flush=True)
            frame_index += 1
            if args.iterations and frame_index >= args.iterations:
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0


def _cmd_scale(args, out) -> int:
    from repro.bench import scaling

    if args.mode == "scaleup":
        result = scaling.sim_scaleup(
            tuples_per_node=args.tuples_per_node,
            selectivity=args.selectivity,
            seed=args.seed,
        )
    else:
        result = scaling.sim_speedup(
            num_tuples=args.tuples,
            num_groups=args.groups,
            seed=args.seed,
        )
    print(format_table(result), file=out)
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.func(args, out)
    except CliError as exc:
        print(f"error: {exc}", file=out)
        return exc.exit_code
    except BrokenPipeError:
        # Piping into `head` and friends closes our stdout early; that
        # is the consumer's prerogative, not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
