"""Execute parsed SQL against a relation or a simulated cluster."""

from __future__ import annotations

from repro.core.runner import AlgorithmOutcome, run_algorithm
from repro.engine.planner import run_query
from repro.parallel.mp_executor import multiprocessing_aggregate
from repro.sql.parser import parse_query
from repro.storage.relation import DistributedRelation, Relation


def run_sql(
    sql: str,
    data,
    algorithm: str = "adaptive_two_phase",
    substrate: str = "sim",
    **run_kwargs,
):
    """Parse and execute ``sql`` over ``data``.

    * ``data`` a :class:`Relation` → the local operator engine executes
      the plan; returns a Relation.
    * ``data`` a :class:`DistributedRelation`, ``substrate="sim"`` → the
      named algorithm runs on the simulated cluster (``run_kwargs``
      forwarded to ``run_algorithm``); returns the
      :class:`AlgorithmOutcome`.
    * ``data`` a :class:`DistributedRelation`, ``substrate="mp"`` → the
      real multiprocessing executor runs the query over the persistent
      worker pool (``run_kwargs`` forwarded to
      :func:`~repro.parallel.multiprocessing_aggregate` — notably
      ``processes=``, ``deadline=``, ``memory_budget_bytes=``,
      ``faults=``); returns the sorted result rows.

    The FROM name is informational (there is one input); it is validated
    only for non-emptiness by the parser.
    """
    if substrate not in ("sim", "mp"):
        raise ValueError(f"unknown substrate {substrate!r}; use 'sim' or 'mp'")
    _table, query = parse_query(sql)
    if isinstance(data, DistributedRelation):
        if substrate == "mp":
            return multiprocessing_aggregate(data, query, **run_kwargs)
        outcome: AlgorithmOutcome = run_algorithm(
            algorithm, data, query, **run_kwargs
        )
        return outcome
    if isinstance(data, Relation):
        if substrate == "mp":
            raise ValueError(
                "substrate='mp' needs a DistributedRelation (fragments to "
                "ship to pool workers); got a plain Relation"
            )
        return run_query(data, query)
    raise TypeError(
        "expected Relation or DistributedRelation, got "
        f"{type(data).__name__}"
    )
