"""Execute parsed SQL against a relation or a simulated cluster."""

from __future__ import annotations

from repro.core.runner import AlgorithmOutcome, run_algorithm
from repro.engine.planner import run_query
from repro.sql.parser import parse_query
from repro.storage.relation import DistributedRelation, Relation


def run_sql(
    sql: str,
    data,
    algorithm: str = "adaptive_two_phase",
    **run_kwargs,
):
    """Parse and execute ``sql`` over ``data``.

    * ``data`` a :class:`Relation` → the local operator engine executes
      the plan; returns a Relation.
    * ``data`` a :class:`DistributedRelation` → the named algorithm runs
      on the simulated cluster (``run_kwargs`` forwarded to
      ``run_algorithm``); returns the :class:`AlgorithmOutcome`.

    The FROM name is informational (there is one input); it is validated
    only for non-emptiness by the parser.
    """
    _table, query = parse_query(sql)
    if isinstance(data, DistributedRelation):
        outcome: AlgorithmOutcome = run_algorithm(
            algorithm, data, query, **run_kwargs
        )
        return outcome
    if isinstance(data, Relation):
        return run_query(data, query)
    raise TypeError(
        "expected Relation or DistributedRelation, got "
        f"{type(data).__name__}"
    )
