"""Tokenizer for the aggregate-query SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "NOT",
        "DISTINCT",
        "IN",
        "BETWEEN",
    }
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*")


@dataclass(frozen=True)
class Token:
    kind: str       # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | END
    value: str
    position: int


class LexError(ValueError):
    """Bad character or unterminated literal in the query text."""


def tokenize(text: str) -> list[Token]:
    """Split the query text into tokens (END-terminated)."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise LexError(f"unterminated string at position {i}")
            tokens.append(Token("STRING", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch in "+-" and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i + 1
            seen_dot = False
            while j < n and (
                text[j].isdigit()
                or (text[j] == "." and not seen_dot)
                or text[j] in "eE"
                or (text[j] in "+-" and text[j - 1] in "eE")
            ):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("SYMBOL", symbol, i))
                i += len(symbol)
                break
        else:
            raise LexError(
                f"unexpected character {ch!r} at position {i}"
            )
    tokens.append(Token("END", "", n))
    return tokens
