"""Recursive-descent parser: SQL text → (table name, AggregateQuery).

The grammar is the paper's canonical query (Section 2)::

    SELECT [DISTINCT] item {, item}
    FROM table
    [WHERE predicate] [GROUP BY col {, col}] [HAVING predicate]

    item      := aggregate | column
    aggregate := FUNC '(' '*' | [DISTINCT] column ')' [AS alias]
    predicate := comparisons combined with AND / OR / NOT / parentheses

Predicates compile to Python closures: the WHERE closure sees the input
row as a column-name dict, the HAVING closure the result row as an
output-name dict (aggregate references like ``SUM(val)`` are resolved
against the SELECT list, alias or not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.sql.lexer import Token, tokenize

_FUNCTIONS = {
    "COUNT": "count",
    "SUM": "sum",
    "AVG": "avg",
    "MIN": "min",
    "MAX": "max",
    "VAR": "var",
    "VARIANCE": "var",
    "STDDEV": "stddev",
}

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ParseError(ValueError):
    """The query text does not match the supported grammar."""


# --- predicate AST ----------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    name: str

    def eval(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise ParseError(
                f"unknown column {self.name!r} in predicate; "
                f"available: {sorted(env)}"
            ) from None


@dataclass(frozen=True)
class Literal:
    value: object

    def eval(self, env):
        return self.value


@dataclass(frozen=True)
class Comparison:
    op: str
    left: object
    right: object

    def eval(self, env) -> bool:
        return _OPS[self.op](self.left.eval(env), self.right.eval(env))


@dataclass(frozen=True)
class BoolOp:
    op: str  # "and" | "or"
    left: object
    right: object

    def eval(self, env) -> bool:
        if self.op == "and":
            return self.left.eval(env) and self.right.eval(env)
        return self.left.eval(env) or self.right.eval(env)


@dataclass(frozen=True)
class NotOp:
    child: object

    def eval(self, env) -> bool:
        return not self.child.eval(env)


@dataclass(frozen=True)
class InList:
    operand: object
    values: tuple

    def eval(self, env) -> bool:
        return self.operand.eval(env) in self.values


@dataclass(frozen=True)
class Between:
    operand: object
    low: object
    high: object

    def eval(self, env) -> bool:
        value = self.operand.eval(env)
        return self.low.eval(env) <= value <= self.high.eval(env)


@dataclass(frozen=True)
class CompiledPredicate:
    """A picklable callable over a predicate AST.

    Parsed queries cross the process boundary when they run on the
    multiprocessing substrate (``run_sql(..., substrate="mp")`` ships
    the query to pool workers); a closure would not survive pickling,
    but the AST nodes are plain frozen dataclasses, so a callable
    wrapper holding the root node does.
    """

    node: object

    def __call__(self, env) -> bool:
        return bool(self.node.eval(env))


def _compile(node):
    return CompiledPredicate(node)


# --- the parser -------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing --

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind != kind:
            return None
        if value is not None and token.value != value:
            return None
        return self.next()

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            wanted = value or kind
            raise ParseError(
                f"expected {wanted} at position {got.position}, "
                f"got {got.value or got.kind!r}"
            )
        return token

    # -- grammar --

    def parse(self) -> tuple[str, AggregateQuery]:
        self.expect("KEYWORD", "SELECT")
        distinct = self.accept("KEYWORD", "DISTINCT") is not None
        items = self._select_list()
        self.expect("KEYWORD", "FROM")
        table = self.expect("IDENT").value
        where_ast = None
        if self.accept("KEYWORD", "WHERE"):
            where_ast = self._expr()
        group_by: list[str] = []
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = self._ident_list()
        having_ast = None
        if self.accept("KEYWORD", "HAVING"):
            having_ast = self._expr(in_having=True, items=items)
        self.expect("END")
        return table, self._build_query(
            items, distinct, group_by, where_ast, having_ast
        )

    def _select_list(self):
        items = [self._select_item()]
        while self.accept("SYMBOL", ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        token = self.peek()
        if (
            token.kind == "IDENT"
            and token.value.upper() in _FUNCTIONS
            and self.tokens[self.pos + 1].kind == "SYMBOL"
            and self.tokens[self.pos + 1].value == "("
        ):
            spec = self._aggregate_call()
            alias = None
            if self.accept("KEYWORD", "AS"):
                alias = self.expect("IDENT").value
            if alias is not None:
                spec = AggregateSpec(spec.func, spec.column, alias)
            return ("agg", spec)
        column = self.expect("IDENT").value
        return ("col", column)

    def _aggregate_call(self) -> AggregateSpec:
        name = self.expect("IDENT").value.upper()
        func = _FUNCTIONS[name]
        self.expect("SYMBOL", "(")
        if self.accept("SYMBOL", "*"):
            if func != "count":
                raise ParseError(f"{name}(*) is only valid for COUNT")
            self.expect("SYMBOL", ")")
            return AggregateSpec("count", None)
        if self.accept("KEYWORD", "DISTINCT"):
            if func != "count":
                raise ParseError(
                    "DISTINCT inside an aggregate is only supported "
                    "for COUNT"
                )
            column = self.expect("IDENT").value
            self.expect("SYMBOL", ")")
            return AggregateSpec("count_distinct", column)
        column = self.expect("IDENT").value
        self.expect("SYMBOL", ")")
        return AggregateSpec(func, column)

    def _ident_list(self) -> list[str]:
        names = [self.expect("IDENT").value]
        while self.accept("SYMBOL", ","):
            names.append(self.expect("IDENT").value)
        return names

    # -- predicates --

    def _expr(self, in_having: bool = False, items=None):
        node = self._and_expr(in_having, items)
        while self.accept("KEYWORD", "OR"):
            node = BoolOp("or", node, self._and_expr(in_having, items))
        return node

    def _and_expr(self, in_having, items):
        node = self._not_expr(in_having, items)
        while self.accept("KEYWORD", "AND"):
            node = BoolOp("and", node, self._not_expr(in_having, items))
        return node

    def _not_expr(self, in_having, items):
        if self.accept("KEYWORD", "NOT"):
            return NotOp(self._not_expr(in_having, items))
        if self.accept("SYMBOL", "("):
            node = self._expr(in_having, items)
            self.expect("SYMBOL", ")")
            return node
        return self._comparison(in_having, items)

    def _comparison(self, in_having, items):
        left = self._operand(in_having, items)
        if self.accept("KEYWORD", "IN"):
            return self._in_list(left, in_having, items)
        if self.accept("KEYWORD", "BETWEEN"):
            low = self._operand(in_having, items)
            self.expect("KEYWORD", "AND")
            high = self._operand(in_having, items)
            return Between(left, low, high)
        op = self.expect("SYMBOL")
        if op.value not in _OPS:
            raise ParseError(
                f"expected a comparison operator at position "
                f"{op.position}, got {op.value!r}"
            )
        right = self._operand(in_having, items)
        return Comparison(op.value, left, right)

    def _in_list(self, left, in_having, items):
        self.expect("SYMBOL", "(")
        values = []
        while True:
            operand = self._operand(in_having, items)
            if not isinstance(operand, Literal):
                raise ParseError("IN lists may only contain literals")
            values.append(operand.value)
            if not self.accept("SYMBOL", ","):
                break
        self.expect("SYMBOL", ")")
        return InList(left, tuple(values))

    def _operand(self, in_having, items):
        token = self.peek()
        if token.kind == "NUMBER":
            self.next()
            text = token.value
            value = float(text) if any(c in text for c in ".eE") else int(
                text
            )
            return Literal(value)
        if token.kind == "STRING":
            self.next()
            return Literal(token.value)
        if token.kind == "IDENT":
            if (
                in_having
                and token.value.upper() in _FUNCTIONS
                and self.tokens[self.pos + 1].kind == "SYMBOL"
                and self.tokens[self.pos + 1].value == "("
            ):
                spec = self._aggregate_call()
                return ColumnRef(self._resolve_output(spec, items))
            self.next()
            return ColumnRef(token.value)
        raise ParseError(
            f"expected a value or column at position {token.position}, "
            f"got {token.value or token.kind!r}"
        )

    @staticmethod
    def _resolve_output(spec: AggregateSpec, items) -> str:
        """Match a HAVING aggregate reference to a SELECT-list entry."""
        for kind, item in items or ():
            if kind != "agg":
                continue
            if item.func == spec.func and item.column == spec.column:
                return item.output_name
        raise ParseError(
            f"HAVING references {spec.output_name}, which is not in "
            "the SELECT list"
        )

    # -- assembly --

    @staticmethod
    def _build_query(items, distinct, group_by, where_ast, having_ast):
        columns = [item for kind, item in items if kind == "col"]
        specs = [item for kind, item in items if kind == "agg"]
        if distinct:
            if specs:
                raise ParseError(
                    "SELECT DISTINCT with aggregates is not supported"
                )
            if group_by and group_by != columns:
                raise ParseError(
                    "SELECT DISTINCT columns must match GROUP BY"
                )
            group_by = columns
            specs = [AggregateSpec("count", None, alias="_dup_count")]
        if not specs:
            raise ParseError(
                "the SELECT list needs at least one aggregate "
                "(or use SELECT DISTINCT)"
            )
        if not group_by and columns:
            raise ParseError(
                f"non-aggregated columns {columns} require GROUP BY"
            )
        if group_by and set(columns) - set(group_by):
            extra = sorted(set(columns) - set(group_by))
            raise ParseError(
                f"selected columns {extra} are not in GROUP BY"
            )
        return AggregateQuery(
            group_by=group_by,
            aggregates=specs,
            where=_compile(where_ast) if where_ast is not None else None,
            having=(
                _compile(having_ast) if having_ast is not None else None
            ),
        )


def parse_query(sql: str) -> tuple[str, AggregateQuery]:
    """Parse ``sql``; returns (table name, AggregateQuery)."""
    return _Parser(sql).parse()
