"""A SQL front-end for the paper's canonical query shape.

Supports exactly the grammar Section 2 studies::

    SELECT <group-by columns and aggregates>
    FROM <relation>
    [WHERE <predicate>]
    [GROUP BY <columns>]
    [HAVING <predicate>]

``parse_query`` turns the text into an :class:`AggregateQuery` (plus the
FROM name); predicates compile to plain Python closures over the row /
result-row dictionaries, so the output plugs straight into
``run_algorithm``, the local operator engine, and the executors.
"""

from repro.sql.parser import ParseError, parse_query
from repro.sql.runner import run_sql

__all__ = ["ParseError", "parse_query", "run_sql"]
