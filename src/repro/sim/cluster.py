"""Cluster assembly: programs in, results + metrics out."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.params import SystemParameters
from repro.resources.governor import MemoryGovernor
from repro.sim.engine import Engine
from repro.sim.events import TraceEvent
from repro.sim.metrics import ClusterMetrics
from repro.sim.network import make_network
from repro.sim.node import NodeContext


@dataclass
class RunResult:
    """The outcome of one simulated run."""

    elapsed_seconds: float
    node_results: list
    metrics: ClusterMetrics
    trace: list[TraceEvent] = field(default_factory=list)
    timelines: list = field(default_factory=list)

    def events(self, what: str) -> list[TraceEvent]:
        """Trace events of one type (e.g. "switch_to_repartitioning")."""
        return [e for e in self.trace if e.what == what]


class Cluster:
    """A simulated shared-nothing machine of ``params.num_nodes`` nodes.

    ``run`` takes one *program factory* per node: a callable
    ``factory(ctx) -> generator`` where ``ctx`` is that node's
    :class:`~repro.sim.node.NodeContext`.  The generator's return value
    becomes the node's entry in ``RunResult.node_results``.
    """

    def __init__(self, params: SystemParameters) -> None:
        self.params = params

    def run(
        self,
        program_factories,
        record_timeline: bool = False,
        node_speed_factors=None,
        faults=None,
        memory=None,
        tracer=None,
        ledger=None,
    ) -> RunResult:
        factories = list(program_factories)
        if len(factories) != self.params.num_nodes:
            raise ValueError(
                f"got {len(factories)} programs for "
                f"{self.params.num_nodes} nodes"
            )
        network = make_network(self.params)
        governor = (
            MemoryGovernor(memory, self.params.num_nodes)
            if memory is not None
            else None
        )
        engine = Engine(
            self.params,
            network,
            record_timeline=record_timeline,
            node_speed_factors=node_speed_factors,
            faults=faults,
            governor=governor,
            tracer=tracer,
            ledger=ledger,
        )
        contexts = [
            NodeContext(
                i,
                self.params.num_nodes,
                self.params,
                engine,
                memory=governor.node(i) if governor is not None else None,
            )
            for i in range(self.params.num_nodes)
        ]
        generators = [
            factory(ctx) for factory, ctx in zip(factories, contexts)
        ]
        results, metrics = engine.run(generators)
        return RunResult(
            elapsed_seconds=metrics.makespan,
            node_results=results,
            metrics=metrics,
            trace=engine.trace,
            timelines=engine.timelines,
        )
