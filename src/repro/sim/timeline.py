"""ASCII Gantt rendering of a recorded run timeline.

Each node's activity segments (CPU, scan I/O, spill I/O, merge, network
protocol, ...) become one labelled lane; gaps are idle/waiting time —
which is how you *see* the C-2P coordinator bottleneck, the A-Rep
end-of-phase synchronization, or the bus-bound tail of Repartitioning.
"""

from __future__ import annotations

_TAG_CHARS = {
    "scan_io": "S",
    "io_read": "r",
    "io_write": "w",
    "spill_io": "!",
    "store_io": "s",
    "sample_io": "$",
    "select_cpu": "c",
    "agg_cpu": "a",
    "merge_cpu": "m",
    "result_cpu": "R",
    "send_protocol": ">",
    "recv_protocol": "<",
    "cpu": "#",
}
_DEFAULT_CHAR = "#"


def tag_char(tag: str) -> str:
    """The single-character lane marker for an activity tag."""
    return _TAG_CHARS.get(tag, _DEFAULT_CHAR)


def render_timeline(
    timelines: list[list[tuple[float, float, str]]],
    width: int = 72,
    end_time: float | None = None,
) -> str:
    """Render per-node activity lanes; '.' marks idle/waiting time."""
    if not timelines:
        return "(no timeline recorded)"
    if end_time is None:
        end_time = max(
            (seg[1] for lane in timelines for seg in lane), default=0.0
        )
    if end_time <= 0:
        return "(empty timeline)"
    scale = width / end_time

    lines = []
    for node_id, lane in enumerate(timelines):
        chars = ["."] * width
        for start, end, tag in lane:
            lo = min(width - 1, int(start * scale))
            hi = min(width, max(lo + 1, int(end * scale + 0.9999)))
            marker = tag_char(tag)
            for i in range(lo, hi):
                chars[i] = marker
        lines.append(f"node {node_id:>2} |" + "".join(chars) + "|")
    lines.append(f"         0s{' ' * (width - 12)}{end_time:.3f}s")
    used_tags = {seg[2] for lane in timelines for seg in lane}
    legend = "  ".join(
        f"{tag_char(tag)}={tag}" for tag in sorted(used_tags)
    )
    lines.append("         " + legend + "  .=idle/wait")
    return "\n".join(lines)
