"""A deterministic discrete-event simulator of a shared-nothing cluster.

This is the substitute for the paper's 8-workstation PVM cluster (see
DESIGN.md).  Node programs are Python generators that *really execute* the
algorithms — real tuples, real hash tables, real spills, real adaptive
switching — while yielding cost requests (CPU seconds, page I/O, message
sends/receives) that the engine prices with the Table 1 parameters.  Two
network models are provided, matching Section 2: a latency-only network
(IBM SP-2-like) and a shared-bus limited-bandwidth network (10 Mbit
Ethernet-like) where transfers serialize globally.

The simulation is deterministic: ties are broken by a global sequence
number, so a given (workload, parameters, algorithm) triple always yields
the same timings, message orders, and metrics.

Fault injection and failure recovery live in ``repro.sim.faults`` and
``repro.sim.recovery``: a seedable :class:`FaultPlan` injects crashes,
stragglers, message loss/duplication, and transient disk errors, and
:func:`run_resilient` restarts the query on the survivors with
round-robin fragment takeover (see docs/faults.md).
"""

from repro.sim.cluster import Cluster, RunResult
from repro.sim.engine import DeadlockError, Engine
from repro.sim.faults import (
    ClusterLostError,
    CrashFault,
    FaultConfigError,
    FaultPlan,
    NodeCrashedError,
    Straggler,
)
from repro.sim.recovery import ResilientRun, run_resilient
from repro.sim.events import (
    Compute,
    Message,
    ReadPages,
    Recv,
    Send,
    TryRecv,
    WritePages,
)
from repro.sim.metrics import ClusterMetrics, NodeMetrics
from repro.sim.network import LatencyNetwork, SharedBusNetwork, make_network
from repro.sim.node import NodeContext

__all__ = [
    "Cluster",
    "ClusterLostError",
    "ClusterMetrics",
    "Compute",
    "CrashFault",
    "DeadlockError",
    "Engine",
    "FaultConfigError",
    "FaultPlan",
    "LatencyNetwork",
    "Message",
    "NodeContext",
    "NodeCrashedError",
    "NodeMetrics",
    "ReadPages",
    "Recv",
    "ResilientRun",
    "RunResult",
    "Send",
    "SharedBusNetwork",
    "Straggler",
    "TryRecv",
    "WritePages",
    "make_network",
    "run_resilient",
]
