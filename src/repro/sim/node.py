"""Node-side conveniences for writing algorithm programs.

A :class:`NodeContext` bundles the node id, the parameter set, and factory
methods for the request objects, plus the per-tuple CPU charges of Table 1
so algorithm code reads like the cost models ("charge select for n tuples",
"charge aggregation for n tuples").

:class:`BlockedChannel` reproduces the implementation detail of Section 5 —
"for efficiency reasons, we decided to block the messages into 2 KB pages":
tuples destined for a node are buffered and shipped one network block at a
time.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.costmodel.params import SystemParameters
from repro.resources.governor import RUNG_BACKPRESSURE
from repro.sim.events import (
    Compute,
    Message,
    ReadPages,
    Recv,
    Send,
    TryRecv,
    WritePages,
)


class NodeContext:
    """What an algorithm program needs to know about 'its' node.

    ``memory`` is this node's :class:`~repro.resources.NodeLedger` when
    the run is memory-governed, else None — operators open accounts on
    it and react to pressure via the degradation ladder.
    """

    def __init__(
        self,
        node_id: int,
        num_nodes: int,
        params: SystemParameters,
        engine=None,
        memory=None,
    ) -> None:
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.params = params
        self.engine = engine
        self.memory = memory

    # -- request factories --------------------------------------------------

    def compute(self, seconds: float, tag: str = "cpu") -> Compute:
        return Compute(seconds, tag)

    def read_pages(
        self, pages: float, random: bool = False, tag: str = "io_read"
    ) -> ReadPages:
        return ReadPages(pages, random, tag)

    def write_pages(self, pages: float, tag: str = "io_write") -> WritePages:
        return WritePages(pages, tag)

    def send(
        self, dst: int, kind: str, payload=None, nbytes: int = 0
    ) -> Send:
        return Send(Message(self.node_id, dst, kind, payload, nbytes))

    def recv(self, kind: str | None = None) -> Recv:
        return Recv(kind)

    def try_recv(self, kind: str | None = None) -> TryRecv:
        return TryRecv(kind)

    # -- Table 1 per-tuple CPU charges ---------------------------------------

    def select_cpu(self, n: int) -> Compute:
        """Getting n tuples off data pages: n · (t_r + t_w)."""
        p = self.params
        return Compute(n * (p.t_r + p.t_w), "select_cpu")

    def local_agg_cpu(self, n: int) -> Compute:
        """Hash-aggregate n tuples: n · (t_r + t_h + t_a)."""
        p = self.params
        return Compute(n * (p.t_r + p.t_h + p.t_a), "agg_cpu")

    def repart_select_cpu(self, n: int) -> Compute:
        """Read, write, hash and route n tuples: n · (t_r+t_w+t_h+t_d)."""
        p = self.params
        return Compute(n * (p.t_r + p.t_w + p.t_h + p.t_d), "select_cpu")

    def merge_cpu(self, n: int) -> Compute:
        """Merge n arriving tuples/partials: n · (t_r + t_a)."""
        p = self.params
        return Compute(n * (p.t_r + p.t_a), "merge_cpu")

    def result_cpu(self, n: int) -> Compute:
        """Emit n result tuples: n · t_w."""
        return Compute(n * self.params.t_w, "result_cpu")

    # -- page arithmetic -----------------------------------------------------

    def pages_of(self, nbytes: float) -> float:
        return nbytes / self.params.page_bytes

    def log(self, what: str, **detail) -> None:
        """Record a trace event (mode switch, decision, ...)."""
        if self.engine is not None:
            self.engine.log(self.node_id, what, **detail)

    def decision(
        self, what: str, ledger_only: dict | None = None, **detail
    ) -> None:
        """Record an adaptive decision.

        Emits exactly the trace event ``log(what, **detail)`` would
        (so traced output is unchanged) and, when the run carries a
        :class:`~repro.obs.decisions.DecisionLedger`, a ledger entry
        with ``detail`` merged with ``ledger_only`` extras.
        """
        if self.engine is not None:
            self.engine.decision(self.node_id, what, ledger_only, detail)

    def record_groups(self, groups: int) -> None:
        """Record result groups this node emitted (true-group ground truth)."""
        if self.engine is not None:
            self.engine.record_groups(self.node_id, groups)

    @contextmanager
    def phase(self, name: str, **args):
        """Span over an algorithm phase on this node's tracer track.

        A no-op (zero overhead beyond the generator frame) when the run
        is untraced.  Works inside node programs because ``__enter__``
        and ``__exit__`` execute synchronously at the node's current
        simulated clock — including during ``gen.close()`` on a crash,
        which closes the span at the crash time.
        """
        engine = self.engine
        tracer = None if engine is None else engine.tracer
        if tracer is None:
            yield None
            return
        span = tracer.begin(
            name, track=self.node_id,
            t=engine.node_clock(self.node_id), **args,
        )
        try:
            yield span
        finally:
            tracer.end(span, engine.node_clock(self.node_id))

    def record_memory(self, table_entries: int) -> None:
        """Update this node's peak hash/sort-table occupancy metric."""
        if self.engine is not None:
            self.engine.record_memory(self.node_id, table_entries)

    def record_scanned(self, tuples: int) -> None:
        """Count fragment tuples scanned (also arms K-tuple crash faults)."""
        if self.engine is not None:
            self.engine.record_scanned(self.node_id, tuples)


class BlockedChannel:
    """Per-destination buffering of outgoing items into network blocks.

    ``push`` buffers an item for a destination and, once a full block's
    worth of bytes has accumulated, returns a Send request the program must
    yield (and clears the buffer).  ``flush`` drains any partial blocks at
    end of phase.

    With ``operator`` set on a memory-governed run, the channel's
    buffered bytes are charged to an operator account on the node's
    ledger; when a charge is denied the channel ships the destination's
    partial block immediately — backpressure by shrinking the
    repartition queue instead of growing it.
    """

    def __init__(
        self,
        ctx: NodeContext,
        kind: str,
        item_bytes: int,
        operator: str | None = None,
    ) -> None:
        if item_bytes <= 0:
            raise ValueError("item_bytes must be positive")
        self.ctx = ctx
        self.kind = kind
        self.item_bytes = item_bytes
        self._buffers: dict[int, list] = {}
        self.items_pushed = 0
        self.early_ships = 0
        self._account = None
        if operator is not None and ctx.memory is not None:
            self._account = ctx.memory.open(operator)
        self._items_per_block = max(
            1, ctx.params.block_bytes // item_bytes
        )

    def push(self, dst: int, item):
        """Buffer one item; returns a Send request when a block fills."""
        buf = self._buffers.setdefault(dst, [])
        buf.append(item)
        self.items_pushed += 1
        if self._account is not None and not self._account.try_charge(
            self.item_bytes
        ):
            # Governor pressure: hold the byte anyway (the item is
            # buffered) but relieve by shipping this block early.
            self._account.charge(self.item_bytes)
            self.ctx.memory.note_rung(RUNG_BACKPRESSURE)
            self.early_ships += 1
            return self._ship(dst)
        if len(buf) >= self._items_per_block:
            return self._ship(dst)
        return None

    def _ship(self, dst: int):
        buf = self._buffers.pop(dst, None)
        if not buf:
            return None
        if self._account is not None:
            self._account.release(len(buf) * self.item_bytes)
        return self.ctx.send(
            dst, self.kind, payload=buf, nbytes=len(buf) * self.item_bytes
        )

    def flush(self):
        """Send requests for every non-empty partial buffer."""
        sends = []
        for dst in sorted(self._buffers):
            send = self._ship(dst)
            if send is not None:
                sends.append(send)
        return sends
