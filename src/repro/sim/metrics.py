"""Per-node and cluster-wide accounting of a simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeMetrics:
    """What one node did during a run (all times in simulated seconds)."""

    node_id: int
    cpu_seconds: float = 0.0
    io_read_seconds: float = 0.0
    io_write_seconds: float = 0.0
    pages_read: float = 0.0
    pages_written: float = 0.0
    spill_pages: float = 0.0
    messages_sent: int = 0
    messages_received: int = 0
    blocks_sent: int = 0
    bytes_sent: int = 0
    tuples_scanned: int = 0
    tuples_aggregated: int = 0
    groups_output: int = 0
    peak_table_entries: int = 0
    finish_time: float = 0.0
    # Fault/recovery accounting (all zero on a fault-free run):
    retries: int = 0
    timeouts: int = 0
    duplicates_dropped: int = 0
    reexecuted_tuples: int = 0
    degraded_makespan: float = 0.0
    crashed: bool = False
    # Memory-governor accounting (all zero/empty on ungoverned runs):
    mem_high_water_bytes: int = 0
    mem_spill_bytes: int = 0
    mem_stall_seconds: float = 0.0
    mem_ladder_rungs: dict[str, int] = field(default_factory=dict)
    tagged_seconds: dict[str, float] = field(default_factory=dict)

    def add_tagged(self, tag: str, seconds: float) -> None:
        self.tagged_seconds[tag] = self.tagged_seconds.get(tag, 0.0) + seconds

    @property
    def busy_seconds(self) -> float:
        return self.cpu_seconds + self.io_read_seconds + self.io_write_seconds


@dataclass
class ClusterMetrics:
    """The whole run: per-node metrics plus network totals."""

    nodes: list[NodeMetrics]
    network_busy_seconds: float = 0.0
    network_blocks: int = 0

    def node(self, node_id: int) -> NodeMetrics:
        return self.nodes[node_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(n.cpu_seconds for n in self.nodes)

    @property
    def total_io_seconds(self) -> float:
        return sum(n.io_read_seconds + n.io_write_seconds for n in self.nodes)

    @property
    def total_spill_pages(self) -> float:
        return sum(n.spill_pages for n in self.nodes)

    @property
    def total_messages(self) -> int:
        return sum(n.messages_sent for n in self.nodes)

    @property
    def total_peak_table_entries(self) -> int:
        """Cluster-wide memory demand: sum of per-node table peaks.

        This is the quantity behind the paper's Section 2.2 argument:
        Two Phase accumulates each group on potentially all N nodes
        (total ≈ N·|G|) while Repartitioning stores it once (≈ |G|).
        """
        return sum(n.peak_table_entries for n in self.nodes)

    @property
    def total_bytes_sent(self) -> int:
        return sum(n.bytes_sent for n in self.nodes)

    @property
    def total_groups_output(self) -> int:
        """The true result group count (every body reports its merge output).

        This is the ground truth the decision ledger compares sampling
        estimates against — available without a second aggregation pass.
        """
        return sum(n.groups_output for n in self.nodes)

    @property
    def total_retries(self) -> int:
        return sum(n.retries for n in self.nodes)

    @property
    def total_timeouts(self) -> int:
        return sum(n.timeouts for n in self.nodes)

    @property
    def total_reexecuted_tuples(self) -> int:
        return sum(n.reexecuted_tuples for n in self.nodes)

    @property
    def crashed_nodes(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.crashed]

    @property
    def total_mem_spill_bytes(self) -> int:
        return sum(n.mem_spill_bytes for n in self.nodes)

    @property
    def total_mem_stall_seconds(self) -> float:
        return sum(n.mem_stall_seconds for n in self.nodes)

    @property
    def max_mem_high_water_bytes(self) -> int:
        return max((n.mem_high_water_bytes for n in self.nodes), default=0)

    @property
    def mem_ladder_rungs(self) -> dict[str, int]:
        """Cluster-wide degradation-ladder counters (empty if ungoverned)."""
        merged: dict[str, int] = {}
        for n in self.nodes:
            for rung, count in n.mem_ladder_rungs.items():
                merged[rung] = merged.get(rung, 0) + count
        return merged

    @property
    def degraded_makespan(self) -> float:
        """Finish time under faults (0.0 when the run was fault-free)."""
        return max((n.degraded_makespan for n in self.nodes), default=0.0)

    @property
    def makespan(self) -> float:
        return max((n.finish_time for n in self.nodes), default=0.0)

    def skew_ratio(self) -> float:
        """Max over mean node busy time — 1.0 means perfectly balanced."""
        busy = [n.busy_seconds for n in self.nodes]
        mean = sum(busy) / len(busy)
        if mean == 0:
            return 1.0
        return max(busy) / mean

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the whole run's accounting."""
        return {
            "makespan": self.makespan,
            "network_busy_seconds": self.network_busy_seconds,
            "network_blocks": self.network_blocks,
            "total_cpu_seconds": self.total_cpu_seconds,
            "total_io_seconds": self.total_io_seconds,
            "total_spill_pages": self.total_spill_pages,
            "total_messages": self.total_messages,
            "total_bytes_sent": self.total_bytes_sent,
            "total_groups_output": self.total_groups_output,
            "total_peak_table_entries": self.total_peak_table_entries,
            "total_retries": self.total_retries,
            "total_timeouts": self.total_timeouts,
            "total_reexecuted_tuples": self.total_reexecuted_tuples,
            "crashed_nodes": self.crashed_nodes,
            "degraded_makespan": self.degraded_makespan,
            "total_mem_spill_bytes": self.total_mem_spill_bytes,
            "total_mem_stall_seconds": self.total_mem_stall_seconds,
            "max_mem_high_water_bytes": self.max_mem_high_water_bytes,
            "mem_ladder_rungs": self.mem_ladder_rungs,
            "skew_ratio": self.skew_ratio(),
            "nodes": [
                {
                    "node_id": n.node_id,
                    "cpu_seconds": n.cpu_seconds,
                    "io_read_seconds": n.io_read_seconds,
                    "io_write_seconds": n.io_write_seconds,
                    "pages_read": n.pages_read,
                    "pages_written": n.pages_written,
                    "spill_pages": n.spill_pages,
                    "messages_sent": n.messages_sent,
                    "messages_received": n.messages_received,
                    "blocks_sent": n.blocks_sent,
                    "bytes_sent": n.bytes_sent,
                    "peak_table_entries": n.peak_table_entries,
                    "finish_time": n.finish_time,
                    "tuples_scanned": n.tuples_scanned,
                    "groups_output": n.groups_output,
                    "retries": n.retries,
                    "timeouts": n.timeouts,
                    "duplicates_dropped": n.duplicates_dropped,
                    "reexecuted_tuples": n.reexecuted_tuples,
                    "degraded_makespan": n.degraded_makespan,
                    "crashed": n.crashed,
                    "mem_high_water_bytes": n.mem_high_water_bytes,
                    "mem_spill_bytes": n.mem_spill_bytes,
                    "mem_stall_seconds": n.mem_stall_seconds,
                    "mem_ladder_rungs": dict(n.mem_ladder_rungs),
                    "tagged_seconds": dict(n.tagged_seconds),
                }
                for n in self.nodes
            ],
        }
