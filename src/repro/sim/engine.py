"""The discrete-event core.

Each node runs exactly one program (a generator).  Compute and disk
requests only touch that node's private clock, so the engine advances a
program *greedily* until it needs a shared resource — a send (the network,
possibly a shared bus) or a receive.  Those requests are routed through a
global time-ordered event heap, which guarantees that bus contention and
message availability are resolved in chronological order across nodes, and
that runs are fully deterministic (ties broken by a global sequence
number).

Receive-side protocol CPU (m_p per block) is charged to the receiver when
it consumes a message, matching the cost models' "receiving tuples" terms.
Zero-byte messages (control traffic such as ``end_of_phase`` and ``eof``)
are free and arrive instantly — the paper piggy-backs them on data
messages.  A send to the local node bypasses both the network and the
protocol cost.

Memory governance (``governor`` = a
:class:`~repro.resources.MemoryGovernor`) registers each node's mailbox
with the governor's accounting tree: in-flight message bytes are charged
to the receiving node's ledger and released when the message is
consumed.  A send into a mailbox already holding more than the policy's
mailbox budget stalls the *producer* — the first rung of the
degradation ladder — for ``stall_seconds`` per block, charged to the
sender's clock (visible in the makespan) and recorded as
``mem_stall_seconds``.  With ``governor=None`` every check
short-circuits and runs are bit-identical to the ungoverned engine.

Fault injection (``faults`` = a :class:`~repro.sim.faults.FaultRuntime`)
is layered on at the request boundaries: crashes terminate a node's
program at its next request past the trigger, lost data blocks are
retransmitted by a reliable transport (ack timeout + bounded exponential
backoff, delaying delivery and occupying the network per attempt),
duplicate deliveries are suppressed by transport sequence numbers, and
transient disk-read errors re-issue the read once.  When any node has
crashed by the time the event heap drains, the engine raises
:class:`~repro.sim.faults.NodeCrashedError` carrying the attempt's partial
metrics so the recovery layer can re-execute the lost work.  With
``faults=None`` every check short-circuits and the simulation is
bit-identical to the fault-free engine.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.costmodel.params import SystemParameters
from repro.sim.events import (
    Compute,
    Message,
    ReadPages,
    Recv,
    Send,
    TraceEvent,
    TryRecv,
    WritePages,
)
from repro.obs.tracer import NODE as _CAT_NODE
from repro.obs.tracer import QUERY as _CAT_QUERY
from repro.resources.governor import RUNG_BACKPRESSURE, RUNG_NAMES
from repro.sim.faults import NodeCrashedError
from repro.sim.metrics import ClusterMetrics, NodeMetrics
from repro.sim.network import make_network

_RUNNING = "running"
_PARKED = "parked"
_DONE = "done"
_CRASHED = "crashed"


class DeadlockError(RuntimeError):
    """All remaining nodes are parked on Recv with no message in flight."""


class SimulationError(RuntimeError):
    """A node program yielded something the engine cannot price."""


@dataclass
class _NodeState:
    node_id: int
    gen: object
    clock: float = 0.0
    status: str = _RUNNING
    mailbox: list = field(default_factory=list)  # heap of (delivery, seq, Message)
    waiting_kind: str | None = None
    waiting_epoch: int = 0
    result: object = None
    metrics: NodeMetrics = None
    crash_pending: bool = False
    span: object = None  # open obs span for this node's lifetime, if traced

    def matching(self, kind: str | None):
        """Mailbox entries whose message kind matches ``kind``."""
        return [
            entry
            for entry in self.mailbox
            if kind is None or entry[2].kind == kind
        ]


class Engine:
    """Runs a set of node programs to completion over a network model."""

    def __init__(
        self,
        params: SystemParameters,
        network=None,
        record_timeline: bool = False,
        max_events: int = 50_000_000,
        node_speed_factors=None,
        faults=None,
        governor=None,
        tracer=None,
        ledger=None,
    ) -> None:
        self.params = params
        self.network = network if network is not None else make_network(params)
        self.record_timeline = record_timeline
        # Optional obs.Tracer; None = untraced, and every tracing hook
        # below short-circuits so the simulation is bit-identical.
        self.tracer = tracer
        # Optional obs.DecisionLedger; None = unrecorded, and decision
        # sites degrade to plain trace events (bit-identical runs).
        self.ledger = ledger
        # Optional FaultRuntime (see repro.sim.faults); None = perfect
        # cluster, and every fault check below short-circuits.
        self.faults = faults
        # Optional MemoryGovernor (see repro.resources); None = ungoverned,
        # and every memory check below short-circuits.
        self.governor = governor
        if governor is not None:
            self._mailbox_accounts = [
                governor.node(i).open("mailbox")
                for i in range(params.num_nodes)
            ]
        else:
            self._mailbox_accounts = []
        self.crashed: dict[int, float] = {}
        # A backstop against node programs that send/poll in an infinite
        # loop: far above any legitimate run, but finite.
        self.max_events = max_events
        # Heterogeneous hardware: node i's CPU and disk run at
        # speed_factors[i] times the Table 1 rates (0.5 = half speed,
        # i.e. doubled durations).  None = homogeneous.
        if node_speed_factors is not None:
            factors = list(node_speed_factors)
            if any(f <= 0 for f in factors):
                raise ValueError("node speed factors must be positive")
            self.node_speed_factors = factors
        else:
            self.node_speed_factors = None
        # Per-node activity segments (start, end, tag), only when asked:
        # recording every segment costs memory proportional to the run.
        self.timelines: list[list[tuple[float, float, str]]] = []
        self.trace: list[TraceEvent] = []
        self._heap: list = []
        self._seq = 0
        self._nodes: list[_NodeState] = []
        # Channels are FIFO per (src, dst) pair, as with PVM/TCP: a later
        # message (e.g. a zero-byte EOF) never overtakes earlier data.
        self._channel_last: dict[tuple[int, int], float] = {}

    # -- public API ---------------------------------------------------------

    def run(self, generators) -> tuple[list, ClusterMetrics]:
        """Execute one generator per node; returns (results, metrics)."""
        self._nodes = [
            _NodeState(i, gen, metrics=NodeMetrics(i))
            for i, gen in enumerate(generators)
        ]
        self.timelines = [[] for _ in self._nodes]
        tracer = self.tracer
        query_span = None
        if tracer is not None:
            query_span = tracer.begin(
                "query", track=-1, t=0.0, cat=_CAT_QUERY,
                nodes=len(self._nodes),
            )
            for st in self._nodes:
                st.span = tracer.begin(
                    f"node {st.node_id}", track=st.node_id, t=0.0,
                    cat=_CAT_NODE, parent=query_span,
                )
        for st in self._nodes:
            self._push(0.0, "resume", st.node_id, None)
        if self.faults is not None:
            # Proactive wake-ups so a timed crash fires even on a node
            # that is idle (parked) when its time comes.
            for st in self._nodes:
                crash_at = self.faults.crash_time(st.node_id)
                if crash_at is not None:
                    self._push(crash_at, "crashcheck", st.node_id, None)
        processed = 0
        while self._heap:
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; a node "
                    "program is likely looping on sends or polls"
                )
            time, _seq, action, node_id, payload = heapq.heappop(self._heap)
            st = self._nodes[node_id]
            if st.status in (_DONE, _CRASHED):
                continue
            if action == "resume":
                self._advance(st, payload, time)
            elif action == "send":
                self._handle_send(st, payload, time)
            elif action == "recv":
                self._handle_recv(st, payload, time)
            elif action == "tryrecv":
                self._handle_tryrecv(st, payload, time)
            elif action == "crashcheck":
                self._handle_crashcheck(st, time)
            else:  # pragma: no cover - internal invariant
                raise SimulationError(f"unknown action {action!r}")
        if self.crashed:
            # Survivors may be parked mid-protocol waiting on the dead
            # node; close their accounting at their last activity so the
            # recovery layer can merge this attempt's partial work.
            for st in self._nodes:
                if st.status not in (_DONE, _CRASHED):
                    st.metrics.finish_time = max(
                        st.metrics.finish_time, st.clock
                    )
            if tracer is not None:
                horizon = max(
                    (st.metrics.finish_time for st in self._nodes),
                    default=0.0,
                )
                tracer.close_all(horizon)
            raise NodeCrashedError(
                dict(self.crashed), self._collect_metrics(), self.trace
            )
        stuck = [st.node_id for st in self._nodes if st.status != _DONE]
        if stuck:
            kinds = {
                st.node_id: st.waiting_kind
                for st in self._nodes
                if st.status == _PARKED
            }
            raise DeadlockError(
                f"nodes {stuck} never finished; parked waiting on {kinds}"
            )
        if tracer is not None:
            makespan = max(
                (st.metrics.finish_time for st in self._nodes), default=0.0
            )
            for st in self._nodes:
                tracer.end(st.span, st.metrics.finish_time)
            tracer.end(query_span, makespan)
        return [st.result for st in self._nodes], self._collect_metrics()

    def _collect_metrics(self) -> ClusterMetrics:
        if self.governor is not None:
            # Fold the governor's ledgers into the per-node accounting so
            # degraded runs are observable alongside the timing metrics.
            for st in self._nodes:
                ledger = self.governor.node(st.node_id)
                st.metrics.mem_high_water_bytes = ledger.high_water
                st.metrics.mem_spill_bytes = ledger.spill_bytes
                st.metrics.mem_stall_seconds = ledger.stall_seconds
                st.metrics.mem_ladder_rungs = {
                    RUNG_NAMES[r]: c
                    for r, c in sorted(ledger.ladder_rungs.items())
                }
        return ClusterMetrics(
            nodes=[st.metrics for st in self._nodes],
            network_busy_seconds=self.network.busy_seconds,
            network_blocks=self.network.blocks_carried,
        )

    def log(self, node_id: int, what: str, **detail) -> None:
        """Record a trace event at the node's current simulated time."""
        clock = self._nodes[node_id].clock
        self.trace.append(TraceEvent(clock, node_id, what, detail))
        if self.tracer is not None:
            self.tracer.instant(what, node_id, clock, **detail)

    def decision(
        self, node_id: int, what: str, extra: dict | None, detail: dict
    ) -> None:
        """Record an adaptive decision: a trace event plus a ledger entry.

        The trace event carries exactly ``detail`` (byte-identical to the
        pre-ledger ``ctx.log`` call); ``extra`` holds ledger-only context
        (table capacities, memory rungs, sample sizes) that would bloat
        the trace.  With ``ledger=None`` this *is* ``log()``.
        """
        self.log(node_id, what, **detail)
        ledger = self.ledger
        if ledger is None:
            return
        data = dict(detail)
        if extra:
            data.update(extra)
        span_id = None
        if self.tracer is not None:
            span = self.tracer.current_span(node_id)
            if span is not None:
                span_id = getattr(span, "span_id", None)
        ledger.record(
            what,
            node_id,
            self._nodes[node_id].clock,
            data=data,
            span_id=span_id,
        )

    def node_clock(self, node_id: int) -> float:
        return self._nodes[node_id].clock

    def record_memory(self, node_id: int, table_entries: int) -> None:
        """Track the peak aggregate-table occupancy of one node."""
        metrics = self._nodes[node_id].metrics
        if table_entries > metrics.peak_table_entries:
            metrics.peak_table_entries = table_entries

    def record_groups(self, node_id: int, groups: int) -> None:
        """Record how many result groups one node produced (ground truth)."""
        self._nodes[node_id].metrics.groups_output += groups

    def record_scanned(self, node_id: int, tuples: int) -> None:
        """Count fragment tuples scanned; arms tuple-triggered crashes."""
        st = self._nodes[node_id]
        st.metrics.tuples_scanned += tuples
        if self.faults is not None and not st.crash_pending:
            threshold = self.faults.crash_after_tuples(node_id)
            if (
                threshold is not None
                and st.metrics.tuples_scanned >= threshold
            ):
                st.crash_pending = True

    def _record_segment(
        self, node_id: int, start: float, end: float, tag: str
    ) -> None:
        if self.record_timeline and end > start:
            timeline = self.timelines[node_id]
            # Merge with the previous segment when contiguous & same tag.
            if timeline and timeline[-1][2] == tag and (
                abs(timeline[-1][1] - start) < 1e-12
            ):
                timeline[-1] = (timeline[-1][0], end, tag)
            else:
                timeline.append((start, end, tag))

    # -- internals ----------------------------------------------------------

    def _push(self, time: float, action: str, node_id: int, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, action, node_id, payload))

    def _blocks(self, nbytes: int) -> int:
        if nbytes <= 0:
            return 0
        return math.ceil(nbytes / self.params.block_bytes)

    def _node_slowdown(self, node_id: int) -> float:
        slowdown = 1.0
        if self.node_speed_factors is not None:
            try:
                slowdown = 1.0 / self.node_speed_factors[node_id]
            except IndexError:
                pass
        if self.faults is not None:
            slowdown *= self.faults.slowdown(node_id)
        return slowdown

    def _crash(self, st: _NodeState, at: float) -> None:
        """Terminate a node's program: it is dead from ``at`` onwards."""
        st.status = _CRASHED
        st.crash_pending = False
        try:
            st.gen.close()
        except Exception as exc:
            # Only the generator-shutdown protocol's own complaints are
            # expected here (CPython raises a *plain* RuntimeError such
            # as "generator ignored GeneratorExit" when a mid-yield
            # generator refuses to die).  Anything more specific — a
            # typed memory error, a simulation bug surfacing in a
            # ``finally`` block — is a real error that must not vanish
            # into the crash path: record it and re-raise.
            if type(exc) in (RuntimeError, StopIteration):
                if self.tracer is not None:
                    self.tracer.instant(
                        "generator_close_ignored", st.node_id, at,
                        error=f"{type(exc).__name__}: {exc}",
                    )
            else:
                self.trace.append(
                    TraceEvent(
                        at, st.node_id, "generator_close_error",
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                )
                if self.tracer is not None:
                    self.tracer.instant(
                        "generator_close_error", st.node_id, at,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                raise
        st.mailbox.clear()
        if self.governor is not None:
            # A dead node's mailbox holds nothing; free its charges.
            self._mailbox_accounts[st.node_id].close()
        st.waiting_kind = None
        st.metrics.finish_time = at
        st.metrics.crashed = True
        self.crashed[st.node_id] = at
        self.faults.note_crash(st.node_id)
        self.trace.append(
            TraceEvent(at, st.node_id, "node_crash", {"at": at})
        )
        if self.tracer is not None:
            self.tracer.instant("node_crash", st.node_id, at)
            if st.span is not None:
                self.tracer.end(st.span, at, crashed=True)

    def _handle_crashcheck(self, st: _NodeState, time: float) -> None:
        # The heap is time-ordered, so if the node has not crashed on its
        # own by now the scheduled time has genuinely arrived.
        crash_at = self.faults.crash_time(st.node_id)
        if crash_at is None:  # consumed already (e.g. tuple trigger fired)
            return
        self._crash(st, max(crash_at, st.clock))

    def _advance(self, st: _NodeState, value, time: float) -> None:
        """Run the node greedily until it hits a shared-resource request."""
        st.clock = max(st.clock, time)
        st.status = _RUNNING
        gen = st.gen
        params = self.params
        metrics = st.metrics
        tracer = self.tracer
        trace_ops = tracer is not None and tracer.operator_spans
        slowdown = self._node_slowdown(st.node_id)
        crash_at = (
            None if self.faults is None
            else self.faults.crash_time(st.node_id)
        )
        while True:
            if st.crash_pending or (
                crash_at is not None and st.clock >= crash_at
            ):
                self._crash(st, st.clock)
                return
            try:
                req = gen.send(value)
            except StopIteration as stop:
                st.status = _DONE
                st.result = stop.value
                metrics.finish_time = st.clock
                return
            value = None
            if isinstance(req, Compute):
                seconds = req.seconds * slowdown
                start = st.clock
                st.clock += seconds
                metrics.cpu_seconds += seconds
                metrics.add_tagged(req.tag, seconds)
                self._record_segment(st.node_id, start, st.clock, req.tag)
                if trace_ops and seconds > 0:
                    tracer.complete(
                        req.tag, st.node_id, start, st.clock, op="compute"
                    )
            elif isinstance(req, ReadPages):
                per_page = (
                    params.random_io_seconds
                    if req.random
                    else params.io_seconds
                )
                seconds = req.pages * per_page * slowdown
                retry_seconds = 0.0
                if (
                    self.faults is not None
                    and req.pages > 0
                    and self.faults.read_error(st.node_id)
                ):
                    # Transient read failure: the request is re-issued
                    # once, doubling its latency.  The extra latency is
                    # attributed to ``fault_io_retry`` only; the
                    # request's own tag keeps its fault-free cost so the
                    # tagged breakdown still partitions busy time.
                    metrics.retries += 1
                    retry_seconds = seconds
                    metrics.add_tagged("fault_io_retry", retry_seconds)
                    if tracer is not None:
                        tracer.instant(
                            "io_read_retry", st.node_id, st.clock,
                            pages=req.pages, tag=req.tag,
                        )
                start = st.clock
                st.clock += seconds + retry_seconds
                metrics.io_read_seconds += seconds + retry_seconds
                metrics.pages_read += req.pages
                if req.tag == "spill_io":
                    metrics.spill_pages += req.pages
                metrics.add_tagged(req.tag, seconds)
                self._record_segment(st.node_id, start, st.clock, req.tag)
                if trace_ops and st.clock > start:
                    tracer.complete(
                        req.tag, st.node_id, start, st.clock,
                        op="read", pages=req.pages,
                    )
            elif isinstance(req, WritePages):
                seconds = req.pages * params.io_seconds * slowdown
                start = st.clock
                st.clock += seconds
                metrics.io_write_seconds += seconds
                metrics.pages_written += req.pages
                if req.tag == "spill_io":
                    metrics.spill_pages += req.pages
                metrics.add_tagged(req.tag, seconds)
                self._record_segment(st.node_id, start, st.clock, req.tag)
                if trace_ops and seconds > 0:
                    tracer.complete(
                        req.tag, st.node_id, start, st.clock,
                        op="write", pages=req.pages,
                    )
            elif isinstance(req, Send):
                self._push(st.clock, "send", st.node_id, req.message)
                return
            elif isinstance(req, Recv):
                st.waiting_epoch += 1
                self._push(
                    st.clock, "recv", st.node_id, (req.kind, st.waiting_epoch)
                )
                return
            elif isinstance(req, TryRecv):
                self._push(st.clock, "tryrecv", st.node_id, req.kind)
                return
            else:
                raise SimulationError(
                    f"node {st.node_id} yielded unsupported request "
                    f"{req!r}"
                )

    def _handle_send(self, st: _NodeState, msg: Message, time: float) -> None:
        st.clock = max(st.clock, time)
        blocks = self._blocks(msg.nbytes)
        metrics = st.metrics
        metrics.messages_sent += 1
        metrics.blocks_sent += blocks
        metrics.bytes_sent += msg.nbytes
        faults = self.faults
        if msg.dst == msg.src:
            delivery = st.clock
        else:
            protocol = blocks * self.params.m_p
            st.clock += protocol
            metrics.cpu_seconds += protocol
            metrics.add_tagged("send_protocol", protocol)
            if self.governor is not None and blocks > 0:
                # Rung 1 of the degradation ladder: the receiver's
                # mailbox is over budget, so the producer stalls before
                # putting more bytes in flight.
                policy = self.governor.policy
                mailbox = self._mailbox_accounts[msg.dst]
                if (
                    mailbox.used + msg.nbytes
                    > policy.effective_mailbox_budget
                ):
                    stall = policy.stall_seconds * blocks
                    st.clock += stall
                    metrics.add_tagged("mem_stall", stall)
                    ledger = self.governor.node(st.node_id)
                    ledger.note_stall(stall)
                    ledger.note_rung(RUNG_BACKPRESSURE)
                    if self.tracer is not None:
                        self.tracer.instant(
                            "mem_backpressure_stall", st.node_id,
                            st.clock, seconds=stall, dst=msg.dst,
                        )
            send_at = st.clock
            if faults is not None and blocks > 0:
                # Reliable transport over a lossy link: each dropped
                # transmission occupies the network, costs the sender an
                # ack timeout plus backoff, and is retried; delivery is
                # delayed but guaranteed.  (Zero-byte control messages
                # are piggy-backed and exempt.)
                drops = faults.message_drops(st.node_id)
                for attempt in range(drops):
                    self.network.transfer(send_at, blocks)
                    wait = faults.retry_delay(attempt)
                    send_at += wait
                    metrics.retries += 1
                    metrics.timeouts += 1
                    metrics.add_tagged("retransmit_wait", wait)
            delivery = self.network.transfer(send_at, blocks)
        channel = (msg.src, msg.dst)
        delivery = max(delivery, self._channel_last.get(channel, 0.0))
        self._channel_last[channel] = delivery
        dst = self._nodes[msg.dst]
        if faults is not None and blocks > 0 and msg.dst != msg.src:
            if faults.duplicate(st.node_id):
                # The duplicate copy burns network time; the receiving
                # transport drops it by sequence number.
                self.network.transfer(delivery, blocks)
                dst.metrics.duplicates_dropped += 1
        if dst.status == _CRASHED:
            # Sent into the void: the sender paid for the transfer, but
            # nothing arrives and nobody wakes.
            self._advance(st, None, st.clock)
            return
        if self.governor is not None and msg.nbytes > 0 and msg.dst != msg.src:
            # In-flight bytes live on the receiver until consumed.
            self._mailbox_accounts[msg.dst].charge(msg.nbytes)
        self._seq += 1
        heapq.heappush(dst.mailbox, (delivery, self._seq, msg))
        if dst.status == _PARKED and (
            dst.waiting_kind is None or dst.waiting_kind == msg.kind
        ):
            self._push(
                max(delivery, dst.clock),
                "recv",
                dst.node_id,
                (dst.waiting_kind, dst.waiting_epoch),
            )
        self._advance(st, None, st.clock)

    def _consume(self, st: _NodeState, entry) -> Message:
        """Remove one mailbox entry and charge the receive protocol."""
        st.mailbox.remove(entry)
        heapq.heapify(st.mailbox)
        delivery, _seq, msg = entry
        if (
            self.governor is not None
            and msg.nbytes > 0
            and msg.dst != msg.src
        ):
            self._mailbox_accounts[msg.dst].release(msg.nbytes)
        st.clock = max(st.clock, delivery)
        if msg.dst != msg.src:
            blocks = self._blocks(msg.nbytes)
            protocol = blocks * self.params.m_p
            st.clock += protocol
            st.metrics.cpu_seconds += protocol
            st.metrics.add_tagged("recv_protocol", protocol)
        st.metrics.messages_received += 1
        return msg

    def _handle_recv(self, st: _NodeState, payload, time: float) -> None:
        kind, epoch = payload
        if st.status == _DONE or epoch != st.waiting_epoch:
            return  # stale wake-up
        if st.status == _RUNNING:
            # First time this Recv is processed: record what we wait for.
            st.waiting_kind = kind
        matching = st.matching(kind)
        if not matching:
            st.status = _PARKED
            return
        entry = min(matching)
        delivery = entry[0]
        now = max(st.clock, time)
        if delivery > now:
            # The message exists but is still in flight; re-check at its
            # delivery time (an earlier arrival will also wake us).
            st.status = _PARKED
            self._push(delivery, "recv", st.node_id, (kind, epoch))
            return
        st.waiting_epoch += 1  # consume the wait; later wakes are stale
        msg = self._consume(st, entry)
        self._advance(st, msg, max(now, st.clock))

    def _handle_tryrecv(self, st: _NodeState, kind, time: float) -> None:
        now = max(st.clock, time)
        matching = [e for e in st.matching(kind) if e[0] <= now]
        if not matching:
            self._advance(st, None, now)
            return
        msg = self._consume(st, min(matching))
        self._advance(st, msg, max(now, st.clock))
