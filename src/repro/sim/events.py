"""Requests a node program may yield, and the message envelope.

A node program is a generator.  Each ``yield`` hands the engine one of
these request objects; the engine advances simulated time (and metrics)
accordingly and resumes the generator — with the received
:class:`Message` as the value of a ``Recv``/``TryRecv`` yield.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Compute:
    """Occupy this node's CPU for ``seconds`` of simulated time."""

    seconds: float
    tag: str = "cpu"

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("compute time must be non-negative")


@dataclass(frozen=True)
class ReadPages:
    """Read ``pages`` pages from this node's local disk.

    ``random=True`` prices the read at rIO instead of sequential IO
    (used by the page sampler).  ``tag`` routes the time into the metrics
    breakdown ("scan_io", "spill_io", ...).
    """

    pages: float
    random: bool = False
    tag: str = "io_read"

    def __post_init__(self) -> None:
        if self.pages < 0:
            raise ValueError("page count must be non-negative")


@dataclass(frozen=True)
class WritePages:
    """Write ``pages`` pages to this node's local disk."""

    pages: float
    tag: str = "io_write"

    def __post_init__(self) -> None:
        if self.pages < 0:
            raise ValueError("page count must be non-negative")


@dataclass(frozen=True)
class Message:
    """A message between nodes.

    ``kind`` is the protocol tag the algorithms dispatch on ("partials",
    "raw", "sample", "decision", "end_of_phase", "eof").  ``nbytes`` is
    the payload's on-wire size; the engine derives the block count, the
    protocol CPU cost and the network occupancy from it.  Zero-byte
    messages model piggy-backed control traffic: they cost nothing and
    arrive instantly.
    """

    src: int
    dst: int
    kind: str
    payload: object = None
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(frozen=True)
class Send:
    """Transmit ``message`` to ``message.dst``."""

    message: Message


@dataclass(frozen=True)
class Recv:
    """Block until a message arrives; ``kind=None`` accepts any kind."""

    kind: str | None = None


@dataclass(frozen=True)
class TryRecv:
    """Non-blocking receive: a delivered matching message, or None.

    Used by Adaptive Repartitioning to poll for end-of-phase notices
    while it is still scanning its own fragment.
    """

    kind: str | None = None


@dataclass
class TraceEvent:
    """One entry of the run's event log (mode switches, decisions, ...)."""

    time: float
    node: int
    what: str
    detail: dict = field(default_factory=dict)
