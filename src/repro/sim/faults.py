"""Deterministic fault injection for the cluster simulator.

A :class:`FaultPlan` describes everything that can go wrong during a
simulated run: node crashes (at a simulated time or after a number of
scanned tuples), stragglers (per-node CPU/disk slowdown multipliers),
message loss and duplication on the interconnect, and transient disk-read
errors.  The plan is pure data — seedable, immutable, reusable — and is
attached to a run via ``SimConfig(faults=plan)``; every algorithm runs
unchanged under it.

The engine never consults the plan directly.  ``plan.start()`` yields a
:class:`FaultSchedule` (the mutable per-query state: which crashes have
already fired across recovery attempts), and ``schedule.runtime(node_ids)``
yields the :class:`FaultRuntime` one simulation attempt uses.  The runtime
maps the attempt's dense node indices back to the original node ids, so a
straggler keeps straggling and a consumed crash stays consumed after the
cluster shrinks around a failure.

Determinism: every random draw comes from per-node ``random.Random``
streams seeded from ``(plan.seed, original node id, stream)``.  The engine
itself is deterministic, so the draws are consumed in a deterministic
order and a given (workload, parameters, plan) triple always produces the
same crashes, the same retransmissions, and byte-identical metrics.

The same plan also drives **real-process** injection: the multiprocessing
executor (``repro.parallel.mp_executor``) maps each fault class onto its
process-level counterpart — a :class:`CrashFault` becomes a SIGKILL of
the worker running that fragment, a :class:`Straggler` an artificial
per-row slowdown (a limping worker), a :class:`WorkerStall` a
SIGSTOP/SIGCONT pair, ``read_error_rate`` an injected worker exception,
and ``message_loss`` the loss of the fragment's shared-memory segment.
:meth:`FaultPlan.injection_schedule` is the single deterministic
derivation both substrates consume, so a given seed produces the same
injected-fault schedule (kind, target, ordinal) in the simulator and in
the real pool (``tests/test_fault_determinism.py`` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class FaultConfigError(ValueError):
    """A FaultPlan field is out of range or self-contradictory."""


class NodeCrashedError(RuntimeError):
    """One or more nodes crashed; the attempt's partial state is attached.

    Raised by the engine once the event heap drains with crashed nodes
    present.  ``crashed`` maps the attempt's node index to the simulated
    crash time; ``metrics`` and ``trace`` carry the work the attempt
    performed up to that point so recovery can account for it.
    """

    def __init__(self, crashed: dict[int, float], metrics, trace) -> None:
        nodes = sorted(crashed)
        super().__init__(
            f"node(s) {nodes} crashed at "
            f"{[round(crashed[n], 6) for n in nodes]}"
        )
        self.crashed = dict(crashed)
        self.metrics = metrics
        self.trace = trace


class ClusterLostError(RuntimeError):
    """Recovery is impossible: every node crashed (or retries exhausted)."""


# Injection-schedule kinds, shared by the simulator and the real-process
# executor.  ``FaultPlan.injection_schedule`` emits (kind, target,
# ordinal) tuples using exactly these names.
INJECT_KILL = "kill"
INJECT_STALL = "stall"
INJECT_SLOW = "slow"
INJECT_ERROR = "error"
INJECT_SHM_LOSS = "shm_loss"

# Stream salts 1 and 2 belong to the simulator's transport and disk
# draws; 3 and 4 seed the substrate-independent injection schedule.
_SALT_INJECT_ERROR = 3
_SALT_INJECT_LOSS = 4


@dataclass(frozen=True)
class CrashFault:
    """Kill ``node_id`` at ``at_time`` or after ``after_tuples`` scanned.

    Exactly one trigger must be given.  ``after_tuples`` counts tuples the
    node scans off its fragment (the ``tuples_scanned`` metric), which
    pins the crash inside phase 1 regardless of timing details.  A crash
    scheduled after the node would naturally finish never fires.
    """

    node_id: int
    at_time: float | None = None
    after_tuples: int | None = None

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.after_tuples is None):
            raise FaultConfigError(
                "a CrashFault needs exactly one of at_time/after_tuples"
            )
        if self.at_time is not None and self.at_time < 0:
            raise FaultConfigError("at_time must be non-negative")
        if self.after_tuples is not None and self.after_tuples < 1:
            raise FaultConfigError("after_tuples must be at least 1")


@dataclass(frozen=True)
class Straggler:
    """Run ``node_id``'s CPU and disk ``slowdown`` times slower."""

    node_id: int
    slowdown: float

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise FaultConfigError(
                "slowdown must be >= 1 (it multiplies durations)"
            )


@dataclass(frozen=True)
class WorkerStall:
    """Freeze ``node_id`` for ``seconds`` — the limplock scenario.

    On the real-process substrate the fragment's worker SIGSTOPs itself
    at job start and is SIGCONTed ``seconds`` later; the heartbeat
    monitor sees
    the beats stop and can retire the worker before the job timeout.
    The simulator has no process to stop, so a stall is a no-op there —
    it exists so one plan can describe a real-process limplock scenario
    alongside simulator faults.  Fires at most once per query.
    """

    node_id: int
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise FaultConfigError("stall seconds must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """Everything injected into one simulated run (immutable, seedable).

    Attributes
    ----------
    seed:
        Seeds every probabilistic draw (message loss/duplication, disk
        errors).  Same plan + same workload = identical runs.
    crashes:
        :class:`CrashFault` entries; each fires at most once per query,
        even across recovery attempts.
    stragglers:
        :class:`Straggler` entries; persist across recovery attempts.
    worker_stalls:
        :class:`WorkerStall` entries — real-process limplock (SIGSTOP/
        SIGCONT); ignored by the simulator, one per node, fire once.
    message_loss:
        Per-transmission drop probability for data messages.  Lost blocks
        are retransmitted by the reliable transport (ack timeout +
        bounded exponential backoff), so delivery is delayed, never
        abandoned; zero-byte control messages are piggy-backed and exempt.
    message_duplication:
        Probability a delivered data message arrives twice; the duplicate
        is suppressed by the transport's sequence numbers (counted in
        ``duplicates_dropped``) but still occupies the network.
    read_error_rate:
        Per-request probability a disk read fails transiently and is
        re-issued once (doubling that request's latency).
    ack_timeout:
        Seconds the transport waits for an ack before retransmitting.
    backoff:
        Multiplier applied to the retransmission delay per attempt.
    max_backoff:
        Upper bound on any single retransmission delay.
    max_send_retries:
        Cap on retransmissions per message; the draw is truncated there,
        so delivery is guaranteed within a bounded delay.
    detection_timeout:
        Heartbeat timeout: seconds after a crash before the survivors
        declare the node dead and recovery starts.
    max_recovery_attempts:
        Cap on restart attempts before giving up with ClusterLostError.
    """

    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    worker_stalls: tuple[WorkerStall, ...] = ()
    message_loss: float = 0.0
    message_duplication: float = 0.0
    read_error_rate: float = 0.0
    ack_timeout: float = 0.01
    backoff: float = 2.0
    max_backoff: float = 0.25
    max_send_retries: int = 12
    detection_timeout: float = 0.05
    max_recovery_attempts: int = 8

    def __post_init__(self) -> None:
        for name in ("message_loss", "message_duplication",
                     "read_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise FaultConfigError(f"{name} must be in [0, 1)")
        if self.ack_timeout <= 0:
            raise FaultConfigError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise FaultConfigError("backoff must be >= 1")
        if self.max_backoff < self.ack_timeout:
            raise FaultConfigError("max_backoff must be >= ack_timeout")
        if self.max_send_retries < 1:
            raise FaultConfigError("max_send_retries must be at least 1")
        if self.detection_timeout < 0:
            raise FaultConfigError("detection_timeout must be non-negative")
        if self.max_recovery_attempts < 1:
            raise FaultConfigError("max_recovery_attempts must be >= 1")
        seen: set[int] = set()
        for crash in self.crashes:
            if crash.node_id in seen:
                raise FaultConfigError(
                    f"node {crash.node_id} has more than one CrashFault"
                )
            seen.add(crash.node_id)
        stalled: set[int] = set()
        for stall in self.worker_stalls:
            if stall.node_id in stalled:
                raise FaultConfigError(
                    f"node {stall.node_id} has more than one WorkerStall"
                )
            stalled.add(stall.node_id)

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return bool(
            self.crashes
            or self.stragglers
            or self.worker_stalls
            or self.message_loss
            or self.message_duplication
            or self.read_error_rate
        )

    def start(self) -> "FaultSchedule":
        """The mutable per-query state (crash consumption across attempts)."""
        return FaultSchedule(self)

    def injection_schedule(
        self, node_ids, attempts: int = 1
    ) -> list[tuple[str, int, int]]:
        """The substrate-independent injected-fault schedule.

        Returns ``(kind, target, ordinal)`` tuples — ``kind`` one of the
        ``INJECT_*`` constants, ``target`` the original node id (equal to
        the fragment index on the mp substrate), ``ordinal`` the attempt
        number the fault fires on.  One-shot faults (kills, stalls) fire
        at ordinal 0; stragglers limp on every attempt; the probabilistic
        kinds (injected errors from ``read_error_rate``, shared-memory
        loss from ``message_loss``) draw per attempt from the same
        per-(seed, node, purpose) streams on every substrate, so the
        schedule is a pure function of (plan, node_ids, attempts).
        """
        if attempts < 1:
            raise FaultConfigError("attempts must be at least 1")
        crash_nodes = {c.node_id for c in self.crashes}
        stall_nodes = {s.node_id for s in self.worker_stalls}
        slow_nodes = {s.node_id for s in self.stragglers}
        entries: list[tuple[str, int, int]] = []
        for orig in node_ids:
            if orig in crash_nodes:
                entries.append((INJECT_KILL, orig, 0))
            if orig in stall_nodes:
                entries.append((INJECT_STALL, orig, 0))
            if orig in slow_nodes:
                entries.extend(
                    (INJECT_SLOW, orig, a) for a in range(attempts)
                )
            if self.read_error_rate:
                rng = _stream(self.seed, orig, _SALT_INJECT_ERROR)
                entries.extend(
                    (INJECT_ERROR, orig, a)
                    for a in range(attempts)
                    if rng.random() < self.read_error_rate
                )
            if self.message_loss:
                rng = _stream(self.seed, orig, _SALT_INJECT_LOSS)
                entries.extend(
                    (INJECT_SHM_LOSS, orig, a)
                    for a in range(attempts)
                    if rng.random() < self.message_loss
                )
        return entries


@dataclass
class FaultSchedule:
    """Tracks which one-shot faults already fired during one query."""

    plan: FaultPlan
    consumed_crashes: set[int] = field(default_factory=set)

    def runtime(self, node_ids: list[int]) -> "FaultRuntime":
        """The runtime for one attempt over the surviving ``node_ids``."""
        return FaultRuntime(self, node_ids)


def _stream(seed: int, orig_id: int, salt: int) -> random.Random:
    # Distinct deterministic streams per (plan seed, node, purpose);
    # plain integer arithmetic so the seed is stable across processes.
    return random.Random(
        (seed * 2_654_435_761 + orig_id * 40_503 + salt) % (2**63)
    )


class FaultRuntime:
    """What the engine consults during one attempt (index-mapped view)."""

    def __init__(self, schedule: FaultSchedule, node_ids: list[int]) -> None:
        self.schedule = schedule
        self.plan = schedule.plan
        self.node_ids = list(node_ids)
        plan = self.plan
        self._crash_by_orig = {c.node_id: c for c in plan.crashes}
        self._slowdown_by_orig = {
            s.node_id: s.slowdown for s in plan.stragglers
        }
        self._net_rng = [
            _stream(plan.seed, orig, 1) for orig in self.node_ids
        ]
        self._disk_rng = [
            _stream(plan.seed, orig, 2) for orig in self.node_ids
        ]

    # -- stragglers ---------------------------------------------------------

    def slowdown(self, index: int) -> float:
        return self._slowdown_by_orig.get(self.node_ids[index], 1.0)

    # -- crashes ------------------------------------------------------------

    def _crash_for(self, index: int) -> CrashFault | None:
        orig = self.node_ids[index]
        if orig in self.schedule.consumed_crashes:
            return None
        return self._crash_by_orig.get(orig)

    def crash_time(self, index: int) -> float | None:
        crash = self._crash_for(index)
        return None if crash is None else crash.at_time

    def crash_after_tuples(self, index: int) -> int | None:
        crash = self._crash_for(index)
        return None if crash is None else crash.after_tuples

    def note_crash(self, index: int) -> int:
        """Mark the node's crash as fired; returns the original node id."""
        orig = self.node_ids[index]
        self.schedule.consumed_crashes.add(orig)
        return orig

    # -- unreliable transport ----------------------------------------------

    def message_drops(self, index: int) -> int:
        """How many transmissions of this message are lost (bounded)."""
        if not self.plan.message_loss:
            return 0
        rng = self._net_rng[index]
        drops = 0
        while (
            drops < self.plan.max_send_retries
            and rng.random() < self.plan.message_loss
        ):
            drops += 1
        return drops

    def duplicate(self, index: int) -> bool:
        if not self.plan.message_duplication:
            return False
        return self._net_rng[index].random() < self.plan.message_duplication

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retransmission number ``attempt`` (bounded)."""
        return min(
            self.plan.ack_timeout * (self.plan.backoff**attempt),
            self.plan.max_backoff,
        )

    # -- disk ---------------------------------------------------------------

    def read_error(self, index: int) -> bool:
        if not self.plan.read_error_rate:
            return False
        return self._disk_rng[index].random() < self.plan.read_error_rate

    # -- substrate-independent injection view -------------------------------

    def injection_schedule(self, attempts: int = 1) -> list[tuple[str, int, int]]:
        """The plan's schedule restricted to this attempt's node ids."""
        return self.plan.injection_schedule(self.node_ids, attempts)
