"""Failure recovery: re-execute a crashed node's work on survivors.

The recovery protocol is restart-with-takeover, the shared-nothing
equivalent of MapReduce-style task re-execution:

1. An attempt runs under the :class:`~repro.sim.faults.FaultPlan`.  If a
   node crashes, the engine raises
   :class:`~repro.sim.faults.NodeCrashedError` once the event heap drains,
   carrying the partial metrics of the doomed attempt.
2. Survivors declare the node dead after the plan's heartbeat
   ``detection_timeout``, and the dead node's fragment(s) are handed
   round-robin to surviving peers, who re-read and re-aggregate them from
   their (logically replicated) disks.  If the dead node was node 0 — the
   coordinator for C-2P and Sampling — the first survivor inherits the
   coordinator role (``coordinator_failover`` trace event).
3. The query restarts on the shrunken cluster.  Each crash fires at most
   once per query (consumed in the plan's schedule), stragglers keep
   straggling, and the lossy-transport faults keep applying, so recovery
   itself runs under degraded conditions.

Restart-based recovery keeps every algorithm body *unchanged*: an attempt
is just a normal simulated run over a different node-to-fragment
assignment.  Exactness is free — the surviving cluster recomputes the
answer from base data, so no in-flight partial aggregate can be double
counted.  The price is re-execution time, which is precisely what the
merged metrics expose: ``reexecuted_tuples`` on the takeover nodes,
``retries``/``timeouts`` from the transport, and per-node
``degraded_makespan`` including every detection delay and restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.params import SystemParameters
from repro.sim.cluster import Cluster
from repro.sim.events import TraceEvent
from repro.sim.faults import ClusterLostError, FaultPlan, NodeCrashedError
from repro.sim.metrics import ClusterMetrics, NodeMetrics
from repro.storage.relation import Fragment, Relation

_ADDITIVE_FIELDS = (
    "cpu_seconds",
    "io_read_seconds",
    "io_write_seconds",
    "pages_read",
    "pages_written",
    "spill_pages",
    "messages_sent",
    "messages_received",
    "blocks_sent",
    "bytes_sent",
    "tuples_scanned",
    "tuples_aggregated",
    "groups_output",
    "retries",
    "timeouts",
    "duplicates_dropped",
    "mem_spill_bytes",
    "mem_stall_seconds",
)


@dataclass
class ResilientRun:
    """The outcome of a fault-injected run, merged over all attempts."""

    elapsed_seconds: float
    node_results: list
    metrics: ClusterMetrics
    trace: list[TraceEvent] = field(default_factory=list)
    timelines: list = field(default_factory=list)
    attempts: int = 1
    crashed_nodes: list[int] = field(default_factory=list)
    # Per-attempt (node_ids, ClusterMetrics) pairs, in attempt order —
    # the unmerged inputs to ``metrics``, for attribution and auditing.
    attempt_metrics: list = field(default_factory=list)


def _merge_attempts(
    records, num_original: int, reexecuted: dict[int, int], active: bool
) -> ClusterMetrics:
    """Fold per-attempt metrics into one view keyed by original node id."""
    nodes = [NodeMetrics(i) for i in range(num_original)]
    network_busy = 0.0
    network_blocks = 0
    for node_ids, metrics, base, _trace in records:
        network_busy += metrics.network_busy_seconds
        network_blocks += metrics.network_blocks
        for sim_index, nm in enumerate(metrics.nodes):
            acc = nodes[node_ids[sim_index]]
            for name in _ADDITIVE_FIELDS:
                setattr(acc, name, getattr(acc, name) + getattr(nm, name))
            acc.peak_table_entries = max(
                acc.peak_table_entries, nm.peak_table_entries
            )
            acc.mem_high_water_bytes = max(
                acc.mem_high_water_bytes, nm.mem_high_water_bytes
            )
            for rung, count in nm.mem_ladder_rungs.items():
                acc.mem_ladder_rungs[rung] = (
                    acc.mem_ladder_rungs.get(rung, 0) + count
                )
            # Later attempts overwrite: a node's finish time is where its
            # *last* attempt left it (absolute, detection delays included).
            acc.finish_time = base + nm.finish_time
            acc.crashed = acc.crashed or nm.crashed
            for tag, seconds in nm.tagged_seconds.items():
                acc.add_tagged(tag, seconds)
    for orig, count in reexecuted.items():
        nodes[orig].reexecuted_tuples = count
    if active:
        for acc in nodes:
            acc.degraded_makespan = acc.finish_time
    return ClusterMetrics(
        nodes=nodes,
        network_busy_seconds=network_busy,
        network_blocks=network_blocks,
    )


def run_resilient(
    params: SystemParameters,
    fragments: list[Fragment],
    plan: FaultPlan,
    program_for,
    record_timeline: bool = False,
    node_speed_factors=None,
    memory=None,
    tracer=None,
    ledger=None,
) -> ResilientRun:
    """Run ``program_for(ctx, fragment)`` per node, surviving crashes.

    ``fragments`` is the original placement (index == node id);
    ``node_speed_factors`` is indexed by original node id and follows a
    node's work to wherever it lives after takeover.  ``memory`` is an
    optional :class:`~repro.resources.MemoryPolicy`: each attempt gets a
    fresh governor sized to the surviving cluster, so the ladder
    composes with crash recovery (takeover nodes feel *more* pressure,
    since they aggregate extra fragments under the same budget).

    With a ``tracer``, all attempts record into one timeline: before
    each attempt the tracer's ``time_offset`` is set to the attempt's
    absolute start and its ``track_map`` to the sim-index → original
    node id mapping, so a crashed-and-recovered query exports as a
    single coherent trace.  A ``ledger``
    (:class:`~repro.obs.DecisionLedger`) gets the same treatment, so
    decision events carry absolute times on original node ids.
    """
    num_original = len(fragments)
    if params.num_nodes != num_original:
        raise ValueError(
            f"params.num_nodes={params.num_nodes} but got "
            f"{num_original} fragments"
        )
    schema = fragments[0].relation.schema
    schedule = plan.start()
    node_ids = list(range(num_original))
    assignment: dict[int, list[Fragment]] = {
        i: [fragments[i]] for i in node_ids
    }
    base_time = 0.0
    records = []
    extra_trace: list[TraceEvent] = []
    crashed_overall: list[int] = []
    attempts = 0

    while True:
        attempts += 1
        if attempts > plan.max_recovery_attempts:
            raise ClusterLostError(
                f"gave up after {plan.max_recovery_attempts} recovery "
                f"attempts; crashed so far: {sorted(crashed_overall)}"
            )
        attempt_params = (
            params
            if len(node_ids) == num_original
            else params.with_(num_nodes=len(node_ids))
        )
        combined: list[Fragment] = []
        for sim_index, orig in enumerate(node_ids):
            owned = assignment[orig]
            if len(owned) == 1:
                relation = owned[0].relation
            else:
                rows: list = []
                for frag in owned:
                    rows.extend(frag.relation.rows)
                relation = Relation(schema, rows)
            combined.append(Fragment(sim_index, relation))
        factories = [
            (lambda ctx, frag=frag: program_for(ctx, frag))
            for frag in combined
        ]
        speeds = None
        if node_speed_factors is not None:
            speeds = [node_speed_factors[orig] for orig in node_ids]
        cluster = Cluster(attempt_params)
        if tracer is not None:
            tracer.time_offset = base_time
            tracer.track_map = dict(enumerate(node_ids))
        if ledger is not None:
            ledger.time_offset = base_time
            ledger.track_map = dict(enumerate(node_ids))
        try:
            result = cluster.run(
                factories,
                record_timeline=record_timeline,
                node_speed_factors=speeds,
                faults=schedule.runtime(node_ids),
                memory=memory,
                tracer=tracer,
                ledger=ledger,
            )
        except NodeCrashedError as exc:
            records.append((list(node_ids), exc.metrics, base_time, exc.trace))
            detection = max(exc.crashed.values()) + plan.detection_timeout
            survivors = [
                orig
                for sim_index, orig in enumerate(node_ids)
                if sim_index not in exc.crashed
            ]
            if not survivors:
                raise ClusterLostError(
                    "every node crashed; nothing left to recover on"
                ) from exc
            dead_fragments: list[Fragment] = []
            for sim_index in sorted(exc.crashed):
                orig = node_ids[sim_index]
                crashed_overall.append(orig)
                dead_fragments.extend(assignment.pop(orig))
                if tracer is not None:
                    # sim_index so the attempt's track_map applies.
                    tracer.instant(
                        "crash_detected", sim_index, detection, node=orig
                    )
                extra_trace.append(
                    TraceEvent(
                        base_time + detection,
                        orig,
                        "crash_detected",
                        {
                            "node": orig,
                            "crashed_at": base_time + exc.crashed[sim_index],
                        },
                    )
                )
            if 0 in exc.crashed:
                extra_trace.append(
                    TraceEvent(
                        base_time + detection,
                        survivors[0],
                        "coordinator_failover",
                        {"old": node_ids[0], "new": survivors[0]},
                    )
                )
                if tracer is not None:
                    tracer.instant(
                        "coordinator_failover",
                        node_ids.index(survivors[0]),
                        detection,
                        old=node_ids[0], new=survivors[0],
                    )
            for j, frag in enumerate(dead_fragments):
                owner = survivors[j % len(survivors)]
                assignment[owner].append(frag)
                extra_trace.append(
                    TraceEvent(
                        base_time + detection,
                        owner,
                        "takeover",
                        {"from_node": frag.node_id, "tuples": len(frag)},
                    )
                )
                if tracer is not None:
                    tracer.instant(
                        "takeover", node_ids.index(owner), detection,
                        from_node=frag.node_id, tuples=len(frag),
                    )
            node_ids = survivors
            base_time += detection
            continue

        records.append((list(node_ids), result.metrics, base_time, result.trace))
        reexecuted = {
            orig: sum(len(frag) for frag in assignment[orig][1:])
            for orig in node_ids
        }
        metrics = _merge_attempts(
            records, num_original, reexecuted, plan.active
        )
        trace: list[TraceEvent] = []
        for ids, _metrics, base, attempt_trace in records:
            for event in attempt_trace:
                trace.append(
                    TraceEvent(
                        base + event.time,
                        ids[event.node],
                        event.what,
                        event.detail,
                    )
                )
        trace.extend(extra_trace)
        trace.sort(key=lambda event: event.time)
        return ResilientRun(
            elapsed_seconds=metrics.makespan,
            node_results=result.node_results,
            metrics=metrics,
            trace=trace,
            timelines=result.timelines,
            attempts=attempts,
            crashed_nodes=sorted(crashed_overall),
            attempt_metrics=[(ids, m) for ids, m, _base, _tr in records],
        )
