"""The two Section 2 interconnect models.

* :class:`LatencyNetwork` — "high speed, high bandwidth network as in
  commercial multiprocessors like IBM SP-2 ... modeled only by the latency
  to send a message i.e. it has unlimited bandwidth".  Any number of
  transfers proceed in parallel; each takes m_l per block.

* :class:`SharedBusNetwork` — "slow speed, limited bandwidth network like
  the Ethernet ... modeled as a sequential resource where sending a fixed
  amount of data will take a fixed amount of time independent of the number
  of processors involved".  One transfer at a time; a transfer occupies the
  bus for m_l per block.

Both report their cumulative busy time so benchmarks can show network
utilization.
"""

from __future__ import annotations

from repro.costmodel.params import NetworkKind, SystemParameters


class LatencyNetwork:
    """Unlimited-bandwidth network: per-block latency, full parallelism."""

    def __init__(self, seconds_per_block: float) -> None:
        if seconds_per_block < 0:
            raise ValueError("seconds_per_block must be non-negative")
        self.seconds_per_block = seconds_per_block
        self.busy_seconds = 0.0
        self.blocks_carried = 0

    def transfer(self, ready_time: float, blocks: int) -> float:
        """Delivery time of ``blocks`` handed to the NIC at ``ready_time``."""
        if blocks <= 0:
            return ready_time
        duration = blocks * self.seconds_per_block
        self.busy_seconds += duration
        self.blocks_carried += blocks
        return ready_time + duration


class SharedBusNetwork:
    """Ethernet-like bus: transfers serialize globally in FIFO order."""

    def __init__(self, seconds_per_block: float) -> None:
        if seconds_per_block < 0:
            raise ValueError("seconds_per_block must be non-negative")
        self.seconds_per_block = seconds_per_block
        self.busy_seconds = 0.0
        self.blocks_carried = 0
        self._free_at = 0.0

    def transfer(self, ready_time: float, blocks: int) -> float:
        if blocks <= 0:
            return ready_time
        start = max(self._free_at, ready_time)
        duration = blocks * self.seconds_per_block
        self._free_at = start + duration
        self.busy_seconds += duration
        self.blocks_carried += blocks
        return self._free_at


def make_network(params: SystemParameters):
    """Build the network model the parameter set asks for."""
    if params.network is NetworkKind.LIMITED_BANDWIDTH:
        return SharedBusNetwork(params.m_l)
    return LatencyNetwork(params.m_l)
