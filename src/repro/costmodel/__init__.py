"""Analytical cost models from Sections 2–4 of the paper.

Every model returns a :class:`~repro.costmodel.base.CostBreakdown` so the
benchmarks can report per-phase components as well as totals.  The models
are deliberately simple — no CPU/IO/message overlap, all nodes perfectly
parallel — because, as the paper says, their job is to predict *relative*
performance across grouping selectivities, not absolute running times.
"""

from repro.costmodel.adaptive import (
    adaptive_repartitioning_cost,
    adaptive_two_phase_cost,
    sampling_cost,
)
from repro.costmodel.base import CostBreakdown
from repro.costmodel.globalhash import choose_mp_strategy, global_hash_cost
from repro.costmodel.params import NetworkKind, SystemParameters
from repro.costmodel.traditional import (
    centralized_two_phase_cost,
    repartitioning_cost,
    two_phase_cost,
)
from repro.costmodel.scaleup import scaleup_series

MODEL_FUNCTIONS = {
    "centralized_two_phase": centralized_two_phase_cost,
    "two_phase": two_phase_cost,
    "repartitioning": repartitioning_cost,
    "sampling": sampling_cost,
    "adaptive_two_phase": adaptive_two_phase_cost,
    "adaptive_repartitioning": adaptive_repartitioning_cost,
    # Not a simulator algorithm: the mp executor's shared-table strategy
    # (strategy="global"), modelled so the planner and the DecisionLedger
    # can choose and judge it like the paper's own algorithms.
    "global_hash": global_hash_cost,
}


def model_cost(name: str, params, selectivity: float) -> CostBreakdown:
    """Evaluate the named algorithm's analytical model."""
    try:
        func = MODEL_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown cost model {name!r}; expected one of "
            f"{sorted(MODEL_FUNCTIONS)}"
        ) from None
    return func(params, selectivity)


__all__ = [
    "CostBreakdown",
    "MODEL_FUNCTIONS",
    "NetworkKind",
    "SystemParameters",
    "adaptive_repartitioning_cost",
    "adaptive_two_phase_cost",
    "centralized_two_phase_cost",
    "choose_mp_strategy",
    "global_hash_cost",
    "model_cost",
    "repartitioning_cost",
    "sampling_cost",
    "scaleup_series",
    "two_phase_cost",
]
