"""Shared pieces of the analytical cost models.

Conventions (following Section 2):

* All nodes are perfectly parallel and CPU, I/O and messages do not
  overlap, so elapsed time = the per-node sum of phase components (plus the
  coordinator's sequential phase for Centralized Two Phase).
* The network contributes latency per message block.  Under
  ``NetworkKind.HIGH_BANDWIDTH`` transfers from different nodes proceed in
  parallel (per-node latency counts once); under
  ``NetworkKind.LIMITED_BANDWIDTH`` the network is a sequential shared
  resource, so the elapsed contribution is the *total* blocks sent by all
  nodes times m_l — "sending a fixed amount of data will take a fixed
  amount of time independent of the number of processors involved".
* Overflow terms follow the typo-corrected reading
  ``max(0, 1 − M/(expected groups fed to the table))`` — the fraction of
  groups (and hence, under uniformity, of tuples) that miss the in-memory
  table and need one extra write+read of their projected bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel.params import NetworkKind, SystemParameters


@dataclass
class CostBreakdown:
    """Per-component cost of one algorithm at one selectivity (seconds)."""

    algorithm: str
    selectivity: float
    components: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(
                f"negative cost component {name}={seconds} "
                f"in {self.algorithm}"
            )
        self.components[name] = self.components.get(name, 0.0) + seconds

    def extend(self, other: "CostBreakdown", prefix: str = "") -> None:
        for name, seconds in other.components.items():
            self.add(prefix + name, seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.components.values())

    def component(self, name: str) -> float:
        return self.components.get(name, 0.0)


def overflow_fraction(expected_groups: float, max_entries: int) -> float:
    """Fraction of input that misses an M-entry table, in [0, 1]."""
    if expected_groups <= 0:
        return 0.0
    return max(0.0, 1.0 - max_entries / expected_groups)


def overflow_io_seconds(
    params: SystemParameters,
    expected_groups: float,
    spool_bytes: float,
    pipeline: bool = False,
) -> float:
    """The '(1 − M/S)·…·2·IO' term: spool out + read back the overflow.

    Intermediate spill I/O happens regardless of whether the operator sits
    in a pipeline, so ``pipeline`` is accepted only for symmetry and
    ignored.
    """
    frac = overflow_fraction(expected_groups, params.hash_table_entries)
    return frac * params.pages(spool_bytes) * 2.0 * params.io_seconds


def scan_seconds(
    params: SystemParameters, num_tuples: float, pipeline: bool
) -> float:
    """Sequential scan I/O for ``num_tuples`` local tuples (0 in a pipeline)."""
    if pipeline:
        return 0.0
    return params.pages(num_tuples * params.tuple_bytes) * params.io_seconds


def store_seconds(
    params: SystemParameters, result_bytes: float, pipeline: bool
) -> float:
    """Result store I/O (0 when the parent operator consumes the stream)."""
    if pipeline:
        return 0.0
    return params.pages(result_bytes) * params.io_seconds


def send_latency_seconds(
    params: SystemParameters,
    blocks_per_node: float,
    num_senders: int | None = None,
) -> float:
    """Elapsed network latency for each of N nodes sending ``blocks_per_node``.

    High bandwidth: transfers overlap across nodes, contribute
    ``blocks_per_node · m_l``.  Limited bandwidth: the bus serializes, so
    every node's elapsed time includes the *total* traffic.
    """
    if blocks_per_node < 0:
        raise ValueError("blocks_per_node must be non-negative")
    senders = params.num_nodes if num_senders is None else num_senders
    if params.network is NetworkKind.LIMITED_BANDWIDTH:
        return blocks_per_node * senders * params.m_l
    return blocks_per_node * params.m_l
