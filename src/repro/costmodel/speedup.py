"""Analytical speedup: fixed problem, growing machine.

The paper reports scaleup (Figures 5–6); speedup is the companion
experiment its successors usually report instead.  Here the relation is
fixed while N grows, so per-node data shrinks — the regime where
per-processor overheads (the sampling cost, message protocol per block)
eventually bite, bounding speedup below ideal.
"""

from __future__ import annotations

from repro.costmodel.scaleup import DEFAULT_NODE_COUNTS, _cost_fn
from repro.costmodel.params import SystemParameters


def speedup_series(
    algorithm: str,
    params: SystemParameters,
    selectivity: float,
    node_counts=DEFAULT_NODE_COUNTS,
) -> list[tuple[int, float, float]]:
    """(N, elapsed_seconds, speedup) with the relation held fixed.

    Speedup is normalized to the first node count; ideal at N is
    N / node_counts[0].
    """
    counts = list(node_counts)
    if not counts:
        raise ValueError("node_counts must be non-empty")
    if counts != sorted(counts):
        raise ValueError("node_counts must be ascending")
    fn = _cost_fn(algorithm)
    times = [
        fn(params.with_(num_nodes=n), selectivity).total_seconds
        for n in counts
    ]
    baseline = times[0]
    return [
        (n, t, baseline / t if t > 0 else float("inf"))
        for n, t in zip(counts, times)
    ]


def parallel_efficiency(
    algorithm: str,
    params: SystemParameters,
    selectivity: float,
    node_counts=DEFAULT_NODE_COUNTS,
) -> list[tuple[int, float]]:
    """(N, speedup / ideal) — 1.0 is perfect parallel efficiency."""
    counts = list(node_counts)
    series = speedup_series(algorithm, params, selectivity, counts)
    base = counts[0]
    return [(n, su / (n / base)) for n, _t, su in series]
