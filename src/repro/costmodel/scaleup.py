"""Scaleup analysis (Figures 5 and 6).

Scaleup holds the per-node data constant while growing the machine: at N
nodes the relation has N × |R_1| tuples.  The reported metric is
``T(baseline) / T(N)`` — 1.0 everywhere is ideal scaleup (the bigger
machine chews the proportionally bigger problem in the same time).

The paper fixes the *selectivity* (2.0e-6 and 0.25), so the group count
grows with the relation, and uses a crossover threshold of 100·N for the
Sampling algorithm — which is why Sampling's overhead is a constant per
processor and its scaleup slightly suboptimal.
"""

from __future__ import annotations

from repro.costmodel.adaptive import (
    adaptive_repartitioning_cost,
    adaptive_two_phase_cost,
    sampling_cost,
)
from repro.costmodel.params import SystemParameters
from repro.costmodel.traditional import (
    centralized_two_phase_cost,
    repartitioning_cost,
    two_phase_cost,
)

DEFAULT_NODE_COUNTS = (2, 4, 8, 16, 32, 64)


def _cost_fn(name: str):
    plain = {
        "centralized_two_phase": centralized_two_phase_cost,
        "two_phase": two_phase_cost,
        "repartitioning": repartitioning_cost,
        "adaptive_two_phase": adaptive_two_phase_cost,
        "adaptive_repartitioning": adaptive_repartitioning_cost,
    }
    if name in plain:
        return plain[name]
    if name == "sampling":
        # The scaleup experiments use the paper's 100·N crossover.
        def fn(params: SystemParameters, selectivity: float):
            return sampling_cost(
                params, selectivity, threshold=100 * params.num_nodes
            )

        return fn
    raise KeyError(f"unknown algorithm {name!r} for scaleup")


def scaleup_series(
    algorithm: str,
    params: SystemParameters,
    selectivity: float,
    node_counts=DEFAULT_NODE_COUNTS,
) -> list[tuple[int, float, float]]:
    """(N, elapsed_seconds, scaleup) for each node count.

    ``params`` fixes the per-node data volume (its num_tuples / num_nodes
    ratio); each point re-instantiates the system at N nodes with N × that
    volume.  Scaleup is normalized to the first node count in the list.
    """
    counts = list(node_counts)
    if not counts:
        raise ValueError("node_counts must be non-empty")
    if counts != sorted(counts):
        raise ValueError("node_counts must be ascending")
    fn = _cost_fn(algorithm)
    times = [
        fn(params.scaleup_instance(n), selectivity).total_seconds
        for n in counts
    ]
    baseline = times[0]
    return [
        (n, t, baseline / t if t > 0 else float("inf"))
        for n, t in zip(counts, times)
    ]
