"""Cost models of the three traditional algorithms (Sections 2.1–2.3).

Each function returns the modelled elapsed time for the whole query at one
grouping selectivity, broken into the paper's phase components.  Set
``pipeline=True`` to drop base-relation scan and result-store I/O, which is
the Figure 2 scenario (aggregation fed by / feeding other operators).
"""

from __future__ import annotations

from repro.costmodel.base import (
    CostBreakdown,
    overflow_io_seconds,
    scan_seconds,
    send_latency_seconds,
    store_seconds,
)
from repro.costmodel.params import SystemParameters


def _local_aggregation_phase(
    breakdown: CostBreakdown,
    params: SystemParameters,
    selectivity: float,
    pipeline: bool,
) -> float:
    """Phase 1 shared by C-2P and 2P; returns bytes of partials sent/node."""
    s_l = params.local_selectivity(selectivity)
    r_i_tuples = params.tuples_per_node
    r_i_bytes = params.node_bytes
    p = params.projectivity

    breakdown.add("scan_io", scan_seconds(params, r_i_tuples, pipeline))
    breakdown.add("select_cpu", r_i_tuples * (params.t_r + params.t_w))
    breakdown.add(
        "local_agg_cpu",
        r_i_tuples * (params.t_r + params.t_h + params.t_a),
    )
    breakdown.add(
        "local_overflow_io",
        overflow_io_seconds(
            params,
            expected_groups=s_l * r_i_tuples,
            spool_bytes=p * r_i_bytes,
        ),
    )
    breakdown.add("local_result_cpu", r_i_tuples * s_l * params.t_w)

    partial_bytes = p * r_i_bytes * s_l
    blocks = params.blocks(partial_bytes)
    breakdown.add("send_protocol_cpu", blocks * params.m_p)
    breakdown.add("send_latency", send_latency_seconds(params, blocks))
    return partial_bytes


def centralized_two_phase_cost(
    params: SystemParameters, selectivity: float, pipeline: bool = False
) -> CostBreakdown:
    """C-2P: parallel local aggregation, sequential merge at a coordinator.

    The merge phase receives |G| = |R|·S_l partials at one node, which is
    the bottleneck the moment the group count stops being tiny.
    """
    breakdown = CostBreakdown("centralized_two_phase", selectivity)
    s_l = params.local_selectivity(selectivity)
    s_g = params.global_selectivity(selectivity)
    _local_aggregation_phase(breakdown, params, selectivity, pipeline)

    merge_tuples = params.num_tuples * s_l          # |G|
    merge_bytes = params.projectivity * params.relation_bytes * s_l  # G
    breakdown.add(
        "coord_recv_protocol_cpu", params.blocks(merge_bytes) * params.m_p
    )
    breakdown.add("coord_merge_cpu", merge_tuples * (params.t_r + params.t_a))
    breakdown.add(
        "coord_overflow_io",
        overflow_io_seconds(
            params,
            expected_groups=s_g * merge_tuples,
            spool_bytes=merge_bytes,
        ),
    )
    breakdown.add("coord_result_cpu", merge_tuples * s_g * params.t_w)
    breakdown.add(
        "store_io", store_seconds(params, merge_bytes * s_g, pipeline)
    )
    return breakdown


def two_phase_cost(
    params: SystemParameters, selectivity: float, pipeline: bool = False
) -> CostBreakdown:
    """2P: local aggregation, then hash-partitioned *parallel* merge.

    Works well while the group count is small; at large group counts it
    duplicates aggregation work across the two phases and its total memory
    demand grows with N copies of each group.
    """
    breakdown = CostBreakdown("two_phase", selectivity)
    s_l = params.local_selectivity(selectivity)
    s_g = params.global_selectivity(selectivity)
    _local_aggregation_phase(breakdown, params, selectivity, pipeline)

    merge_tuples = params.tuples_per_node * s_l     # |G_i|
    merge_bytes = params.projectivity * params.node_bytes * s_l  # G_i
    breakdown.add(
        "merge_recv_protocol_cpu", params.blocks(merge_bytes) * params.m_p
    )
    breakdown.add("merge_cpu", merge_tuples * (params.t_r + params.t_a))
    breakdown.add(
        "merge_overflow_io",
        overflow_io_seconds(
            params,
            expected_groups=s_g * merge_tuples,
            spool_bytes=merge_bytes,
        ),
    )
    breakdown.add("merge_result_cpu", merge_tuples * s_g * params.t_w)
    breakdown.add(
        "store_io", store_seconds(params, merge_bytes * s_g, pipeline)
    )
    return breakdown


def repartitioning_cost(
    params: SystemParameters, selectivity: float, pipeline: bool = False
) -> CostBreakdown:
    """Rep: hash-partition raw (projected) tuples, aggregate once.

    Each group is aggregated in exactly one place, so there is no duplicated
    work and the memory footprint is |G| entries total.  The costs are the
    network (every projected tuple crosses it) and, when |G| < N, idle
    processors: the busy nodes each aggregate |R| / min(|G|, N) tuples.
    """
    breakdown = CostBreakdown("repartitioning", selectivity)
    r_i_tuples = params.tuples_per_node
    r_i_bytes = params.node_bytes
    p = params.projectivity
    num_groups = params.num_groups(selectivity)

    breakdown.add("scan_io", scan_seconds(params, r_i_tuples, pipeline))
    breakdown.add(
        "select_cpu",
        r_i_tuples * (params.t_r + params.t_w + params.t_h + params.t_d),
    )
    blocks = params.blocks(p * r_i_bytes)
    breakdown.add("repartition_protocol_cpu", blocks * 2.0 * params.m_p)
    breakdown.add("send_latency", send_latency_seconds(params, blocks))

    # Aggregation phase: only min(|G|, N) nodes receive any tuples.
    busy = min(num_groups, params.num_nodes)
    agg_tuples = params.num_tuples / busy
    agg_bytes = p * params.relation_bytes / busy
    groups_per_busy = num_groups / busy
    breakdown.add("agg_cpu", agg_tuples * (params.t_r + params.t_a))
    breakdown.add(
        "agg_overflow_io",
        overflow_io_seconds(
            params, expected_groups=groups_per_busy, spool_bytes=agg_bytes
        ),
    )
    breakdown.add("result_cpu", groups_per_busy * params.t_w)
    result_bytes = agg_bytes * (groups_per_busy / agg_tuples)
    breakdown.add("store_io", store_seconds(params, result_bytes, pipeline))
    return breakdown
