"""Cost models of the three proposed algorithms (Sections 3.1–3.3, 4).

The paper gives approximate models; where its sketch would double count a
phase we decompose explicitly into the phases each node actually executes
(documented per function).  The decision points are modelled as the
algorithms would take them on uniform data:

* Sampling decides 2P vs Rep by comparing the (assumed correct) group
  count against the crossover threshold, and always pays the sampling
  overhead.
* Adaptive Two Phase switches exactly when the local hash table would
  overflow: after |P_i| = min(M / S_l, |R_i|) tuples.
* Adaptive Repartitioning abandons Rep (for A-2P) when the true group
  count is below the crossover threshold, after repartitioning the first
  ``init_seg`` tuples per node.
"""

from __future__ import annotations

from repro.costmodel.base import (
    CostBreakdown,
    overflow_io_seconds,
    scan_seconds,
    send_latency_seconds,
    store_seconds,
)
from repro.costmodel.params import SystemParameters
from repro.costmodel.traditional import repartitioning_cost, two_phase_cost
from repro.sampling.decision import (
    REPARTITIONING,
    choose_algorithm,
    crossover_threshold,
)
from repro.sampling.estimator import paper_sample_size


def default_crossover(params: SystemParameters) -> int:
    """The paper's default crossover threshold: 10 groups per processor."""
    return crossover_threshold(params.num_nodes, groups_per_node=10)


def sampling_cost(
    params: SystemParameters,
    selectivity: float,
    pipeline: bool = False,
    threshold: int | None = None,
    sample_multiplier: float = 10.0,
) -> CostBreakdown:
    """Samp: page-sample, estimate, then run 2P or Rep (Section 3.1).

    The overhead is a constant per processor (sample size ∝ threshold ∝ N),
    which is also why the algorithm's scaleup is slightly suboptimal.
    Sampling I/O uses the *random* page cost rIO.
    """
    if threshold is None:
        threshold = default_crossover(params)
    breakdown = CostBreakdown("sampling", selectivity)
    s_l = params.local_selectivity(selectivity)
    p = params.projectivity

    sample_total = paper_sample_size(threshold, sample_multiplier)
    sample_per_node = min(sample_total / params.num_nodes,
                          params.tuples_per_node)
    sample_bytes = sample_per_node * params.tuple_bytes

    breakdown.add(
        "sample_scan_io",
        params.pages(sample_bytes) * params.random_io_seconds,
    )
    breakdown.add(
        "sample_select_cpu", sample_per_node * (params.t_r + params.t_w)
    )
    breakdown.add(
        "sample_agg_cpu",
        sample_per_node * (params.t_r + params.t_h + params.t_a),
    )
    breakdown.add(
        "sample_result_cpu", sample_per_node * s_l * params.t_w
    )
    partial_blocks = params.blocks(p * sample_bytes * s_l)
    breakdown.add("sample_send_protocol_cpu", partial_blocks * params.m_p)
    breakdown.add(
        "sample_send_latency", send_latency_seconds(params, partial_blocks)
    )
    coord_tuples = sample_per_node * params.num_nodes * s_l
    coord_bytes = p * sample_bytes * params.num_nodes * s_l
    breakdown.add(
        "sample_coord_recv_cpu", params.blocks(coord_bytes) * params.m_p
    )
    breakdown.add("sample_coord_count_cpu", coord_tuples * params.t_r)

    # The decision: the sample's distinct count lower-bounds |G|; with the
    # paper's 10× sample the decision is correct, so charge the chosen
    # algorithm's full cost.
    choice = choose_algorithm(params.num_groups(selectivity), threshold)
    if choice == REPARTITIONING:
        chosen = repartitioning_cost(params, selectivity, pipeline)
    else:
        chosen = two_phase_cost(params, selectivity, pipeline)
    breakdown.extend(chosen)
    return breakdown


def adaptive_two_phase_cost(
    params: SystemParameters, selectivity: float, pipeline: bool = False
) -> CostBreakdown:
    """A-2P: run 2P until the local table fills, then Rep (Section 3.2).

    No switch (local groups fit in M): identical to 2P.  Switch: the first
    |P_i| = M/S_l tuples are aggregated locally, the accumulated M partials
    are flushed (hash-partitioned) to the merge phase, and the remaining
    tuples are repartitioned raw.  The merge phase absorbs both kinds into
    one hash table.
    """
    s_l = params.local_selectivity(selectivity)
    r_i = params.tuples_per_node
    local_groups = s_l * r_i
    if local_groups <= params.hash_table_entries:
        breakdown = two_phase_cost(params, selectivity, pipeline)
        breakdown.algorithm = "adaptive_two_phase"
        return breakdown

    breakdown = CostBreakdown("adaptive_two_phase", selectivity)
    p = params.projectivity
    m = params.hash_table_entries
    p_i = min(m / s_l, r_i)          # tuples before the table fills
    rem = r_i - p_i                  # tuples repartitioned raw
    num_groups = params.num_groups(selectivity)

    # Phase A: 2P-style local aggregation of the first p_i tuples.  By
    # construction the table never overflows, so there is no spill I/O —
    # that is the point of switching here.
    breakdown.add(
        "scan_io", scan_seconds(params, r_i, pipeline)
    )
    breakdown.add("select_cpu", p_i * (params.t_r + params.t_w))
    breakdown.add(
        "local_agg_cpu", p_i * (params.t_r + params.t_h + params.t_a)
    )
    flushed = p_i * s_l              # = M partials flushed on switch
    breakdown.add("flush_result_cpu", flushed * params.t_w)
    flush_blocks = params.blocks(p * p_i * params.tuple_bytes * s_l)
    breakdown.add("flush_protocol_cpu", flush_blocks * params.m_p)
    breakdown.add(
        "flush_latency", send_latency_seconds(params, flush_blocks)
    )

    # Phase B: Rep-style forwarding of the remaining tuples.
    breakdown.add(
        "repart_select_cpu",
        rem * (params.t_r + params.t_w + params.t_h + params.t_d),
    )
    raw_blocks = params.blocks(p * rem * params.tuple_bytes)
    breakdown.add("repart_protocol_cpu", raw_blocks * 2.0 * params.m_p)
    breakdown.add(
        "repart_latency", send_latency_seconds(params, raw_blocks)
    )

    # Merge phase: every node receives rem raw tuples + flushed partials
    # (hash partitioning spreads both evenly over the busy nodes).
    busy = min(num_groups, params.num_nodes)
    merge_tuples = (rem + flushed) * params.num_nodes / busy
    merge_bytes = merge_tuples * p * params.tuple_bytes
    groups_per_busy = num_groups / busy
    breakdown.add(
        "merge_recv_protocol_cpu", params.blocks(merge_bytes) * params.m_p
    )
    breakdown.add("merge_cpu", merge_tuples * (params.t_r + params.t_a))
    breakdown.add(
        "merge_overflow_io",
        overflow_io_seconds(
            params, expected_groups=groups_per_busy, spool_bytes=merge_bytes
        ),
    )
    breakdown.add("merge_result_cpu", groups_per_busy * params.t_w)
    result_bytes = groups_per_busy * p * params.tuple_bytes
    breakdown.add("store_io", store_seconds(params, result_bytes, pipeline))
    return breakdown


def adaptive_repartitioning_cost(
    params: SystemParameters,
    selectivity: float,
    pipeline: bool = False,
    init_seg: int | None = None,
    threshold: int | None = None,
) -> CostBreakdown:
    """A-Rep: start with Rep; fall back to A-2P if groups look few (§3.3).

    Staying with Rep costs exactly Rep (the observation is free and the
    end-of-phase message is piggy-backed).  Switching costs the Rep-style
    processing of the first ``init_seg`` tuples per node plus a 2P pass
    over the remainder — with the merge phase reusing the hash table the
    repartitioning phase already built.
    """
    if threshold is None:
        threshold = default_crossover(params)
    num_groups = params.num_groups(selectivity)
    if num_groups >= threshold:
        breakdown = repartitioning_cost(params, selectivity, pipeline)
        breakdown.algorithm = "adaptive_repartitioning"
        return breakdown

    if init_seg is None:
        init_seg = int(min(params.tuples_per_node, 10 * threshold))
    init_seg = int(min(init_seg, params.tuples_per_node))

    breakdown = CostBreakdown("adaptive_repartitioning", selectivity)
    s_l = params.local_selectivity(selectivity)
    s_g = params.global_selectivity(selectivity)
    p = params.projectivity
    r_i = params.tuples_per_node
    rem = r_i - init_seg

    # Phase R: the first init_seg tuples per node go through Rep.  With few
    # groups the receiving side concentrates on min(|G|, N) nodes — the
    # "beginning not all processors are used" penalty of Figure 3.
    breakdown.add("scan_io", scan_seconds(params, r_i, pipeline))
    breakdown.add(
        "initseg_select_cpu",
        init_seg * (params.t_r + params.t_w + params.t_h + params.t_d),
    )
    init_blocks = params.blocks(p * init_seg * params.tuple_bytes)
    breakdown.add("initseg_protocol_cpu", init_blocks * 2.0 * params.m_p)
    breakdown.add(
        "initseg_latency", send_latency_seconds(params, init_blocks)
    )
    busy = min(num_groups, params.num_nodes)
    recv_tuples = init_seg * params.num_nodes / busy
    breakdown.add("initseg_agg_cpu", recv_tuples * (params.t_r + params.t_a))

    # Switch: end-of-phase messages are piggy-backed; charge one protocol
    # block per node for the broadcast.
    breakdown.add("end_of_phase_cpu", params.num_nodes * params.m_p)

    # Phase 2P on the remainder (few groups, so A-2P will not re-switch).
    breakdown.add("select_cpu", rem * (params.t_r + params.t_w))
    breakdown.add(
        "local_agg_cpu", rem * (params.t_r + params.t_h + params.t_a)
    )
    breakdown.add("local_result_cpu", rem * s_l * params.t_w)
    partial_blocks = params.blocks(p * rem * params.tuple_bytes * s_l)
    breakdown.add("send_protocol_cpu", partial_blocks * params.m_p)
    breakdown.add(
        "send_latency", send_latency_seconds(params, partial_blocks)
    )

    # Merge: partials from the 2P pass land in the hash table Phase R
    # already built, so only the partials' merge work is new.
    merge_tuples = rem * s_l
    merge_bytes = p * rem * params.tuple_bytes * s_l
    breakdown.add(
        "merge_recv_protocol_cpu", params.blocks(merge_bytes) * params.m_p
    )
    breakdown.add("merge_cpu", merge_tuples * (params.t_r + params.t_a))
    breakdown.add("merge_result_cpu", merge_tuples * s_g * params.t_w)
    result_bytes = merge_bytes * s_g
    breakdown.add("store_io", store_seconds(params, result_bytes, pipeline))
    return breakdown
