"""Table 1: parameters for the analytical models and the simulator.

Instruction-count parameters (t_r, t_w, …) are stored as instruction counts
and exposed as *seconds* via properties (count / mips / 1e6), matching the
paper's convention that 300/mips with mips = 40 means 7.5 microseconds.

Two presets are provided:

* :meth:`SystemParameters.paper_default` — the Table 1 column: 32 nodes,
  8M × 100-byte tuples, high-speed network available;
* :meth:`SystemParameters.implementation` — the Section 5 cluster: 8 nodes,
  2M × 100-byte tuples, 10 Mbit/s shared Ethernet, 2 KB message blocks.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, fields, replace


class NetworkKind(enum.Enum):
    """The paper's two interconnect models.

    HIGH_BANDWIDTH: latency-only (IBM SP-2-like) — sending a page costs the
    sender m_l but any number of transfers proceed in parallel.
    LIMITED_BANDWIDTH: a sequential shared resource (10 Mbit Ethernet-like)
    — total transfer time is proportional to total bytes, independent of
    how many processors send.
    """

    HIGH_BANDWIDTH = "high_bandwidth"
    LIMITED_BANDWIDTH = "limited_bandwidth"


@dataclass(frozen=True)
class SystemParameters:
    """The Table 1 parameter set (times derived from instruction counts)."""

    num_nodes: int = 32                      # N
    mips: float = 40.0                       # processor speed
    num_tuples: int = 8_000_000              # |R|
    tuple_bytes: int = 100                   # => R = 800 MB
    page_bytes: int = 4096                   # P
    io_seconds: float = 1.15e-3              # IO, sequential page read
    random_io_seconds: float = 15.0e-3       # rIO
    projectivity: float = 0.16               # p
    read_instr: float = 300.0                # t_r
    write_instr: float = 100.0               # t_w
    hash_instr: float = 400.0                # t_h
    agg_instr: float = 300.0                 # t_a
    dest_instr: float = 10.0                 # t_d
    msg_protocol_instr: float = 1000.0       # m_p, per page
    msg_latency_seconds: float = 2.0e-3      # m_l, per page
    hash_table_entries: int = 10_000         # M
    network: NetworkKind = NetworkKind.HIGH_BANDWIDTH
    message_block_bytes: int | None = None   # defaults to page_bytes

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.num_tuples < 1:
            raise ValueError("num_tuples must be at least 1")
        if not 0 < self.projectivity <= 1:
            raise ValueError("projectivity must be in (0, 1]")
        if self.page_bytes < self.tuple_bytes:
            raise ValueError("a page must hold at least one tuple")
        if self.hash_table_entries < 1:
            raise ValueError("hash_table_entries must be at least 1")

    # --- derived time parameters (seconds) -------------------------------

    def _instr_seconds(self, count: float) -> float:
        return count / self.mips / 1e6

    @property
    def t_r(self) -> float:
        """Time to read a tuple (seconds)."""
        return self._instr_seconds(self.read_instr)

    @property
    def t_w(self) -> float:
        """Time to write a tuple (seconds)."""
        return self._instr_seconds(self.write_instr)

    @property
    def t_h(self) -> float:
        """Time to compute a hash value (seconds)."""
        return self._instr_seconds(self.hash_instr)

    @property
    def t_a(self) -> float:
        """Time to process (aggregate) a tuple (seconds)."""
        return self._instr_seconds(self.agg_instr)

    @property
    def t_d(self) -> float:
        """Time to compute a tuple's destination node (seconds)."""
        return self._instr_seconds(self.dest_instr)

    @property
    def m_p(self) -> float:
        """Message protocol CPU cost per page (seconds)."""
        return self._instr_seconds(self.msg_protocol_instr)

    @property
    def m_l(self) -> float:
        """Time to move one page across the network (seconds)."""
        return self.msg_latency_seconds

    # --- derived sizes ----------------------------------------------------

    @property
    def relation_bytes(self) -> int:
        return self.num_tuples * self.tuple_bytes

    @property
    def tuples_per_node(self) -> float:
        """|R_i| = |R| / N."""
        return self.num_tuples / self.num_nodes

    @property
    def node_bytes(self) -> float:
        """R_i = R / N."""
        return self.relation_bytes / self.num_nodes

    @property
    def block_bytes(self) -> int:
        """Network message block size (the implementation uses 2 KB)."""
        return self.message_block_bytes or self.page_bytes

    def pages(self, nbytes: float) -> float:
        """Fractional page count for ``nbytes`` of data."""
        return nbytes / self.page_bytes

    def blocks(self, nbytes: float) -> float:
        """Fractional message-block count for ``nbytes`` of data."""
        return nbytes / self.block_bytes

    def tuples_per_page(self) -> int:
        return max(1, self.page_bytes // self.tuple_bytes)

    # --- selectivity helpers (Table 1's S_l / S_g, typo-corrected) --------

    def local_selectivity(self, selectivity: float) -> float:
        """S_l: distinct fraction seen by phase 1 of Two Phase.

        Table 1 prints max(S·N, 1); the Section 2.2 derivation requires
        min(S·N, 1): a node holding |R|/N tuples of a relation with S·|R|
        uniformly spread groups sees min(S·|R|, |R|/N) distinct groups.
        """
        self._check_selectivity(selectivity)
        return min(selectivity * self.num_nodes, 1.0)

    def global_selectivity(self, selectivity: float) -> float:
        """S_g = max(1/N, S): phase 2 selectivity of Two Phase."""
        self._check_selectivity(selectivity)
        return max(1.0 / self.num_nodes, selectivity)

    def _check_selectivity(self, selectivity: float) -> None:
        # Selectivities below 1/|R| are allowed (the scaleup experiments
        # hold S fixed while |R| shrinks with N); num_groups() clamps the
        # induced group count to at least one.
        if not (0 < selectivity <= 1.0):
            raise ValueError(
                f"selectivity {selectivity} outside (0, 1]"
            )

    def num_groups(self, selectivity: float) -> int:
        return max(1, round(selectivity * self.num_tuples))

    # --- presets and variation --------------------------------------------

    @classmethod
    def paper_default(cls) -> "SystemParameters":
        """The Table 1 column as printed."""
        return cls()

    @classmethod
    def implementation(cls) -> "SystemParameters":
        """The Section 5 cluster: 8 SparcServers on 10 Mbit Ethernet.

        2M × 100-byte tuples (25 MB/node), messages blocked into 2 KB
        pages; a 2 KB block on a 10 Mbit/s bus takes ~1.64 ms.
        """
        return cls(
            num_nodes=8,
            num_tuples=2_000_000,
            network=NetworkKind.LIMITED_BANDWIDTH,
            message_block_bytes=2048,
            msg_latency_seconds=2048 * 8 / 10e6,
        )

    def with_(self, **overrides) -> "SystemParameters":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def scaled(self, factor: float) -> "SystemParameters":
        """Shrink the relation and hash table together by ``factor``.

        Every adaptive decision in the algorithms depends on ratios of M,
        |R_i| and the group count, so scaling both preserves all
        crossovers while letting the simulator run laptop-sized data.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return self.with_(
            num_tuples=max(1, round(self.num_tuples * factor)),
            hash_table_entries=max(
                1, round(self.hash_table_entries * factor)
            ),
        )

    def scaleup_instance(self, num_nodes: int) -> "SystemParameters":
        """The scaleup experiment's rule: |R| grows with N (fixed |R_i|)."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        per_node = self.num_tuples / self.num_nodes
        return self.with_(
            num_nodes=num_nodes,
            num_tuples=max(1, round(per_node * num_nodes)),
        )

    # --- serialization (run artifacts, ``repro explain``) -----------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (enums stored by value)."""
        data = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        data["network"] = self.network.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SystemParameters":
        """Rebuild a parameter set saved by :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "network" in kwargs:
            kwargs["network"] = NetworkKind(kwargs["network"])
        return cls(**kwargs)


def tuples_for_pages(params: SystemParameters, num_pages: float) -> float:
    """Inverse of page arithmetic: tuples contained in ``num_pages``."""
    return num_pages * params.tuples_per_page()


def log_selectivities(
    params: SystemParameters, points: int = 15
) -> list[float]:
    """The figures' x-axis: log-spaced S from 1/|R| to 0.5."""
    lo = math.log10(1.0 / params.num_tuples)
    hi = math.log10(0.5)
    step = (hi - lo) / (points - 1)
    return [10 ** (lo + i * step) for i in range(points)]
