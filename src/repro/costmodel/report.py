"""Component-level cost reporting: where does the time go?

The models return per-component breakdowns; this module groups them into
the four resource families (scan/store I/O, CPU, network, overflow I/O)
so "why does algorithm X lose here" has a quantitative answer — the
breakdown behind every crossover in Figures 1–4.
"""

from __future__ import annotations

from repro.costmodel import MODEL_FUNCTIONS, model_cost
from repro.costmodel.base import CostBreakdown
from repro.costmodel.params import SystemParameters

FAMILIES = ("base_io", "cpu", "network", "overflow_io")

_FAMILY_RULES = (
    ("overflow_io", ("overflow",)),
    ("base_io", ("scan_io", "store_io", "sample_scan_io")),
    ("network", ("latency",)),
    ("cpu", ("cpu",)),
)


def classify_component(name: str) -> str:
    """Map a component name to its resource family."""
    for family, needles in _FAMILY_RULES:
        if any(needle in name for needle in needles):
            return family
    return "cpu"


def family_breakdown(breakdown: CostBreakdown) -> dict[str, float]:
    """Collapse a cost breakdown into the four resource families."""
    families = dict.fromkeys(FAMILIES, 0.0)
    for name, seconds in breakdown.components.items():
        families[classify_component(name)] += seconds
    return families


def breakdown_table(
    params: SystemParameters,
    selectivity: float,
    algorithms=None,
) -> list[tuple]:
    """Rows of (algorithm, base_io, cpu, network, overflow_io, total)."""
    names = list(MODEL_FUNCTIONS if algorithms is None else algorithms)
    rows = []
    for name in names:
        breakdown = model_cost(name, params, selectivity)
        families = family_breakdown(breakdown)
        rows.append(
            (
                name,
                *(families[f] for f in FAMILIES),
                breakdown.total_seconds,
            )
        )
    return rows
