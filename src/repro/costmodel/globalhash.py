"""Cost model for the shared global-hash-table strategy.

The paper's Rep (Section 2.3) ships every projected tuple across the
network so each group is aggregated in exactly one place.  On a modern
multicore — the setting of "Global Hash Tables Strike Back!" — the same
"one table, each group once" discipline is available *without* the
repartition network: all workers aggregate into one shared table (here:
per-worker packed partials merged once by the parent, the pool
substrate's equivalent of a concurrent table).  The model keeps Rep's
cost skeleton and swaps the network terms for a contention term:

* no ``t_d`` destination computation and no repartition protocol/latency
  — tuples never cross a network;
* one aggregation pass over every tuple (``t_r + t_h + t_a``), like
  Rep's agg phase but on all N workers regardless of |G| (a shared
  table has no idle-node penalty when |G| < N);
* a **contention** term: with few groups, many workers collide on the
  same hot entries and updates serialize.  Expected collisions per
  update scale with ``(N - 1) / |G|`` (capped at 1), each costing
  another hash-probe + aggregate;
* a per-worker merge publication: each worker ships one packed partial
  of its local distinct groups (``S_l``-sized, like 2P's phase-1 send),
  which the coordinating thread folds in.

This gives the planner the crossover the PAPERS.md studies observe:
global wins at high selectivity (no duplicated phase-2 work, no
repartition traffic) and loses at very low selectivity (every worker
hammers a handful of entries), which is exactly what
:func:`choose_mp_strategy` arbitrates.
"""

from __future__ import annotations

from repro.costmodel.base import (
    CostBreakdown,
    overflow_io_seconds,
    scan_seconds,
    send_latency_seconds,
    store_seconds,
)
from repro.costmodel.params import SystemParameters
from repro.costmodel.traditional import two_phase_cost


def global_hash_cost(
    params: SystemParameters, selectivity: float, pipeline: bool = False
) -> CostBreakdown:
    """Modelled elapsed seconds for the shared global-hash-table strategy."""
    breakdown = CostBreakdown("global_hash", selectivity)
    r_i_tuples = params.tuples_per_node
    p = params.projectivity
    s_l = params.local_selectivity(selectivity)
    num_groups = params.num_groups(selectivity)

    breakdown.add("scan_io", scan_seconds(params, r_i_tuples, pipeline))
    breakdown.add("select_cpu", r_i_tuples * (params.t_r + params.t_w))
    breakdown.add(
        "agg_cpu", r_i_tuples * (params.t_r + params.t_h + params.t_a)
    )
    collisions = min(1.0, (params.num_nodes - 1) / num_groups)
    breakdown.add(
        "contention_cpu", r_i_tuples * collisions * (params.t_h + params.t_a)
    )
    # The table holds |G| entries once (no N-fold duplication like 2P's
    # phase 2): overflow is charged on each worker's share of the table.
    groups_per_worker = num_groups / params.num_nodes
    agg_bytes = p * params.node_bytes
    breakdown.add(
        "table_overflow_io",
        overflow_io_seconds(
            params, expected_groups=groups_per_worker, spool_bytes=agg_bytes
        ),
    )
    # Per-worker merge discipline: one packed partial per worker, the
    # same S_l-sized payload 2P's phase 1 sends, folded by the parent.
    partial_bytes = p * params.node_bytes * s_l
    blocks = params.blocks(partial_bytes)
    breakdown.add("merge_publish_cpu", blocks * params.m_p)
    breakdown.add("merge_publish_latency", send_latency_seconds(params, blocks))
    breakdown.add("result_cpu", groups_per_worker * params.t_w)
    result_bytes = p * params.relation_bytes * selectivity / params.num_nodes
    breakdown.add("store_io", store_seconds(params, result_bytes, pipeline))
    return breakdown


def choose_mp_strategy(
    params: SystemParameters,
    selectivity: float,
    pipeline: bool = True,
) -> tuple[str, dict]:
    """Arbitrate partitioned 2P vs the shared global table for the executor.

    Returns ``(strategy, inputs)`` where strategy is ``"pool"`` (the
    partitioned two-phase pool path) or ``"global"``, and ``inputs`` is
    the decision record for the :class:`~repro.obs.DecisionLedger` —
    both model totals, the selectivity used, and the margin.
    """
    cost_2p = two_phase_cost(params, selectivity, pipeline).total_seconds
    cost_global = global_hash_cost(
        params, selectivity, pipeline
    ).total_seconds
    strategy = "global" if cost_global < cost_2p else "pool"
    return strategy, {
        "selectivity": selectivity,
        "cost_two_phase_seconds": cost_2p,
        "cost_global_seconds": cost_global,
        "chosen": strategy,
    }
