"""Locating the 2P/Rep crossover, and its sensitivity to hardware.

The whole paper turns on one quantity: the grouping selectivity S* where
Repartitioning overtakes Two Phase.  The adaptive algorithms exist
because S* moves with the hardware — the slow bus of Figure 4 pushes it
far right of the fast network of Figure 3.  This module finds S* by
bisection over the analytical models and sweeps it against hardware
parameters (network speed, memory, CPU, disk), quantifying the paper's
qualitative claims.
"""

from __future__ import annotations

import math

from repro.costmodel.params import SystemParameters
from repro.costmodel.traditional import repartitioning_cost, two_phase_cost


def cost_gap(params: SystemParameters, selectivity: float) -> float:
    """two_phase − repartitioning at one selectivity (positive = Rep wins)."""
    return (
        two_phase_cost(params, selectivity).total_seconds
        - repartitioning_cost(params, selectivity).total_seconds
    )


def find_crossover(
    params: SystemParameters,
    low: float | None = None,
    high: float = 0.5,
    iterations: int = 60,
) -> float | None:
    """The selectivity where Rep starts beating 2P, by log-bisection.

    Returns None when one algorithm dominates the whole range (e.g. on a
    very slow network Rep may never win below ``high``).
    """
    if low is None:
        low = 1.0 / params.num_tuples
    gap_low = cost_gap(params, low)
    gap_high = cost_gap(params, high)
    if gap_low > 0:          # Rep already wins at the bottom
        return low
    if gap_high < 0:         # 2P still wins at the top
        return None
    lo, hi = math.log10(low), math.log10(high)
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if cost_gap(params, 10**mid) < 0:
            lo = mid
        else:
            hi = mid
    return 10 ** ((lo + hi) / 2.0)


def crossover_sensitivity(
    params: SystemParameters,
    parameter: str,
    values,
) -> list[tuple[float, float | None]]:
    """S* as a function of one SystemParameters field.

    Returns (value, crossover_selectivity) pairs; None means Rep never
    wins in range.  Use e.g. ``parameter="msg_latency_seconds"`` for the
    network-speed sweep behind the Figure 3 vs Figure 4 contrast.
    """
    out = []
    for value in values:
        variant = params.with_(**{parameter: value})
        out.append((value, find_crossover(variant)))
    return out
