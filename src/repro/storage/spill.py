"""Spill stores for the hash aggregator's overflow buckets.

`HashAggregator` keeps overflow buckets in memory by default (the
simulator charges their I/O symbolically).  For real out-of-core
operation, :class:`FileSpillStore` spools bucket items to per-bucket
files via pickle and streams them back — so the Section 2 algorithm can
genuinely run with data larger than memory.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile


class MemorySpillStore:
    """The default store: plain in-memory lists."""

    def __init__(self) -> None:
        self._buckets: dict[int, list] = {}

    def append(self, bucket: int, item) -> None:
        self._buckets.setdefault(bucket, []).append(item)

    def bucket_ids(self) -> list[int]:
        return sorted(self._buckets)

    def drain(self, bucket: int):
        items = self._buckets.pop(bucket, [])
        yield from items

    def item_count(self, bucket: int) -> int:
        return len(self._buckets.get(bucket, ()))

    def child(self) -> "MemorySpillStore":
        """A fresh store for one recursion level of bucket processing."""
        return MemorySpillStore()

    def close(self) -> None:
        self._buckets.clear()


class FileSpillStore:
    """Spool bucket items to per-bucket files on disk.

    Items are pickled length-prefixed records, appended sequentially —
    the access pattern the cost model's sequential-I/O spill terms
    assume.  ``drain`` streams a bucket back and deletes its file.
    """

    def __init__(self, directory: str | None = None) -> None:
        self._own_dir = directory is None
        self.directory = (
            tempfile.mkdtemp(prefix="repro-spill-")
            if directory is None
            else directory
        )
        os.makedirs(self.directory, exist_ok=True)
        self._counts: dict[int, int] = {}
        self._children = 0
        self.bytes_written = 0

    def _path(self, bucket: int) -> str:
        return os.path.join(self.directory, f"bucket_{bucket}.spill")

    def append(self, bucket: int, item) -> None:
        data = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        with open(self._path(bucket), "ab") as handle:
            handle.write(len(data).to_bytes(4, "little"))
            handle.write(data)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.bytes_written += len(data) + 4

    def bucket_ids(self) -> list[int]:
        return sorted(self._counts)

    def item_count(self, bucket: int) -> int:
        return self._counts.get(bucket, 0)

    def drain(self, bucket: int):
        path = self._path(bucket)
        if bucket not in self._counts:
            return
        self._counts.pop(bucket)
        with open(path, "rb") as handle:
            while True:
                header = handle.read(4)
                if not header:
                    break
                size = int.from_bytes(header, "little")
                yield pickle.loads(handle.read(size))
        os.remove(path)

    def child(self) -> "FileSpillStore":
        """A store in a subdirectory, for one recursion level.

        Children share the parent's lifetime: closing the root (which
        owns the temp directory) removes every level at once.
        """
        self._children += 1
        return FileSpillStore(
            os.path.join(self.directory, f"level_{self._children}")
        )

    def close(self) -> None:
        if self._own_dir and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)
