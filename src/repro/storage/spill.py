"""Spill stores for the hash aggregator's overflow buckets.

`HashAggregator` keeps overflow buckets in memory by default (the
simulator charges their I/O symbolically).  For real out-of-core
operation, :class:`FileSpillStore` spools bucket items to per-bucket
files via pickle and streams them back — so the Section 2 algorithm can
genuinely run with data larger than memory.

Both stores are context managers and ``close()`` is idempotent, so spill
files never outlive an exception (``with FileSpillStore() as store:``).
The file store keeps real byte accounting (``bytes_written`` /
``bytes_read``, totalled across recursion levels at the root), supports
an optional ``on_bytes`` hook for charging a governor ledger, and
enforces an optional ``max_bytes`` disk budget — the size guard of the
degradation ladder's spill rung (the matching recursion-depth guard
lives in :class:`~repro.core.hashtable.HashAggregator`).
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile

from repro.resources.governor import SpillCapacityError


class MemorySpillStore:
    """The default store: plain in-memory lists."""

    def __init__(self) -> None:
        self._buckets: dict[int, list] = {}

    def append(self, bucket: int, item) -> None:
        self._buckets.setdefault(bucket, []).append(item)

    def bucket_ids(self) -> list[int]:
        return sorted(self._buckets)

    def drain(self, bucket: int):
        items = self._buckets.pop(bucket, [])
        yield from items

    def item_count(self, bucket: int) -> int:
        return len(self._buckets.get(bucket, ()))

    def child(self) -> "MemorySpillStore":
        """A fresh store for one recursion level of bucket processing."""
        return MemorySpillStore()

    def close(self) -> None:
        self._buckets.clear()

    def __enter__(self) -> "MemorySpillStore":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class FileSpillStore:
    """Spool bucket items to per-bucket files on disk.

    Items are pickled length-prefixed records, appended sequentially —
    the access pattern the cost model's sequential-I/O spill terms
    assume.  ``drain`` streams a bucket back and deletes its file.

    ``max_bytes`` caps the bytes written across the whole store tree
    (children included); exceeding it raises
    :class:`~repro.resources.SpillCapacityError`.  ``on_bytes`` is called
    with each record's size as it is written — the hook a governor
    ledger's ``note_spill`` plugs into.
    """

    def __init__(
        self,
        directory: str | None = None,
        max_bytes: int | None = None,
        on_bytes=None,
        _root: "FileSpillStore | None" = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.directory = (
            tempfile.mkdtemp(prefix="repro-spill-")
            if directory is None
            else directory
        )
        os.makedirs(self.directory, exist_ok=True)
        self._counts: dict[int, int] = {}
        self._children = 0
        self._closed = False
        self._root = self if _root is None else _root
        # Per-store byte counters; the root additionally aggregates the
        # whole tree in total_bytes_written / total_bytes_read.
        self.bytes_written = 0
        self.bytes_read = 0
        self.total_bytes_written = 0
        self.total_bytes_read = 0
        self.max_bytes = max_bytes
        self._on_bytes = on_bytes

    def _path(self, bucket: int) -> str:
        return os.path.join(self.directory, f"bucket_{bucket}.spill")

    def append(self, bucket: int, item) -> None:
        if self._closed:
            raise RuntimeError("spill store is closed")
        data = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = len(data) + 4
        root = self._root
        if (
            root.max_bytes is not None
            and root.total_bytes_written + nbytes > root.max_bytes
        ):
            raise SpillCapacityError(
                root.max_bytes, root.total_bytes_written + nbytes
            )
        with open(self._path(bucket), "ab") as handle:
            handle.write(len(data).to_bytes(4, "little"))
            handle.write(data)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.bytes_written += nbytes
        root.total_bytes_written += nbytes
        if root._on_bytes is not None:
            root._on_bytes(nbytes)

    def bucket_ids(self) -> list[int]:
        return sorted(self._counts)

    def item_count(self, bucket: int) -> int:
        return self._counts.get(bucket, 0)

    def drain(self, bucket: int):
        path = self._path(bucket)
        if bucket not in self._counts:
            return
        self._counts.pop(bucket)
        root = self._root
        with open(path, "rb") as handle:
            while True:
                header = handle.read(4)
                if not header:
                    break
                size = int.from_bytes(header, "little")
                self.bytes_read += size + 4
                root.total_bytes_read += size + 4
                yield pickle.loads(handle.read(size))
        os.remove(path)

    def child(self) -> "FileSpillStore":
        """A store in a subdirectory, for one recursion level.

        Children share the root's byte accounting and ``max_bytes``
        budget, and live inside the root's directory: closing the root
        removes every level at once (each child's own ``close()`` is
        also safe and removes just its subtree).
        """
        if self._closed:
            raise RuntimeError("spill store is closed")
        self._children += 1
        return FileSpillStore(
            os.path.join(self.directory, f"level_{self._children}"),
            _root=self._root,
        )

    def close(self) -> None:
        """Remove this store's directory tree.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._counts.clear()
        if os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "FileSpillStore":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
