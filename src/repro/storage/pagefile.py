"""Fixed-size-page binary files — the on-disk substrate.

The paper's implementation sat "on top of the UNIX file system ... did
not use slotted pages"; ours matches: a page is ``page_bytes`` of
fixed-width tuples prefixed by a 4-byte row count, tuples never span
pages, and relations are page-aligned so a sequential scan reads whole
pages — the exact unit the cost models charge.
"""

from __future__ import annotations

import os
import struct

from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.storage.serialization import RowCodec

_COUNT = struct.Struct("<I")


class PageFile:
    """Append/iterate rows through fixed-size pages on disk."""

    def __init__(
        self, path: str, schema: Schema, page_bytes: int = 4096
    ) -> None:
        self.path = path
        self.schema = schema
        self.page_bytes = page_bytes
        self.codec = RowCodec(schema)
        payload = page_bytes - _COUNT.size
        self.rows_per_page = payload // self.codec.row_bytes
        if self.rows_per_page < 1:
            raise ValueError(
                f"page of {page_bytes} bytes cannot hold a "
                f"{self.codec.row_bytes}-byte tuple"
            )
        self._buffer: list[bytes] = []
        self.pages_written = 0

    # -- writing -------------------------------------------------------------

    def append(self, row: tuple) -> None:
        self._buffer.append(self.codec.encode(row))
        if len(self._buffer) >= self.rows_per_page:
            self._flush_page()

    def append_many(self, rows) -> None:
        for row in rows:
            self.append(row)

    def _flush_page(self) -> None:
        if not self._buffer:
            return
        chunk = b"".join(self._buffer)
        page = _COUNT.pack(len(self._buffer)) + chunk
        page += b"\x00" * (self.page_bytes - len(page))
        with open(self.path, "ab") as handle:
            handle.write(page)
        self.pages_written += 1
        self._buffer = []

    def close(self) -> None:
        """Flush any partial page."""
        self._flush_page()

    # -- reading ------------------------------------------------------------

    def num_pages(self) -> int:
        if not os.path.exists(self.path):
            return 0
        return os.path.getsize(self.path) // self.page_bytes

    def read_page(self, page_no: int) -> list[tuple]:
        with open(self.path, "rb") as handle:
            handle.seek(page_no * self.page_bytes)
            data = handle.read(self.page_bytes)
        if len(data) < self.page_bytes:
            raise EOFError(f"page {page_no} beyond end of {self.path}")
        (count,) = _COUNT.unpack_from(data)
        width = self.codec.row_bytes
        start = _COUNT.size
        return self.codec.decode_many(data[start : start + count * width])

    def scan(self):
        """Yield every row, page by page, in write order."""
        for page_no in range(self.num_pages()):
            yield from self.read_page(page_no)


def write_relation_file(
    relation: Relation, path: str, page_bytes: int = 4096
) -> PageFile:
    """Materialize a relation as a page file; returns the (closed) file."""
    if os.path.exists(path):
        os.remove(path)
    pagefile = PageFile(path, relation.schema, page_bytes)
    pagefile.append_many(relation.rows)
    pagefile.close()
    return pagefile


def read_relation_file(
    path: str, schema: Schema, page_bytes: int = 4096
) -> Relation:
    """Load a relation materialized by write_relation_file."""
    pagefile = PageFile(path, schema, page_bytes)
    return Relation(schema, pagefile.scan())
