"""Binary tuple serialization for the on-disk page format.

Fixed-width encoding derived from the schema: int columns are 8-byte
signed little-endian, floats are IEEE-754 doubles, str columns occupy
exactly their declared ``size_bytes`` (UTF-8, NUL-padded, truncation
rejected).  Fixed width keeps tuples-per-page arithmetic exact — the
same arithmetic the cost models charge I/O with.
"""

from __future__ import annotations

import struct

from repro.storage.schema import Schema


class RowCodec:
    """Encode/decode rows of one schema to fixed-width bytes."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        parts = []
        self._str_sizes: list[int | None] = []
        for column in schema.columns:
            if column.kind == "int":
                parts.append("q")
                self._str_sizes.append(None)
            elif column.kind == "float":
                parts.append("d")
                self._str_sizes.append(None)
            else:
                parts.append(f"{column.size_bytes}s")
                self._str_sizes.append(column.size_bytes)
        self._struct = struct.Struct("<" + "".join(parts))

    @property
    def row_bytes(self) -> int:
        return self._struct.size

    def encode(self, row: tuple) -> bytes:
        values = []
        for value, str_size in zip(row, self._str_sizes):
            if str_size is None:
                values.append(value)
                continue
            raw = value.encode("utf-8")
            if len(raw) > str_size:
                raise ValueError(
                    f"string {value!r} exceeds its column width "
                    f"({len(raw)} > {str_size} bytes)"
                )
            values.append(raw)
        return self._struct.pack(*values)

    def decode(self, data: bytes) -> tuple:
        values = self._struct.unpack(data)
        out = []
        for value, str_size in zip(values, self._str_sizes):
            if str_size is None:
                out.append(value)
            else:
                out.append(value.rstrip(b"\x00").decode("utf-8"))
        return tuple(out)
