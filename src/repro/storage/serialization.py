"""Binary tuple serialization for the on-disk page format.

Fixed-width encoding derived from the schema: int columns are 8-byte
signed little-endian, floats are IEEE-754 doubles, str columns occupy
exactly their declared ``size_bytes`` (UTF-8, NUL-padded; truncation and
trailing-NUL values rejected — the pad byte would make them decode to a
different string).  Fixed width keeps tuples-per-page arithmetic exact — the
same arithmetic the cost models charge I/O with — and makes N encoded
rows a contiguous, sliceable byte run (see
:class:`repro.storage.rowblock.RowBlock`).
"""

from __future__ import annotations

import struct

from repro.storage.schema import Schema


class RowCodec:
    """Encode/decode rows of one schema to fixed-width bytes.

    All per-column work — the combined struct format, each column's own
    precompiled :class:`struct.Struct`, byte offsets, and which columns
    need UTF-8 handling — is resolved once here, so the per-row
    ``encode``/``decode`` and the bulk ``encode_many``/``decode_many``
    never rebuild schema-derived state.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        parts = []
        column_structs = []
        offsets = []
        offset = 0
        # (position, width, name) for every string column; empty for
        # all-numeric schemas, which then take the pack-directly path.
        self._str_cols: tuple[tuple[int, int, str], ...] = tuple(
            (i, c.size_bytes, c.name)
            for i, c in enumerate(schema.columns)
            if c.kind == "str"
        )
        for column in schema.columns:
            if column.kind == "int":
                fmt = "q"
            elif column.kind == "float":
                fmt = "d"
            else:
                fmt = f"{column.size_bytes}s"
            parts.append(fmt)
            column_structs.append(struct.Struct("<" + fmt))
            offsets.append(offset)
            offset += column_structs[-1].size
        self._struct = struct.Struct("<" + "".join(parts))
        self.column_structs: tuple[struct.Struct, ...] = tuple(column_structs)
        self.column_offsets: tuple[int, ...] = tuple(offsets)

    @property
    def row_bytes(self) -> int:
        return self._struct.size

    def _encode_strs(self, row: tuple) -> list:
        values = list(row)
        for i, width, name in self._str_cols:
            raw = values[i].encode("utf-8")
            if len(raw) > width:
                raise ValueError(
                    f"column {name!r}: string {values[i]!r} exceeds its "
                    f"column width ({len(raw)} > {width} bytes)"
                )
            if raw.endswith(b"\x00"):
                # NUL padding is the fixed-width fill byte, so a value
                # with trailing NULs cannot be told apart from its
                # stripped form on decode: it would round-trip to a
                # different string, and two distinct keys would collapse
                # into one group.  Fail fast like truncation does; the
                # dictionary-encoded columnar path (ColumnBlock) is
                # length-exact and accepts such values.
                raise ValueError(
                    f"column {name!r}: string {values[i]!r} has trailing "
                    f"NUL bytes, which the NUL-padded fixed-width codec "
                    f"cannot represent"
                )
            values[i] = raw
        return values

    def encode(self, row: tuple) -> bytes:
        if not self._str_cols:
            return self._struct.pack(*row)
        return self._struct.pack(*self._encode_strs(row))

    def encode_many(self, rows) -> bytes:
        """Concatenated fixed-width encodings of ``rows`` (one allocation)."""
        pack = self._struct.pack
        if not self._str_cols:
            return b"".join([pack(*row) for row in rows])
        encode_strs = self._encode_strs
        return b"".join([pack(*encode_strs(row)) for row in rows])

    def _decode_values(self, values: tuple) -> tuple:
        out = list(values)
        for i, _width, _name in self._str_cols:
            out[i] = out[i].rstrip(b"\x00").decode("utf-8")
        return tuple(out)

    def decode(self, data) -> tuple:
        values = self._struct.unpack(data)
        if not self._str_cols:
            return values
        return self._decode_values(values)

    def decode_many(self, data) -> list[tuple]:
        """All rows of a contiguous encoding (inverse of encode_many).

        ``data`` may be ``bytes`` or a ``memoryview``; its length must be
        a multiple of ``row_bytes``.  Decoding runs through
        ``struct.iter_unpack`` (one C-level pass), with the UTF-8 fixup
        only where the schema has string columns.
        """
        if not self._str_cols:
            return list(self._struct.iter_unpack(data))
        decode_values = self._decode_values
        return [
            decode_values(values)
            for values in self._struct.iter_unpack(data)
        ]

    def decode_column(self, data, row_index: int, col_index: int):
        """One column value out of a contiguous encoding, without
        materializing the row (uses the per-column precompiled codec)."""
        base = row_index * self._struct.size + self.column_offsets[col_index]
        (value,) = self.column_structs[col_index].unpack_from(data, base)
        for i, _width, _name in self._str_cols:
            if i == col_index:
                return value.rstrip(b"\x00").decode("utf-8")
        return value
