"""Contiguous fixed-width row blocks — the batched data path's unit.

A :class:`RowBlock` is N encoded rows of one schema laid out back to back
in a single ``bytes``/``memoryview`` buffer.  Because every row has the
same width (see :class:`repro.storage.serialization.RowCodec`), slicing,
row addressing, and per-column access are all offset arithmetic: a block
slice is a zero-copy ``memoryview`` window, and shipping a block to a
worker process is one buffer copy instead of pickling N tuples.

Blocks deliberately do not replace Python-tuple rows — they wrap the same
encoding the page file uses, so ``from_rows``/``to_rows`` round-trips are
exact and any consumer can fall back to tuples at a block boundary.
"""

from __future__ import annotations

from repro.storage.schema import Schema
from repro.storage.serialization import RowCodec


class RowBlock:
    """N fixed-width encoded rows in one contiguous buffer."""

    __slots__ = ("codec", "data", "num_rows")

    def __init__(self, codec: RowCodec, data, num_rows: int | None = None):
        row_bytes = codec.row_bytes
        nbytes = len(data)
        if num_rows is None:
            if nbytes % row_bytes:
                raise ValueError(
                    f"buffer of {nbytes} bytes is not a whole number of "
                    f"{row_bytes}-byte rows"
                )
            num_rows = nbytes // row_bytes
        elif num_rows * row_bytes != nbytes:
            raise ValueError(
                f"expected {num_rows * row_bytes} bytes for {num_rows} rows, "
                f"got {nbytes}"
            )
        self.codec = codec
        self.data = data
        self.num_rows = num_rows

    @classmethod
    def from_rows(cls, schema_or_codec, rows) -> "RowBlock":
        codec = (
            RowCodec(schema_or_codec)
            if isinstance(schema_or_codec, Schema)
            else schema_or_codec
        )
        rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        return cls(codec, codec.encode_many(rows), len(rows))

    @property
    def schema(self) -> Schema:
        return self.codec.schema

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self):
        return iter(self.codec.decode_many(self.data))

    def __getitem__(self, index):
        """``block[i]`` decodes one row; ``block[i:j]`` is a zero-copy
        sub-block viewing the same buffer."""
        if isinstance(index, slice):
            start, stop, step = index.indices(self.num_rows)
            if step != 1:
                raise ValueError("row blocks only support contiguous slices")
            width = self.codec.row_bytes
            view = memoryview(self.data)[start * width : stop * width]
            return RowBlock(self.codec, view, max(0, stop - start))
        if index < 0:
            index += self.num_rows
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row {index} out of range ({self.num_rows} rows)")
        width = self.codec.row_bytes
        return self.codec.decode(
            memoryview(self.data)[index * width : (index + 1) * width]
        )

    def to_rows(self) -> list[tuple]:
        return self.codec.decode_many(self.data)

    def tobytes(self) -> bytes:
        """The underlying encoding as real ``bytes`` (copies iff a view)."""
        data = self.data
        return data if isinstance(data, bytes) else bytes(data)

    def key_bytes(self, col_indexes) -> list[bytes]:
        """Per row, the raw encoded bytes of the given columns, concatenated.

        Equal tuples always produce equal key bytes under the fixed-width
        encoding, so these serve as exact cache keys for memoized bucket
        assignment (:func:`repro.storage.hashing.bucket_of_block`) without
        decoding the rows.
        """
        width = self.codec.row_bytes
        offsets = self.codec.column_offsets
        structs = self.codec.column_structs
        data = self.data
        if isinstance(data, memoryview):
            data = bytes(data)
        spans = [(offsets[i], offsets[i] + structs[i].size) for i in col_indexes]
        if len(spans) == 1:
            lo, hi = spans[0]
            return [
                data[base + lo : base + hi]
                for base in range(0, self.num_rows * width, width)
            ]
        return [
            b"".join([data[base + lo : base + hi] for lo, hi in spans])
            for base in range(0, self.num_rows * width, width)
        ]

    def column(self, col_index: int) -> list:
        """All values of one column, decoded without materializing rows."""
        width = self.codec.row_bytes
        offset = self.codec.column_offsets[col_index]
        codec_struct = self.codec.column_structs[col_index]
        unpack_from = codec_struct.unpack_from
        data = self.data
        values = [
            unpack_from(data, base)[0]
            for base in range(offset, offset + self.num_rows * width, width)
        ]
        if self.codec.schema.columns[col_index].kind == "str":
            return [v.rstrip(b"\x00").decode("utf-8") for v in values]
        return values

    def __repr__(self) -> str:
        return (
            f"RowBlock({self.num_rows} rows × {self.codec.row_bytes} B, "
            f"schema={self.codec.schema.names()})"
        )
