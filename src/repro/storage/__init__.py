"""Paged, shared-nothing storage substrate.

The paper assumes a Gamma-like shared-nothing machine: each node owns a
horizontal fragment of the relation on its local disk.  This subpackage
provides the schema/relation model, stable hashing (Python's builtin ``hash``
is salted per process and therefore unusable for repartitioning), the
round-robin and hash partitioners, and page-count arithmetic used for I/O
cost accounting.
"""

from repro.storage.columnblock import (
    ColumnBlock,
    StringDictionary,
    have_numpy,
)
from repro.storage.hashing import (
    BucketMemo,
    bucket_of,
    bucket_of_block,
    hash_bytes,
    stable_hash,
)
from repro.storage.pagefile import (
    PageFile,
    read_relation_file,
    write_relation_file,
)
from repro.storage.partition import (
    hash_partition,
    hash_partition_block,
    range_partition,
    round_robin_partition,
)
from repro.storage.relation import DistributedRelation, Fragment, Relation
from repro.storage.rowblock import RowBlock
from repro.storage.schema import Column, Schema
from repro.storage.serialization import RowCodec
from repro.storage.spill import FileSpillStore, MemorySpillStore

__all__ = [
    "BucketMemo",
    "Column",
    "ColumnBlock",
    "DistributedRelation",
    "FileSpillStore",
    "Fragment",
    "MemorySpillStore",
    "PageFile",
    "Relation",
    "RowBlock",
    "RowCodec",
    "Schema",
    "StringDictionary",
    "bucket_of",
    "bucket_of_block",
    "hash_bytes",
    "hash_partition",
    "hash_partition_block",
    "have_numpy",
    "range_partition",
    "read_relation_file",
    "round_robin_partition",
    "stable_hash",
    "write_relation_file",
]
