"""Column-major blocks with dictionary-encoded string columns.

The row-major fixed-width :class:`repro.storage.rowblock.RowBlock` makes
N rows one contiguous byte run, but every columnar kernel working on it
must first transpose — and its NUL-padded string codec cannot represent
strings with trailing NULs at all.  A :class:`ColumnBlock` stores one
contiguous numpy-backed buffer *per column*: int columns as little-endian
int64, float columns as IEEE-754 doubles, and string columns as int32
codes into a per-block :class:`StringDictionary`.  Dictionary codes make
string columns exactly as cheap as ints for grouping kernels
(``np.unique`` over codes), and the dictionary itself is length-exact —
arbitrary strings, including embedded and trailing NULs and non-ASCII,
round-trip byte for byte.

Serialization (``to_bytes``/``from_bytes``) produces a single contiguous
buffer suitable for shipping through shared memory: a fixed header, the
raw column buffers, then each string column's dictionary as
length-prefixed UTF-8.  The layout is versioned by a magic tag so a
reader can fail fast on a foreign buffer rather than misparse it.
"""

from __future__ import annotations

import struct

from repro.storage.schema import Schema

try:  # numpy is the whole point of the columnar layout, but the storage
    import numpy as _np  # package must stay importable without it.
except ImportError:  # pragma: no cover - exercised only on bare images
    _np = None

_MAGIC = b"RCB1"
_HEADER = struct.Struct("<4sII")  # magic, num_rows, num_cols
_U32 = struct.Struct("<I")

_DTYPES = {"int": "<i8", "float": "<f8", "str": "<i4"}


def have_numpy() -> bool:
    """True when the numpy-backed columnar layout is available."""
    return _np is not None


class StringDictionary:
    """An ordered, length-exact mapping between strings and int32 codes.

    Codes are assigned in first-seen order, so encoding is append-only
    and deterministic for a given value sequence.  Unlike the fixed-width
    codec there is no padding: any Python string — embedded NULs,
    trailing NULs, astral-plane characters — maps to a unique code and
    decodes back to the identical object value.
    """

    __slots__ = ("values", "_codes")

    def __init__(self, values=()) -> None:
        self.values: list[str] = list(values)
        if len(set(self.values)) != len(self.values):
            raise ValueError("dictionary values must be unique")
        self._codes: dict[str, int] = {
            v: i for i, v in enumerate(self.values)
        }

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def code_of(self, value: str) -> int:
        """Code for ``value``, assigning the next code on first sight."""
        code = self._codes.get(value)
        if code is None:
            code = len(self.values)
            if code >= 2**31:
                raise ValueError("dictionary exceeds int32 code space")
            self._codes[value] = code
            self.values.append(value)
        return code

    def encode_many(self, values) -> list[int]:
        return [self.code_of(v) for v in values]

    def decode(self, code: int) -> str:
        return self.values[code]

    def merge(self, other: "StringDictionary") -> list[int]:
        """Absorb ``other``'s values; returns old-code -> new-code map."""
        return [self.code_of(v) for v in other.values]

    def to_bytes(self) -> bytes:
        parts = [_U32.pack(len(self.values))]
        for value in self.values:
            raw = value.encode("utf-8")
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
        return b"".join(parts)

    @classmethod
    def from_buffer(cls, buf, offset: int) -> tuple["StringDictionary", int]:
        """Parse a dictionary at ``offset``; returns (dict, next offset)."""
        (count,) = _U32.unpack_from(buf, offset)
        offset += _U32.size
        values = []
        for _ in range(count):
            (nbytes,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            values.append(bytes(buf[offset : offset + nbytes]).decode("utf-8"))
            offset += nbytes
        return cls(values), offset


class ColumnBlock:
    """N rows of one schema, stored column-major in contiguous buffers.

    ``columns[i]`` is a numpy array: int64 values for int columns, float64
    for float columns, and int32 dictionary codes for str columns (the
    matching :class:`StringDictionary` lives in ``dictionaries[i]``).
    """

    __slots__ = ("schema", "num_rows", "columns", "dictionaries")

    def __init__(self, schema: Schema, num_rows: int, columns, dictionaries):
        self.schema = schema
        self.num_rows = num_rows
        self.columns = list(columns)
        self.dictionaries: dict[int, StringDictionary] = dict(dictionaries)

    def __len__(self) -> int:
        return self.num_rows

    @property
    def nbytes(self) -> int:
        """Bytes of the raw column buffers (excluding dictionaries)."""
        return sum(arr.nbytes for arr in self.columns)

    @classmethod
    def from_rows(cls, schema: Schema, rows, idx=None) -> "ColumnBlock":
        """Columnarize ``rows``; raises on values int64 cannot hold.

        ``idx`` maps schema column ``i`` to source-row position
        ``idx[i]`` so projection happens during column extraction — the
        projected tuples are never materialized.  Out-of-range ints
        raise (numpy's int64 cast), mirroring the fixed-width codec's
        contract, so callers with a per-row fallback can treat both
        paths alike.
        """
        if _np is None:  # pragma: no cover
            raise RuntimeError("ColumnBlock requires numpy")
        num_rows = len(rows)
        all_cols = list(zip(*rows)) if num_rows else []
        if not num_rows:
            cols = [() for _ in schema.columns]
        elif idx is None:
            cols = all_cols
        else:
            cols = [all_cols[j] for j in idx]
        columns = []
        dictionaries = {}
        for i, column in enumerate(schema.columns):
            if column.kind == "str":
                dictionary = StringDictionary()
                codes = dictionary.encode_many(cols[i])
                columns.append(_np.array(codes, dtype=_DTYPES["str"]))
                dictionaries[i] = dictionary
            else:
                if not num_rows:
                    columns.append(_np.empty(0, dtype=_DTYPES[column.kind]))
                    continue
                arr = _np.asarray(cols[i])
                # Casting floats (or big ints, which numpy holds as
                # object) into an int column would truncate silently
                # where the fixed-width codec raises; keep the contracts
                # aligned so callers' per-row fallbacks fire identically.
                allowed = "bi" if column.kind == "int" else "bif"
                if arr.dtype.kind not in allowed:
                    raise ValueError(
                        f"column {column.name!r}: values are not "
                        f"{column.kind}-typed"
                    )
                columns.append(arr.astype(_DTYPES[column.kind]))
        return cls(schema, num_rows, columns, dictionaries)

    def to_rows(self) -> list[tuple]:
        """Decode back to row tuples (inverse of ``from_rows``)."""
        decoded = []
        for i, column in enumerate(self.schema.columns):
            if column.kind == "str":
                values = self.dictionaries[i].values
                decoded.append(
                    [values[c] for c in self.columns[i].tolist()]
                )
            else:
                decoded.append(self.columns[i].tolist())
        return list(zip(*decoded)) if self.num_rows else []

    def column(self, index: int) -> list:
        """Column ``index`` as decoded Python values."""
        if self.schema.columns[index].kind == "str":
            values = self.dictionaries[index].values
            return [values[c] for c in self.columns[index].tolist()]
        return self.columns[index].tolist()

    def project(self, indexes, schema: Schema | None = None) -> "ColumnBlock":
        """A block holding only columns ``indexes``, in the given order.

        Column buffers and dictionaries are shared, not copied — rows
        are never materialized.  ``schema`` (defaulting to the matching
        projection of this block's schema) lets a caller supply the
        already-projected schema it computed anyway.
        """
        idx = list(indexes)
        if schema is None:
            schema = self.schema.project(
                [self.schema.columns[i].name for i in idx]
            )
        columns = [self.columns[i] for i in idx]
        dictionaries = {
            j: self.dictionaries[i]
            for j, i in enumerate(idx)
            if i in self.dictionaries
        }
        return ColumnBlock(schema, self.num_rows, columns, dictionaries)

    def slice(self, start: int, stop: int) -> "ColumnBlock":
        """Rows ``[start, stop)`` as a block sharing this block's buffers.

        Slicing is a numpy view per column (no copy); dictionaries are
        shared, so string codes stay valid without re-encoding.
        """
        start = max(0, min(start, self.num_rows))
        stop = max(start, min(stop, self.num_rows))
        return ColumnBlock(
            self.schema,
            stop - start,
            [arr[start:stop] for arr in self.columns],
            self.dictionaries,
        )

    def head(self, n: int) -> "ColumnBlock":
        """The first ``n`` rows (buffer-sharing, like :meth:`slice`)."""
        return self.slice(0, n)

    def to_bytes(self) -> bytes:
        """One contiguous buffer: header, column buffers, dictionaries."""
        parts = [
            _HEADER.pack(_MAGIC, self.num_rows, len(self.schema.columns))
        ]
        for arr in self.columns:
            raw = arr.tobytes()
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
        for i, column in enumerate(self.schema.columns):
            if column.kind == "str":
                parts.append(self.dictionaries[i].to_bytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, schema: Schema, data) -> "ColumnBlock":
        """Parse a ``to_bytes`` buffer (bytes or memoryview) back."""
        if _np is None:  # pragma: no cover
            raise RuntimeError("ColumnBlock requires numpy")
        buf = memoryview(data)
        magic, num_rows, num_cols = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ValueError(
                f"not a columnar block buffer (magic {magic!r})"
            )
        if num_cols != len(schema.columns):
            raise ValueError(
                f"column count mismatch: buffer has {num_cols}, "
                f"schema has {len(schema.columns)}"
            )
        offset = _HEADER.size
        columns = []
        for column in schema.columns:
            (nbytes,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            arr = _np.frombuffer(
                buf[offset : offset + nbytes],
                dtype=_DTYPES[column.kind],
            )
            if len(arr) != num_rows:
                raise ValueError(
                    f"column {column.name!r}: expected {num_rows} values, "
                    f"buffer holds {len(arr)}"
                )
            columns.append(arr)
            offset += nbytes
        dictionaries = {}
        for i, column in enumerate(schema.columns):
            if column.kind == "str":
                dictionaries[i], offset = StringDictionary.from_buffer(
                    buf, offset
                )
        block = cls(schema, num_rows, columns, dictionaries)
        for i, column in enumerate(schema.columns):
            if column.kind == "str" and len(block.columns[i]) and (
                int(block.columns[i].max()) >= len(dictionaries[i])
                or int(block.columns[i].min()) < 0
            ):
                raise ValueError(
                    f"column {column.name!r}: code out of dictionary range"
                )
        return block
