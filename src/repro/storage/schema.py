"""Relation schemas.

A schema is a sequence of typed, sized columns.  Column sizes matter because
the paper's cost models charge I/O and network by bytes (tuple size × tuple
count / page size), so the storage layer must know how wide a tuple is even
though rows are held as plain Python tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field


_DEFAULT_SIZES = {"int": 8, "float": 8, "str": 16}
_VALID_KINDS = frozenset(_DEFAULT_SIZES)


@dataclass(frozen=True)
class Column:
    """A named, typed column with an on-disk width in bytes."""

    name: str
    kind: str = "int"
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"unknown column kind {self.kind!r}; expected one of "
                f"{sorted(_VALID_KINDS)}"
            )
        if self.size_bytes < 0:
            raise ValueError("column size_bytes must be non-negative")
        if self.size_bytes == 0:
            object.__setattr__(
                self, "size_bytes", _DEFAULT_SIZES[self.kind]
            )


@dataclass(frozen=True)
class Schema:
    """An ordered set of columns with O(1) name lookup."""

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(
        default=None, repr=False, compare=False
    )

    def __init__(self, columns) -> None:
        cols = tuple(columns)
        if not cols:
            raise ValueError("a schema needs at least one column")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        object.__setattr__(self, "columns", cols)
        object.__setattr__(
            self, "_index", {c.name: i for i, c in enumerate(cols)}
        )

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of column ``name``; raises KeyError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; schema has {self.names()}"
            ) from None

    def indexes_of(self, names) -> tuple[int, ...]:
        return tuple(self.index_of(n) for n in names)

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def tuple_bytes(self) -> int:
        """On-disk width of one tuple under this schema."""
        return sum(c.size_bytes for c in self.columns)

    def project(self, names) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema(self.column(n) for n in names)

    def projected_bytes(self, names) -> int:
        """Width of a tuple projected to ``names`` (for projectivity p)."""
        return sum(self.column(n).size_bytes for n in names)


def default_schema(payload_bytes: int = 84) -> Schema:
    """The evaluation schema: an int group key, a float value, padding.

    The paper uses 100-byte tuples; with an 8-byte key and an 8-byte value
    the default payload pad of 84 bytes reproduces that width.
    """
    return Schema(
        [
            Column("gkey", "int"),
            Column("val", "float"),
            Column("pad", "str", size_bytes=payload_bytes),
        ]
    )
