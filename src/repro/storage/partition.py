"""Partitioning strategies for shared-nothing placement and repartitioning.

Round-robin is the paper's base-relation placement ("The 2 Million 100 byte
tuples were partitioned in a round-robin fashion").  Hash partitioning on
the GROUP BY attributes is what the Repartitioning algorithm and the merge
phase of the Two Phase algorithm use.  Range partitioning is included for
completeness (Gamma supported it); it is exercised by tests but not by the
paper's experiments.

All three partitioners take an optional governor ``account`` (with a
``row_bytes`` cost per row): the buffered partitions are charged as they
grow, so a governed caller's high-water mark covers repartition buffers
too.  The charge is forced — a partitioner cannot spill; relieving
pressure is the caller's job — and the caller releases the bytes when it
consumes the partitions.
"""

from __future__ import annotations

from repro.storage.hashing import bucket_of, bucket_of_block


def _charge(account, row_bytes: int) -> None:
    if account is not None and row_bytes > 0:
        account.charge(row_bytes)


def round_robin_partition(
    rows, num_parts: int, account=None, row_bytes: int = 0
) -> list[list]:
    """Deal rows to ``num_parts`` partitions in row order."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    parts: list[list] = [[] for _ in range(num_parts)]
    for i, row in enumerate(rows):
        parts[i % num_parts].append(row)
        _charge(account, row_bytes)
    return parts


def hash_partition(
    rows, num_parts: int, key_func, account=None, row_bytes: int = 0
) -> list[list]:
    """Partition rows by a stable hash of ``key_func(row)``."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    parts: list[list] = [[] for _ in range(num_parts)]
    for row in rows:
        parts[bucket_of(key_func(row), num_parts)].append(row)
        _charge(account, row_bytes)
    return parts


def hash_partition_block(
    block, col_indexes, num_parts: int, account=None, row_bytes: int = 0,
    cache=None,
) -> list[list]:
    """Partition a :class:`~repro.storage.rowblock.RowBlock` by key columns.

    Row-for-row identical to ``hash_partition(block.to_rows(), num_parts,
    lambda r: tuple(r[i] for i in col_indexes))`` — the bucket of each
    distinct key is computed once from its encoded bytes (see
    :func:`repro.storage.hashing.bucket_of_block`) instead of re-hashing
    every tuple.  Partitions hold decoded tuple rows, so downstream
    consumers are unchanged.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    parts: list[list] = [[] for _ in range(num_parts)]
    buckets = bucket_of_block(block, col_indexes, num_parts, cache=cache)
    rows = block.to_rows()
    charge = account is not None and row_bytes > 0
    for row, bucket in zip(rows, buckets):
        parts[bucket].append(row)
        if charge:
            account.charge(row_bytes)
    return parts


def range_partition(
    rows, boundaries, key_func, account=None, row_bytes: int = 0
) -> list[list]:
    """Partition rows into ``len(boundaries) + 1`` ordered ranges.

    ``boundaries`` must be sorted ascending; row r goes to the first
    partition i with ``key_func(r) <= boundaries[i]``, or the last one.
    """
    bounds = list(boundaries)
    if bounds != sorted(bounds):
        raise ValueError("range boundaries must be sorted ascending")
    parts: list[list] = [[] for _ in range(len(bounds) + 1)]
    for row in rows:
        key = key_func(row)
        dest = len(bounds)
        for i, bound in enumerate(bounds):
            if key <= bound:
                dest = i
                break
        parts[dest].append(row)
        _charge(account, row_bytes)
    return parts
