"""Relations and their shared-nothing fragments.

A :class:`Relation` is a schema plus rows (plain Python tuples).  A
:class:`DistributedRelation` is the shared-nothing view: one
:class:`Fragment` per node, each logically resident on that node's local
disk.  Page counts are derived from the schema's tuple width and a page
size, mirroring how the paper charges scan and store I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.schema import Schema


def pages_for(num_tuples: int, tuple_bytes: int, page_size: int) -> int:
    """Number of pages needed to hold ``num_tuples`` rows.

    Tuples never span pages (the paper's Gamma-style layout), so the
    per-page capacity is ``floor(page_size / tuple_bytes)``.
    """
    if num_tuples < 0:
        raise ValueError("num_tuples must be non-negative")
    if num_tuples == 0:
        return 0
    per_page = max(1, page_size // tuple_bytes)
    return math.ceil(num_tuples / per_page)


def tuples_per_page(tuple_bytes: int, page_size: int) -> int:
    """How many tuples fit on one page (at least 1)."""
    return max(1, page_size // tuple_bytes)


class Relation:
    """An in-memory relation: a schema and a list of row tuples."""

    def __init__(self, schema: Schema, rows) -> None:
        self.schema = schema
        self.rows = list(rows)
        width = len(schema)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    f"row arity {len(row)} does not match schema "
                    f"arity {width}: {row!r}"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return (
            f"Relation(columns={self.schema.names()}, rows={len(self.rows)})"
        )

    @property
    def size_bytes(self) -> int:
        return len(self.rows) * self.schema.tuple_bytes

    def num_pages(self, page_size: int) -> int:
        return pages_for(len(self.rows), self.schema.tuple_bytes, page_size)

    def pages(self, page_size: int):
        """Iterate rows page by page (lists of rows)."""
        per_page = tuples_per_page(self.schema.tuple_bytes, page_size)
        for start in range(0, len(self.rows), per_page):
            yield self.rows[start : start + per_page]

    def column_values(self, name: str):
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def head(self, n: int) -> list:
        """The first ``n`` rows (a cheap prefix, used for sampling)."""
        return self.rows[:n]


class BlockRelation(Relation):
    """A relation born columnar: a :class:`ColumnBlock`, rows on demand.

    ``rows`` is a *decoding view*: the first access materializes the
    block as Python tuples (cached thereafter), so every row consumer —
    the simulator substrate, golden parity tests, per-row fallbacks —
    sees exactly what a row-built :class:`Relation` would hold, while
    columnar consumers (``multiprocessing_aggregate``'s shipping path,
    block-native scans) read ``block`` directly and never pay the
    decode.
    """

    def __init__(self, schema: Schema, block) -> None:
        if block.columns and block.num_rows != len(block.columns[0]):
            raise ValueError("block row count disagrees with its columns")
        self.schema = schema
        self.block = block
        self._rows: list | None = None

    @property
    def rows(self) -> list:
        if self._rows is None:
            self._rows = self.block.to_rows()
        return self._rows

    def __len__(self) -> int:
        return self.block.num_rows

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:
        return (
            f"BlockRelation(columns={self.schema.names()}, "
            f"rows={self.block.num_rows})"
        )

    @property
    def size_bytes(self) -> int:
        return self.block.num_rows * self.schema.tuple_bytes

    def num_pages(self, page_size: int) -> int:
        return pages_for(
            self.block.num_rows, self.schema.tuple_bytes, page_size
        )

    def column_values(self, name: str):
        return self.block.column(self.schema.index_of(name))

    def head(self, n: int) -> list:
        if self._rows is not None:
            return self._rows[:n]
        return self.block.head(n).to_rows()


@dataclass
class Fragment:
    """The horizontal fragment of a relation resident on one node."""

    node_id: int
    relation: Relation

    def __len__(self) -> int:
        return len(self.relation)

    def num_pages(self, page_size: int) -> int:
        return self.relation.num_pages(page_size)


class DistributedRelation:
    """A relation horizontally partitioned across N shared-nothing nodes."""

    def __init__(self, schema: Schema, partitions) -> None:
        """``partitions`` holds one entry per node: either a list of row
        tuples (wrapped in a fresh :class:`Relation`) or an already-built
        :class:`Relation`/:class:`BlockRelation` — the columnar
        generators hand fragments over block-born, without a row detour.
        """
        self.schema = schema
        self.fragments = [
            Fragment(
                i,
                part if isinstance(part, Relation)
                else Relation(schema, part),
            )
            for i, part in enumerate(partitions)
        ]
        if not self.fragments:
            raise ValueError("a distributed relation needs at least one node")

    @property
    def num_nodes(self) -> int:
        return len(self.fragments)

    def __len__(self) -> int:
        return sum(len(f) for f in self.fragments)

    def __repr__(self) -> str:
        sizes = [len(f) for f in self.fragments]
        return (
            f"DistributedRelation(nodes={self.num_nodes}, "
            f"tuples={sum(sizes)}, per_node={sizes})"
        )

    def fragment(self, node_id: int) -> Fragment:
        return self.fragments[node_id]

    def all_rows(self) -> list:
        """Every row, concatenated in node order (for reference answers)."""
        rows = []
        for frag in self.fragments:
            rows.extend(frag.relation.rows)
        return rows

    def as_relation(self) -> Relation:
        return Relation(self.schema, self.all_rows())

    @property
    def size_bytes(self) -> int:
        return len(self) * self.schema.tuple_bytes

    def tuples_per_node(self) -> list[int]:
        return [len(f) for f in self.fragments]
