"""Loading and saving relations — CSV for people, one file per node.

A downstream user reproducing the experiments on their own data needs a
way in and out of the storage model.  The on-disk layout mirrors the
shared-nothing placement: a directory with ``schema.csv`` plus
``node_<i>.csv`` per fragment, so a saved DistributedRelation round-trips
with its partitioning intact.
"""

from __future__ import annotations

import csv
import os

from repro.storage.relation import DistributedRelation, Relation
from repro.storage.schema import Column, Schema

_CASTS = {"int": int, "float": float, "str": str}


def _write_rows(path: str, schema: Schema, rows) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.names())
        writer.writerows(rows)


def _read_rows(path: str, schema: Schema) -> list[tuple]:
    casts = [_CASTS[c.kind] for c in schema.columns]
    rows: list[tuple] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != schema.names():
            raise ValueError(
                f"{path}: header {header} does not match schema "
                f"{schema.names()}"
            )
        for record in reader:
            if len(record) != len(casts):
                raise ValueError(
                    f"{path}: row arity {len(record)} != schema arity "
                    f"{len(casts)}"
                )
            rows.append(
                tuple(cast(value) for cast, value in zip(casts, record))
            )
    return rows


def _schema_path(directory: str) -> str:
    return os.path.join(directory, "schema.csv")


def save_schema(schema: Schema, directory: str) -> None:
    """Write schema.csv describing the columns."""
    with open(_schema_path(directory), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name", "kind", "size_bytes"])
        for column in schema.columns:
            writer.writerow([column.name, column.kind, column.size_bytes])


def load_schema(directory: str) -> Schema:
    """Read the schema.csv written by save_schema."""
    with open(_schema_path(directory), newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["name", "kind", "size_bytes"]:
            raise ValueError(f"bad schema file in {directory}: {header}")
        columns = [
            Column(name, kind, int(size)) for name, kind, size in reader
        ]
    return Schema(columns)


def save_distributed(dist: DistributedRelation, directory: str) -> None:
    """Write schema.csv plus node_<i>.csv per fragment."""
    os.makedirs(directory, exist_ok=True)
    save_schema(dist.schema, directory)
    for frag in dist.fragments:
        _write_rows(
            os.path.join(directory, f"node_{frag.node_id}.csv"),
            dist.schema,
            frag.relation.rows,
        )


def load_distributed(directory: str) -> DistributedRelation:
    """Inverse of :func:`save_distributed` (placement preserved)."""
    schema = load_schema(directory)
    parts = []
    node = 0
    while True:
        path = os.path.join(directory, f"node_{node}.csv")
        if not os.path.exists(path):
            break
        parts.append(_read_rows(path, schema))
        node += 1
    if not parts:
        raise FileNotFoundError(f"no node_*.csv fragments in {directory}")
    return DistributedRelation(schema, parts)


def save_relation(relation: Relation, path: str) -> None:
    """One plain CSV with a header row."""
    _write_rows(path, relation.schema, relation.rows)


def load_relation(path: str, schema: Schema) -> Relation:
    """Read one CSV written by save_relation."""
    return Relation(schema, _read_rows(path, schema))
