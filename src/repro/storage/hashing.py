"""Deterministic, process-stable hashing for partitioning.

Python's builtin ``hash`` is salted per interpreter process (PYTHONHASHSEED),
so it cannot be used to decide which node a group key is routed to: two nodes
in a real cluster — or a test re-run — would disagree.  We use a small
Fowler–Noll–Vo (FNV-1a) implementation over a canonical byte encoding of the
key, which is fast, stable, and has good avalanche behaviour for the integer
and string keys the workloads generate.

FNV-1a is serial per byte (each byte is xor-folded into the running product),
but mod 2**64 distributes over both the multiply and the low-byte xor, so the
64-bit mask does not have to be applied every iteration.  ``hash_bytes``
exploits that: it folds bytes in chunks and masks once per chunk (once total
for short keys), letting Python's bigint multiply absorb the chunk before the
truncation.  The values are bit-identical to the naive per-byte loop — pinned
by golden vectors in ``tests/golden/block_parity.json``.
"""

from __future__ import annotations

import struct

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

# Deferred-mask chunk width: the intermediate grows ~40 bits per byte
# (the prime is 2**40-ish), so 16-byte chunks stay well under one bigint
# digit allocation spike while amortizing the mask.
_CHUNK = 16


def _encode(value) -> bytes:
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + value.to_bytes(
            (value.bit_length() // 8) + 1, "little", signed=True
        )
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"y" + value
    if value is None:
        return b"n"
    if isinstance(value, tuple):
        parts = [b"t", len(value).to_bytes(4, "little")]
        for item in value:
            enc = _encode(item)
            parts.append(len(enc).to_bytes(4, "little"))
            parts.append(enc)
        return b"".join(parts)
    raise TypeError(f"unhashable partition key type: {type(value).__name__}")


def hash_bytes(data) -> int:
    """64-bit FNV-1a over raw bytes, identical across processes and runs.

    This is the block path's entry point: key bytes that are already in a
    row block's fixed-width encoding can be hashed directly, skipping the
    canonical re-encoding that :func:`stable_hash` performs per value.
    """
    h = _FNV_OFFSET
    if len(data) <= 2 * _CHUNK:
        for byte in data:
            h = (h ^ byte) * _FNV_PRIME
        return h & _MASK64
    for base in range(0, len(data), _CHUNK):
        for byte in data[base : base + _CHUNK]:
            h = (h ^ byte) * _FNV_PRIME
        h &= _MASK64
    return h


def stable_hash(value) -> int:
    """A 64-bit FNV-1a hash, identical across processes and runs."""
    return hash_bytes(_encode(value))


def bucket_of(value, num_buckets: int) -> int:
    """Map ``value`` to one of ``num_buckets`` buckets."""
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    return stable_hash(value) % num_buckets


class BucketMemo:
    """A bounded, governor-accountable memo for :func:`bucket_of_block`.

    A plain dict shared across the blocks of one partitioning pass is an
    unbounded cache: high-cardinality keys grow it without any
    ``MemoryGovernor`` accounting.  ``BucketMemo`` is a drop-in
    replacement (it implements the ``get``/``__setitem__`` subset the
    memoization loop uses): entries up to ``max_entries`` are kept and,
    when the bound is hit, the memo **sheds** — every entry is dropped at
    once, the charged bytes are released, and the shed is observable.
    Shedding only costs recomputation; bucket assignments are pure, so
    results are identical with any bound.

    Accounting is optional on both axes: pass an
    :class:`repro.resources.governor.OperatorAccount` to charge
    ``entry_bytes`` per memoized key (released on shed/close), and a
    :class:`repro.obs.metrics.MetricsRegistry` to count sheds as
    ``mem_bucket_memo_sheds`` / ``mem_bucket_memo_shed_entries``.
    """

    __slots__ = (
        "max_entries", "entry_bytes", "account", "metrics",
        "sheds", "shed_entries", "_table",
    )

    def __init__(
        self,
        max_entries: int = 1 << 16,
        *,
        entry_bytes: int = 64,
        account=None,
        metrics=None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.entry_bytes = entry_bytes
        self.account = account
        self.metrics = metrics
        self.sheds = 0
        self.shed_entries = 0
        self._table: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, raw) -> bool:
        return raw in self._table

    def get(self, raw, default=None):
        return self._table.get(raw, default)

    def __setitem__(self, raw, bucket) -> None:
        if len(self._table) >= self.max_entries and raw not in self._table:
            self._shed()
        if raw not in self._table and self.account is not None:
            self.account.charge(self.entry_bytes)
        self._table[raw] = bucket

    def _shed(self) -> None:
        dropped = len(self._table)
        self._table.clear()
        self.sheds += 1
        self.shed_entries += dropped
        if self.account is not None:
            self.account.release(dropped * self.entry_bytes)
        if self.metrics is not None:
            self.metrics.counter("mem_bucket_memo_sheds").inc()
            self.metrics.counter("mem_bucket_memo_shed_entries").inc(dropped)

    def close(self) -> None:
        """Release whatever the memo still holds (idempotent)."""
        if self.account is not None:
            self.account.release(len(self._table) * self.entry_bytes)
        self._table.clear()


def bucket_of_block(block, col_indexes, num_buckets: int, cache=None) -> list[int]:
    """Bucket assignment for every row of a block, memoized per distinct key.

    Produces exactly ``bucket_of(tuple(row[i] for i in col_indexes))`` for
    each row, but hashes each *distinct* key once: the raw fixed-width key
    bytes (equal tuples ⇔ equal bytes) index a cache of computed buckets, so
    grouped data pays one decode + one hash per group instead of per tuple.

    Pass the same ``cache`` across blocks of one partitioning pass to
    share the memo; with ``cache=None`` each call memoizes only within the
    block.  A plain dict works but grows without bound on high-cardinality
    keys — prefer a :class:`BucketMemo`, which bounds the entry count
    (shedding is invisible to results) and can charge a governor account.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    codec = block.codec
    key_struct = struct.Struct(
        "<" + "".join(codec.column_structs[i].format[1:] for i in col_indexes)
    )
    str_positions = tuple(
        j
        for j, i in enumerate(col_indexes)
        if codec.schema.columns[i].kind == "str"
    )
    if cache is None:
        cache = {}
    cache_get = cache.get
    buckets = []
    append = buckets.append
    for raw in block.key_bytes(col_indexes):
        bucket = cache_get(raw)
        if bucket is None:
            values = key_struct.unpack(raw)
            if str_positions:
                values = list(values)
                for j in str_positions:
                    values[j] = values[j].rstrip(b"\x00").decode("utf-8")
                values = tuple(values)
            bucket = stable_hash(values) % num_buckets
            cache[raw] = bucket
        append(bucket)
    return buckets
