"""Deterministic, process-stable hashing for partitioning.

Python's builtin ``hash`` is salted per interpreter process (PYTHONHASHSEED),
so it cannot be used to decide which node a group key is routed to: two nodes
in a real cluster — or a test re-run — would disagree.  We use a small
Fowler–Noll–Vo (FNV-1a) implementation over a canonical byte encoding of the
key, which is fast, stable, and has good avalanche behaviour for the integer
and string keys the workloads generate.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _encode(value) -> bytes:
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + value.to_bytes(
            (value.bit_length() // 8) + 1, "little", signed=True
        )
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"y" + value
    if value is None:
        return b"n"
    if isinstance(value, tuple):
        parts = [b"t", len(value).to_bytes(4, "little")]
        for item in value:
            enc = _encode(item)
            parts.append(len(enc).to_bytes(4, "little"))
            parts.append(enc)
        return b"".join(parts)
    raise TypeError(f"unhashable partition key type: {type(value).__name__}")


def stable_hash(value) -> int:
    """A 64-bit FNV-1a hash, identical across processes and runs."""
    data = _encode(value)
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def bucket_of(value, num_buckets: int) -> int:
    """Map ``value`` to one of ``num_buckets`` buckets."""
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    return stable_hash(value) % num_buckets
