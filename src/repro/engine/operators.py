"""Iterator-model (Volcano-style) operators, batch-at-a-time.

Each operator exposes ``schema`` (its output schema) and ``rows()`` (a
generator of output tuples), and holds its children — a pull-based
pipeline exactly like the Gamma operator trees the paper assumes.  The
aggregate operators reuse the same bounded engines the parallel
algorithms run on (`HashAggregator` / `SortAggregator`), so memory
behaviour is identical inside and outside the simulator.

Hot operators additionally expose ``batches()`` — the same stream as
``rows()`` but in lists of ``BATCH_ROWS`` tuples, so per-row virtual
dispatch is paid once per batch (the Volcano-overhead fix the related
aggregation-performance studies all converge on) — and ``blocks()``,
which yields the stream as encoded :class:`~repro.storage.RowBlock`
buffers for process or network boundaries.  ``column_blocks()`` is the
columnar sibling: the stream as
:class:`~repro.storage.columnblock.ColumnBlock` chunks, which a scan
over a block-born :class:`~repro.storage.relation.BlockRelation` (and a
project above it) serves as zero-copy buffer slices — no tuple is ever
materialized between a columnar generator and a columnar consumer.
"""

from __future__ import annotations

from repro.core.aggregates import make_state_factory
from repro.core.hashtable import HashAggregator
from repro.core.query import AggregateQuery
from repro.core.sortagg import SortAggregator
from repro.storage.columnblock import ColumnBlock, have_numpy
from repro.storage.relation import Relation
from repro.storage.rowblock import RowBlock
from repro.storage.schema import Column, Schema
from repro.storage.serialization import RowCodec

BATCH_ROWS = 4096


class Operator:
    """Base operator: children, an output schema, and a row stream."""

    name = "operator"

    def __init__(self, *children: "Operator") -> None:
        self.children = list(children)

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def rows(self):
        raise NotImplementedError

    def batches(self, batch_rows: int = BATCH_ROWS):
        """The output as lists of at most ``batch_rows`` tuples.

        The default chunks ``rows()``; operators with a cheaper native
        batch form (scan, select, project, aggregate) override this and
        derive ``rows()`` from it instead.
        """
        batch = []
        append = batch.append
        for row in self.rows():
            append(row)
            if len(batch) >= batch_rows:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def blocks(self, batch_rows: int = BATCH_ROWS):
        """The output as encoded row blocks of this operator's schema."""
        codec = RowCodec(self.schema)
        for batch in self.batches(batch_rows):
            yield RowBlock.from_rows(codec, batch)

    def column_blocks(self, batch_rows: int = BATCH_ROWS):
        """The output as :class:`ColumnBlock` chunks of this schema.

        The default columnarizes each batch (requires numpy); operators
        sitting on a block-born source override this with buffer-slice
        streams that never touch a row tuple.
        """
        schema = self.schema
        for batch in self.batches(batch_rows):
            yield ColumnBlock.from_rows(schema, batch)

    def describe(self) -> str:
        """One line for EXPLAIN output."""
        return self.name


class ScanOp(Operator):
    """Leaf: stream a relation's rows."""

    name = "scan"

    def __init__(self, relation: Relation) -> None:
        super().__init__()
        self.relation = relation

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    def rows(self):
        yield from self.relation.rows

    def batches(self, batch_rows: int = BATCH_ROWS):
        rows = self.relation.rows
        for start in range(0, len(rows), batch_rows):
            yield rows[start : start + batch_rows]

    def column_blocks(self, batch_rows: int = BATCH_ROWS):
        """Native slices of a block-born relation; columnarized batches
        otherwise.  Slices share the relation's buffers and dictionary —
        a scan over a :class:`BlockRelation` never decodes a row."""
        block = getattr(self.relation, "block", None)
        if block is None or not have_numpy():
            yield from super().column_blocks(batch_rows)
            return
        for start in range(0, block.num_rows, batch_rows):
            yield block.slice(start, start + batch_rows)

    def describe(self) -> str:
        return f"scan({len(self.relation)} rows)"


class SelectOp(Operator):
    """Filter rows with a predicate over a column-name mapping."""

    name = "select"

    def __init__(self, child: Operator, predicate) -> None:
        super().__init__(child)
        self.predicate = predicate
        self._names = child.schema.names()

    @property
    def schema(self) -> Schema:
        return self.children[0].schema

    def rows(self):
        for batch in self.batches():
            yield from batch

    def batches(self, batch_rows: int = BATCH_ROWS):
        names = self._names
        predicate = self.predicate
        for batch in self.children[0].batches(batch_rows):
            kept = [
                row for row in batch if predicate(dict(zip(names, row)))
            ]
            if kept:
                yield kept


class ProjectOp(Operator):
    """Keep only the named columns, in the given order."""

    name = "project"

    def __init__(self, child: Operator, columns) -> None:
        super().__init__(child)
        self.columns = list(columns)
        self._schema = child.schema.project(self.columns)
        self._idx = child.schema.indexes_of(self.columns)

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self):
        for batch in self.batches():
            yield from batch

    def batches(self, batch_rows: int = BATCH_ROWS):
        idx = self._idx
        for batch in self.children[0].batches(batch_rows):
            yield [tuple(row[i] for i in idx) for row in batch]

    def column_blocks(self, batch_rows: int = BATCH_ROWS):
        """Columnar projection is a column-list reshuffle — buffers and
        dictionaries are shared with the child's blocks, not copied."""
        for block in self.children[0].column_blocks(batch_rows):
            yield block.project(self._idx, self._schema)

    def describe(self) -> str:
        return f"project({', '.join(self.columns)})"


def _aggregate_output_schema(query: AggregateQuery, child: Schema) -> Schema:
    columns = [child.column(name) for name in query.group_by]
    columns += [
        Column(spec.output_name, "float") for spec in query.aggregates
    ]
    return Schema(columns)


class _AggregateBase(Operator):
    """Shared plumbing of the two aggregate operators."""

    def __init__(
        self,
        child: Operator,
        query: AggregateQuery,
        max_entries: int = 2**62,
    ) -> None:
        super().__init__(child)
        self.query = query
        self.max_entries = max_entries
        self._bq = query.bind(child.schema)
        self._schema = _aggregate_output_schema(query, child.schema)
        self.spilled_items = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    def _make_engine(self):
        raise NotImplementedError

    def rows(self):
        bq = self._bq
        engine = self._make_engine()
        # WHERE is the planner's select operator's job; the batch call
        # must not re-apply it here (the aggregate's input schema can
        # differ from the predicate's).
        for batch in self.children[0].batches():
            engine.add_rows(batch, bq, apply_where=False)
        for key, state in engine.finish():
            yield bq.result_row(key, state)
        self.spilled_items = engine.spilled_items

    def describe(self) -> str:
        keys = ", ".join(self.query.group_by) or "<scalar>"
        aggs = ", ".join(s.output_name for s in self.query.aggregates)
        return f"{self.name}(by [{keys}] compute [{aggs}], M={self.max_entries})"


class HashAggregateOp(_AggregateBase):
    """GROUP BY via the bounded hash engine (unordered output)."""

    name = "hash_aggregate"

    def _make_engine(self):
        return HashAggregator(
            make_state_factory(self.query.aggregates), self.max_entries
        )


class SortAggregateOp(_AggregateBase):
    """GROUP BY via the sort-run engine (output in key order)."""

    name = "sort_aggregate"

    def _make_engine(self):
        return SortAggregator(
            make_state_factory(self.query.aggregates), self.max_entries
        )


class HashJoinOp(Operator):
    """Equi-join: build on the right child, probe with the left.

    The paper's example operator tree is "two select operators followed
    by a join operator" feeding aggregation; this operator completes
    that pipeline.  Output rows are left columns followed by right
    columns (the right join key is kept — project it away if unwanted).
    Right-side column names that collide with left ones are suffixed
    ``_r`` in the output schema.
    """

    name = "hash_join"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
    ) -> None:
        super().__init__(left, right)
        self.left_key = left_key
        self.right_key = right_key
        self._left_idx = left.schema.index_of(left_key)
        self._right_idx = right.schema.index_of(right_key)
        left_names = set(left.schema.names())
        out_columns = list(left.schema.columns)
        for column in right.schema.columns:
            if column.name in left_names:
                out_columns.append(
                    Column(
                        column.name + "_r", column.kind, column.size_bytes
                    )
                )
            else:
                out_columns.append(column)
        self._schema = Schema(out_columns)

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self):
        table: dict = {}
        for row in self.children[1].rows():
            table.setdefault(row[self._right_idx], []).append(row)
        for row in self.children[0].rows():
            for match in table.get(row[self._left_idx], ()):
                yield row + match

    def describe(self) -> str:
        return f"hash_join({self.left_key} = {self.right_key})"


class HavingOp(Operator):
    """Post-grouping filter over the aggregate output row."""

    name = "having"

    def __init__(self, child: Operator, predicate) -> None:
        super().__init__(child)
        self.predicate = predicate
        self._names = child.schema.names()

    @property
    def schema(self) -> Schema:
        return self.children[0].schema

    def rows(self):
        names = self._names
        for row in self.children[0].rows():
            if self.predicate(dict(zip(names, row))):
                yield row


class SortOp(Operator):
    """Full sort on named columns (materializing)."""

    name = "sort"

    def __init__(self, child: Operator, columns, descending=False) -> None:
        super().__init__(child)
        self.columns = list(columns)
        self.descending = descending
        self._idx = child.schema.indexes_of(self.columns)

    @property
    def schema(self) -> Schema:
        return self.children[0].schema

    def rows(self):
        idx = self._idx
        yield from sorted(
            self.children[0].rows(),
            key=lambda row: tuple(row[i] for i in idx),
            reverse=self.descending,
        )

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"sort({', '.join(self.columns)} {direction})"


class LimitOp(Operator):
    """Emit at most n rows."""

    name = "limit"

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise ValueError("limit must be non-negative")
        super().__init__(child)
        self.n = n

    @property
    def schema(self) -> Schema:
        return self.children[0].schema

    def rows(self):
        for i, row in enumerate(self.children[0].rows()):
            if i >= self.n:
                return
            yield row

    def describe(self) -> str:
        return f"limit({self.n})"


def execute(plan: Operator) -> Relation:
    """Pull the plan to completion and materialize the result."""
    return Relation(plan.schema, plan.rows())
