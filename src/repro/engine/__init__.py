"""A Volcano-style local operator engine.

Section 2 assumes a Gamma-like system where "each relational operation is
represented by operators" and data flows through them in a pipeline —
select feeding aggregation feeding a store.  This subpackage provides
that substrate for a single node: iterator-model operators that compose
into plans, so the library can execute the paper's canonical query shape
(scan → select → aggregate → having → project) outside the cluster
simulator too.
"""

from repro.engine.operators import (
    HashAggregateOp,
    HashJoinOp,
    HavingOp,
    LimitOp,
    Operator,
    ProjectOp,
    ScanOp,
    SelectOp,
    SortAggregateOp,
    SortOp,
    execute,
)
from repro.engine.planner import build_aggregate_plan, explain, run_query

__all__ = [
    "HashAggregateOp",
    "HashJoinOp",
    "HavingOp",
    "LimitOp",
    "Operator",
    "ProjectOp",
    "ScanOp",
    "SelectOp",
    "SortAggregateOp",
    "SortOp",
    "build_aggregate_plan",
    "execute",
    "explain",
    "run_query",
]
