"""Plan construction and EXPLAIN for the local operator engine."""

from __future__ import annotations

from repro.core.query import AggregateQuery
from repro.engine.operators import (
    HashAggregateOp,
    HavingOp,
    Operator,
    ScanOp,
    SelectOp,
    SortAggregateOp,
    SortOp,
    execute,
)
from repro.storage.relation import Relation


def build_aggregate_plan(
    relation: Relation,
    query: AggregateQuery,
    method: str = "hash",
    max_entries: int = 2**62,
    order_results: bool = False,
) -> Operator:
    """The paper's canonical tree: scan → select → aggregate → having.

    ``method`` picks the hash or sort aggregation engine; with "sort"
    the output is already in key order, so ``order_results`` adds a
    SortOp only for the hash engine.
    """
    plan: Operator = ScanOp(relation)
    if query.where is not None:
        plan = SelectOp(plan, query.where)
    if method == "hash":
        plan = HashAggregateOp(plan, query, max_entries)
    elif method == "sort":
        plan = SortAggregateOp(plan, query, max_entries)
    else:
        raise ValueError(
            f"method must be 'hash' or 'sort', got {method!r}"
        )
    if query.having is not None:
        plan = HavingOp(plan, query.having)
    if order_results and method == "hash" and query.group_by:
        plan = SortOp(plan, list(query.group_by))
    return plan


def run_query(
    relation: Relation,
    query: AggregateQuery,
    method: str = "hash",
    max_entries: int = 2**62,
) -> Relation:
    """Build and execute the canonical aggregate plan."""
    plan = build_aggregate_plan(
        relation, query, method=method, max_entries=max_entries,
        order_results=True,
    )
    return execute(plan)


def explain(plan: Operator, indent: int = 0) -> str:
    """An EXPLAIN-style rendering of the operator tree."""
    lines = [" " * indent + "-> " + plan.describe()]
    for child in plan.children:
        lines.append(explain(child, indent + 3))
    return "\n".join(lines)
