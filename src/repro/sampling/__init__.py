"""Page-oriented random sampling and group-count estimation (Section 3.1).

The Sampling algorithm needs only a coarse answer — "is the number of groups
small or large relative to a crossover threshold?" — which is far easier
than the general distinct-value estimation problem.  Each node samples pages
of its local fragment; the distinct groups observed in the pooled sample are
a lower bound on the relation's group count, and the Erdős–Rényi
coupon-collector bound says a sample of roughly ten times the threshold
suffices to decide.
"""

from repro.sampling.decision import choose_algorithm, crossover_threshold
from repro.sampling.estimator import (
    distinct_lower_bound,
    erdos_renyi_sample_size,
    paper_sample_size,
)
from repro.sampling.page_sampler import sample_fragment_pages, sample_rows

__all__ = [
    "choose_algorithm",
    "crossover_threshold",
    "distinct_lower_bound",
    "erdos_renyi_sample_size",
    "paper_sample_size",
    "sample_fragment_pages",
    "sample_rows",
]
