"""Group-count estimation from a sample.

The distinct count observed in any sample is a *lower bound* on the
relation's group count — exactly what the crossover decision needs: if even
the sample shows more groups than the threshold, Repartitioning is safe.

``erdos_renyi_sample_size`` is the coupon-collector bound the paper cites
[ER61]: to observe ~k distinct groups of a relation that has at least k,
Θ(k log k) draws suffice; ``paper_sample_size`` is the paper's engineering
rule of thumb ("about 10 times the crossover threshold", e.g. 2563 samples
for a threshold of 320).

The paper also notes the *general* estimation problem is the species
estimation problem [BF93]; for completeness this module ships two
classical species estimators (Chao1, first-order jackknife) and a
Flajolet–Martin probabilistic counter — all usable as drop-in
alternatives to the plain lower bound when the caller wants an estimate
rather than a bound.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.storage.hashing import stable_hash


def distinct_lower_bound(keys) -> int:
    """Distinct values observed in the sample — a lower bound on |groups|."""
    return len(set(keys))


def erdos_renyi_sample_size(threshold: int, safety: float = 1.0) -> int:
    """Coupon-collector draws to expect all of ``threshold`` coupons.

    E[draws] = k (ln k + γ) + 1/2; ``safety`` scales the estimate for
    confidence beyond the expectation.
    """
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    if threshold == 1:
        return max(1, math.ceil(safety))
    gamma = 0.5772156649015329
    expected = threshold * (math.log(threshold) + gamma) + 0.5
    return math.ceil(expected * safety)


def paper_sample_size(threshold: int, multiplier: float = 10.0) -> int:
    """The paper's rule of thumb: ~10× the crossover threshold."""
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    return math.ceil(threshold * multiplier)


def chao1_estimate(keys) -> float:
    """Chao1 species estimator: d + f1² / (2·f2).

    ``f1``/``f2`` are the counts of groups seen exactly once/twice in the
    sample; singletons hint at how many groups were missed entirely.
    Always ≥ the observed distinct count.
    """
    frequencies = Counter(keys)
    if not frequencies:
        return 0.0
    d = len(frequencies)
    counts = Counter(frequencies.values())
    f1 = counts.get(1, 0)
    f2 = counts.get(2, 0)
    if f2 > 0:
        return d + f1 * f1 / (2.0 * f2)
    # Bias-corrected form for f2 = 0.
    return d + f1 * (f1 - 1) / 2.0


def jackknife_estimate(keys) -> float:
    """First-order jackknife: d + f1 · (n − 1) / n."""
    sample = list(keys)
    n = len(sample)
    if n == 0:
        return 0.0
    frequencies = Counter(sample)
    f1 = sum(1 for c in frequencies.values() if c == 1)
    return len(frequencies) + f1 * (n - 1) / n


class FlajoletMartinSketch:
    """A probabilistic distinct counter (Flajolet–Martin, 1985).

    Era-appropriate for the paper: estimates the number of distinct
    groups in constant space by tracking, per stochastic-averaging
    bucket, the maximum number of trailing zero bits of the keys'
    hashes.  Sketches merge by taking the per-bucket max, so the
    coordinator can combine node-local sketches for free — the same
    composition trick the aggregation partials use.
    """

    # Bias correction for the max-rank variant with stochastic
    # averaging, calibrated empirically against stable_hash (the
    # classic 0.77351 applies to the bitmap/PCSA variant).
    _PHI = 2.75

    def __init__(self, num_buckets: int = 64) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        self.num_buckets = num_buckets
        self._max_zeros = [0] * num_buckets

    @staticmethod
    def _trailing_zeros(value: int) -> int:
        if value == 0:
            return 64
        return (value & -value).bit_length() - 1

    def add(self, key) -> None:
        h = stable_hash(("fm", key))
        bucket = h % self.num_buckets
        zeros = self._trailing_zeros(h // self.num_buckets) + 1
        if zeros > self._max_zeros[bucket]:
            self._max_zeros[bucket] = zeros

    def merge(self, other: "FlajoletMartinSketch") -> None:
        if other.num_buckets != self.num_buckets:
            raise ValueError("cannot merge sketches of different widths")
        self._max_zeros = [
            max(a, b) for a, b in zip(self._max_zeros, other._max_zeros)
        ]

    def estimate(self) -> float:
        mean_r = sum(self._max_zeros) / self.num_buckets
        return self.num_buckets / self._PHI * (2.0**mean_r - 1.0)


ESTIMATORS = {
    "lower_bound": lambda keys: float(distinct_lower_bound(keys)),
    "chao1": chao1_estimate,
    "jackknife": jackknife_estimate,
}


def estimate_groups(keys, method: str = "lower_bound") -> float:
    """Dispatch to one of the named sample-based estimators."""
    try:
        return ESTIMATORS[method](keys)
    except KeyError:
        raise KeyError(
            f"unknown estimator {method!r}; expected one of "
            f"{sorted(ESTIMATORS)}"
        ) from None
