"""The Sampling algorithm's crossover decision (Section 3.1).

The optimizer picks a crossover threshold — a group count "likely to lie in
the middle range where both algorithms perform well"; the paper suggests
about 10 times the number of processors, and uses 100×N in the scaleup
study.  The decision itself is then a one-line comparison of the sampled
lower bound against the threshold.
"""

from __future__ import annotations

TWO_PHASE = "two_phase"
REPARTITIONING = "repartitioning"


def crossover_threshold(num_nodes: int, groups_per_node: int = 10) -> int:
    """The switching group count: ``groups_per_node`` × processors."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if groups_per_node < 1:
        raise ValueError("groups_per_node must be at least 1")
    return num_nodes * groups_per_node


def choose_algorithm(estimated_groups: int, threshold: int) -> str:
    """Pick Two Phase when groups look few, Repartitioning otherwise."""
    if estimated_groups < 0:
        raise ValueError("estimated_groups must be non-negative")
    if estimated_groups < threshold:
        return TWO_PHASE
    return REPARTITIONING
