"""Page-oriented random sampling of a relation fragment.

The paper samples at page granularity ("letting each node randomly sample
relation pages on its local disk") because random page reads are the unit of
I/O; page sampling is effective as long as tuples within a page are not
correlated with the group key, which holds for round-robin placement
[Ses92].
"""

from __future__ import annotations

import numpy as np

from repro.storage.relation import Relation, tuples_per_page


def sample_fragment_pages(
    relation: Relation,
    num_pages: int,
    page_size: int,
    rng: np.random.Generator,
) -> tuple[list, int]:
    """Sample ``num_pages`` distinct pages; returns (rows, pages_read).

    If the fragment has fewer pages than requested, the whole fragment is
    returned (pages_read reflects what was actually read).
    """
    if num_pages < 0:
        raise ValueError("num_pages must be non-negative")
    per_page = tuples_per_page(relation.schema.tuple_bytes, page_size)
    total_pages = relation.num_pages(page_size)
    if num_pages >= total_pages:
        return list(relation.rows), total_pages
    chosen = rng.choice(total_pages, size=num_pages, replace=False)
    rows: list = []
    for page_no in sorted(int(p) for p in chosen):
        start = page_no * per_page
        rows.extend(relation.rows[start : start + per_page])
    return rows, num_pages


def sample_rows(
    relation: Relation,
    num_rows: int,
    page_size: int,
    rng: np.random.Generator,
) -> tuple[list, int]:
    """Sample at least ``num_rows`` rows by drawing whole pages.

    Returns (rows, pages_read); the row count is rounded up to a whole
    number of pages, matching how an I/O-bound sampler really behaves.
    """
    if num_rows <= 0:
        return [], 0
    per_page = tuples_per_page(relation.schema.tuple_bytes, page_size)
    pages_needed = -(-num_rows // per_page)
    return sample_fragment_pages(relation, pages_needed, page_size, rng)
