"""Stdlib HTTP/JSON front end for :class:`~repro.service.QueryService`.

``ThreadingHTTPServer`` gives each request its own thread; the service's
admission controller is the real concurrency gate, so the HTTP layer
stays a dumb translator:

* ``POST /query`` — body ``{"sql": "...", "timeout_seconds": 2.5}``
  (timeout optional) → ``200`` with rows, or a typed error body whose
  HTTP status matches the error (429 shed, 503 draining, 504 deadline,
  400 query failure).
* ``GET /healthz`` — admission counts, ladder rung, breaker state;
  ``200`` while serving, ``503`` once draining.
* ``GET /metrics`` — the service MetricsRegistry snapshot as JSON.

``serve`` wires SIGTERM/SIGINT to graceful drain: admission stops,
in-flight queries finish (or miss their deadlines and are cancelled),
the worker pool is shut down, and only then does the process exit.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.core import QueryService
from repro.service.errors import ServiceError

_MAX_BODY_BYTES = 1 << 20  # a SQL text; anything bigger is abuse


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True  # drain owns lifecycle; don't block exit on I/O

    def __init__(self, address, service: QueryService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet: metrics are the log
        pass

    def _send_json(self, status: int, body: dict,
                   retry_after: float | None = None) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:.3f}")
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_json(400, {
                "error": "bad_request",
                "message": "body must be JSON with a Content-Length "
                           f"between 1 and {_MAX_BODY_BYTES} bytes",
            })
            return None
        try:
            body = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {
                "error": "bad_request", "message": "body is not valid JSON",
            })
            return None
        if not isinstance(body, dict):
            self._send_json(400, {
                "error": "bad_request", "message": "body must be an object",
            })
            return None
        return body

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            status = service.status()
            code = 503 if status["status"] == "draining" else 200
            self._send_json(code, status)
        elif self.path == "/metrics":
            self._send_json(200, service.metrics.snapshot())
        else:
            self._send_json(404, {
                "error": "not_found", "message": f"no route {self.path!r}",
            })

    def do_POST(self) -> None:
        if self.path != "/query":
            self._send_json(404, {
                "error": "not_found", "message": f"no route {self.path!r}",
            })
            return
        body = self._read_json()
        if body is None:
            return
        sql = body.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self._send_json(400, {
                "error": "bad_request",
                "message": "body needs a non-empty 'sql' string",
            })
            return
        timeout = body.get("timeout_seconds")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            self._send_json(400, {
                "error": "bad_request",
                "message": "'timeout_seconds' must be a positive number",
            })
            return
        service = self.server.service
        try:
            outcome = service.submit(sql, timeout_seconds=timeout)
        except ServiceError as exc:
            retry_after = getattr(exc, "retry_after_seconds", None)
            self._send_json(exc.http_status, exc.payload(),
                            retry_after=retry_after)
            return
        self._send_json(200, {
            "query_id": outcome.query_id,
            "table": outcome.table,
            "rows": [list(row) for row in outcome.rows],
            "elapsed_seconds": round(outcome.elapsed_seconds, 6),
            "rung": outcome.rung,
            "retries": outcome.retries,
            "cache_hit": outcome.cache_hit,
        })


def create_server(service: QueryService, host: str = "127.0.0.1",
                  port: int = 8642) -> ServiceHTTPServer:
    """Bind the socket and return the server (``port=0`` = OS-assigned;
    read the choice back from ``server.server_port``)."""
    return ServiceHTTPServer((host, port), service)


def serve(service: QueryService, host: str = "127.0.0.1",
          port: int = 8642, install_signals: bool = True,
          server: ServiceHTTPServer | None = None,
          ready: threading.Event | None = None) -> ServiceHTTPServer:
    """Run the HTTP server until SIGTERM/SIGINT, then drain and return.

    Blocks the calling thread.  Pass a pre-bound ``server`` (from
    :func:`create_server`) when the caller needs the port before the
    loop starts; ``ready`` (if given) is set just before serving.
    """
    if server is None:
        server = create_server(service, host, port)

    def _drain_and_stop() -> None:
        service.drain()
        server.shutdown()

    if install_signals:
        def _on_signal(signum, frame):
            # Signal context: do the blocking drain on a helper thread.
            threading.Thread(target=_drain_and_stop, daemon=True).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return server
