"""Stdlib HTTP/JSON front end for :class:`~repro.service.QueryService`.

``ThreadingHTTPServer`` gives each request its own thread; the service's
admission controller is the real concurrency gate, so the HTTP layer
stays a dumb translator:

* ``POST /query`` — body ``{"sql": "...", "timeout_seconds": 2.5}``
  (timeout optional) → ``200`` with rows, or a typed error body whose
  HTTP status matches the error (429 shed, 503 draining, 504 deadline,
  400 query failure).
* ``GET /healthz`` — admission counts, ladder rung, breaker state;
  ``200`` while serving, ``503`` once draining.
* ``GET /metrics`` — the service MetricsRegistry snapshot as JSON;
  ``GET /metrics?format=prom`` — Prometheus text exposition (0.0.4).
* ``GET /debug/queries`` — the flight recorder's recent query records,
  newest first (``?n=`` limits the count).
* ``GET /debug/trace/<query_id>`` — the auto-captured Chrome trace of a
  slow query, loadable in Perfetto / ``chrome://tracing``.

Keep-alive discipline: a request body is either fully read before the
response is written, or the response carries ``Connection: close`` and
the connection is torn down — never a 400 that leaves unread body bytes
to be misparsed as the next pipelined request.

``serve`` wires SIGTERM/SIGINT to graceful drain: admission stops,
in-flight queries finish (or miss their deadlines and are cancelled),
the worker pool is shut down, and only then does the process exit.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.obs.live import PROM_CONTENT_TYPE, to_prometheus
from repro.service.core import QueryService
from repro.service.errors import ServiceError

_MAX_BODY_BYTES = 1 << 20  # a SQL text; anything bigger is abuse


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True  # drain owns lifecycle; don't block exit on I/O
    # socketserver's default accept backlog is 5; a burst of short-lived
    # connections (scrapers + query storm) overflows that and the kernel
    # resets the excess.  Admission control is the real gate, so let the
    # listener absorb the burst.
    request_queue_size = 128

    def __init__(self, address, service: QueryService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.access_log = service.config.access_log


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt, *args):
        # Off by default (ServiceConfig.access_log): the query log and
        # metrics are the operational record; this is debug chatter.
        if getattr(self.server, "access_log", False):
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send_json(self, status: int, body: dict,
                   retry_after: float | None = None,
                   close: bool = False) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:.3f}")
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY_BYTES:
            # The body (if any) was not read and cannot safely be — a
            # keep-alive read would misparse it as the next request, so
            # the connection is closed with the refusal.
            self._send_json(400, {
                "error": "bad_request",
                "message": "body must be JSON with a Content-Length "
                           f"between 1 and {_MAX_BODY_BYTES} bytes",
            }, close=True)
            return None
        raw = self.rfile.read(length)  # always drained, even on a 400
        try:
            body = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {
                "error": "bad_request", "message": "body is not valid JSON",
            })
            return None
        if not isinstance(body, dict):
            self._send_json(400, {
                "error": "bad_request", "message": "body must be an object",
            })
            return None
        return body

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        service = self.server.service
        path, _, query = self.path.partition("?")
        params = parse_qs(query)
        if path == "/healthz":
            status = service.status()
            code = 503 if status["status"] == "draining" else 200
            self._send_json(code, status)
        elif path == "/metrics":
            fmt = (params.get("format") or ["json"])[-1]
            if fmt == "prom":
                self._send_text(
                    200, to_prometheus(service.metrics), PROM_CONTENT_TYPE
                )
            else:
                self._send_json(200, service.metrics.snapshot())
        elif path == "/debug/queries":
            recorder = service.flight_recorder
            if recorder is None:
                self._send_json(404, {
                    "error": "not_found",
                    "message": "live observability is disabled",
                })
                return
            limit = None
            raw = (params.get("n") or [None])[-1]
            if raw is not None:
                try:
                    limit = max(0, int(raw))
                except ValueError:
                    self._send_json(400, {
                        "error": "bad_request",
                        "message": "'n' must be an integer",
                    })
                    return
            self._send_json(200, {"queries": recorder.queries(limit)})
        elif path.startswith("/debug/trace/"):
            recorder = service.flight_recorder
            if recorder is None:
                self._send_json(404, {
                    "error": "not_found",
                    "message": "live observability is disabled",
                })
                return
            raw = path[len("/debug/trace/"):]
            try:
                query_id = int(raw)
            except ValueError:
                self._send_json(400, {
                    "error": "bad_request",
                    "message": f"query id must be an integer, got {raw!r}",
                })
                return
            trace = recorder.trace(query_id)
            if trace is None:
                self._send_json(404, {
                    "error": "not_found",
                    "message": f"no trace captured for query {query_id} "
                               "(only queries over the slow threshold "
                               "are traced, oldest are evicted)",
                })
                return
            self._send_json(200, trace)
        else:
            self._send_json(404, {
                "error": "not_found", "message": f"no route {self.path!r}",
            })

    def do_POST(self) -> None:
        if self.path != "/query":
            self._send_json(404, {
                "error": "not_found", "message": f"no route {self.path!r}",
            })
            return
        body = self._read_json()
        if body is None:
            return
        sql = body.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self._send_json(400, {
                "error": "bad_request",
                "message": "body needs a non-empty 'sql' string",
            })
            return
        timeout = body.get("timeout_seconds")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            self._send_json(400, {
                "error": "bad_request",
                "message": "'timeout_seconds' must be a positive number",
            })
            return
        service = self.server.service
        try:
            outcome = service.submit(sql, timeout_seconds=timeout)
        except ServiceError as exc:
            retry_after = getattr(exc, "retry_after_seconds", None)
            self._send_json(exc.http_status, exc.payload(),
                            retry_after=retry_after)
            return
        self._send_json(200, {
            "query_id": outcome.query_id,
            "table": outcome.table,
            "rows": [list(row) for row in outcome.rows],
            "elapsed_seconds": round(outcome.elapsed_seconds, 6),
            "rung": outcome.rung,
            "retries": outcome.retries,
            "cache_hit": outcome.cache_hit,
        })


def create_server(service: QueryService, host: str = "127.0.0.1",
                  port: int = 8642) -> ServiceHTTPServer:
    """Bind the socket and return the server (``port=0`` = OS-assigned;
    read the choice back from ``server.server_port``)."""
    return ServiceHTTPServer((host, port), service)


def serve(service: QueryService, host: str = "127.0.0.1",
          port: int = 8642, install_signals: bool = True,
          server: ServiceHTTPServer | None = None,
          ready: threading.Event | None = None) -> ServiceHTTPServer:
    """Run the HTTP server until SIGTERM/SIGINT, then drain and return.

    Blocks the calling thread.  Pass a pre-bound ``server`` (from
    :func:`create_server`) when the caller needs the port before the
    loop starts; ``ready`` (if given) is set just before serving.
    """
    if server is None:
        server = create_server(service, host, port)

    def _drain_and_stop() -> None:
        service.drain()
        server.shutdown()

    if install_signals:
        def _on_signal(signum, frame):
            # Signal context: do the blocking drain on a helper thread.
            threading.Thread(target=_drain_and_stop, daemon=True).start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return server
