"""The query service: admission → ladder → execute-with-retry → cache.

:class:`QueryService` is transport-agnostic — :mod:`repro.service.http`
puts an HTTP front end on it, tests and the bench drive it directly.
``submit`` is safe to call from many threads at once: admission is the
only gate, and everything downstream (the worker pool, the breaker, the
budget pool, the caches, the observability sinks) is either lock-guarded
here or thread-safe itself.

The execution path is deliberately the *same* code one-shot CLI runs
use — ``repro.sql.run_sql(substrate="mp")`` over the shared persistent
pool — so every robustness feature PRs 1–6 built (heartbeats,
speculation, poison quarantine, the circuit breaker, governed spill)
is exercised unchanged under concurrent load.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs.decisions import (
    ADMISSION_SHED,
    CACHE_SERVE,
    DEADLINE_MISS,
    LADDER_TRANSITION,
    QUERY_RETRY,
    DecisionLedger,
)
from repro.obs.live import FlightRecorder, QueryLog, query_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.parallel.mp_executor import (
    DeadlineExceededError,
    FragmentFailedError,
    pool_breaker_state,
)
from repro.resources import MemoryBudgetPool
from repro.service.admission import AdmissionController
from repro.service.cache import PlanCache, ResultCache
from repro.service.config import ServiceConfig
from repro.service.deadline import Deadline
from repro.service.errors import (
    DeadlineMissError,
    QueryFailedError,
    ServiceError,
    ShedError,
)
from repro.service.ladder import SVC_CACHE_ONLY, SVC_FULL, OverloadLadder
from repro.service.retry import RetryPolicy
from repro.sql.lexer import LexError
from repro.sql.parser import ParseError
from repro.sql.runner import run_sql
from repro.storage.relation import DistributedRelation


@dataclass
class QueryOutcome:
    """What a successful ``submit`` returns."""

    query_id: int
    table: str
    rows: list = field(repr=False)
    elapsed_seconds: float = 0.0
    rung: str = SVC_FULL
    retries: int = 0
    cache_hit: bool = False


class _Table:
    __slots__ = ("relation", "version")

    def __init__(self, relation: DistributedRelation, version: int) -> None:
        self.relation = relation
        self.version = version


class QueryService:
    """Admission-controlled concurrent SQL over the persistent pool."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        ledger: DecisionLedger | None = None,
        tracer=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ledger = ledger if ledger is not None else DecisionLedger()
        self.tracer = tracer
        self.budget_pool = MemoryBudgetPool(
            self.config.memory_pool_bytes,
            slice_bytes=None,
            min_slice_bytes=min(64 * 1024, self.config.slice_bytes),
        )
        self.admission = AdmissionController(self.config, self.budget_pool)
        self.ladder = OverloadLadder(
            self.config.reduced_load, self.config.cache_only_load
        )
        self.retry_policy = RetryPolicy(
            self.config.max_query_retries,
            self.config.retry_backoff_seconds,
            self.config.retry_backoff_cap_seconds,
            self.config.retry_jitter,
        )
        self.result_cache = ResultCache(self.config.result_cache_entries)
        self.plan_cache = PlanCache(self.config.plan_cache_entries)
        self._tables: dict[str, _Table] = {}
        self._tables_lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._next_id = 0
        self._t0 = time.monotonic()
        # Live serving telemetry (docs/observability.md).  Disabled
        # (live_observability=False) keeps the PR 7 execution path:
        # no query records, no per-query tracer, no latency histograms.
        self._live = self.config.live_observability
        self.query_log: QueryLog | None = None
        self.flight_recorder: FlightRecorder | None = None
        if self._live:
            if self.config.query_log_path:
                self.query_log = QueryLog(
                    self.config.query_log_path,
                    capacity=self.config.query_log_capacity,
                )
            self.flight_recorder = FlightRecorder(
                entries=self.config.flight_recorder_entries,
                trace_entries=self.config.flight_recorder_traces,
                slow_threshold_seconds=(
                    self.config.slow_trace_threshold_seconds
                ),
            )

    # -- tables ---------------------------------------------------------

    def register_table(self, name: str,
                       relation: DistributedRelation) -> None:
        """Register (or replace) a table; replacement bumps the version,
        implicitly invalidating every cached result for the old data."""
        with self._tables_lock:
            existing = self._tables.get(name)
            version = 1 if existing is None else existing.version + 1
            self._tables[name] = _Table(relation, version)

    def bump_table(self, name: str) -> int:
        """Mark ``name`` mutated: old cached results become unreachable."""
        with self._tables_lock:
            table = self._tables[name]
            table.version += 1
            return table.version

    def table_names(self) -> list[str]:
        with self._tables_lock:
            return sorted(self._tables)

    def _lookup(self, name: str) -> tuple[DistributedRelation, int]:
        with self._tables_lock:
            table = self._tables.get(name)
            if table is None:
                raise QueryFailedError(
                    "UnknownTable",
                    f"no table {name!r} registered "
                    f"(have: {', '.join(sorted(self._tables)) or 'none'})",
                )
            return table.relation, table.version

    # -- observability helpers (all under one lock) ---------------------

    def _clock(self) -> float:
        return time.monotonic() - self._t0

    def _count(self, name: str, n: int = 1) -> None:
        with self._obs_lock:
            self.metrics.counter(name).inc(n)

    def _gauges(self) -> None:
        running, queued = self.admission.counts()
        with self._obs_lock:
            self.metrics.gauge("svc.running").set(running)
            self.metrics.gauge("svc.queue_depth").set(queued)
            self.metrics.gauge("svc.ladder.rung").set(
                self.ladder.code()
            )
            self.metrics.gauge("mp.breaker.state").set(
                pool_breaker_state().state_code()
            )
            if self._live:
                # `repro top` derives QPS from counter deltas over the
                # uptime delta between two scrapes.
                self.metrics.gauge("svc.uptime_seconds").set(self._clock())

    def _decide(self, kind: str, **data) -> None:
        with self._obs_lock:
            self.ledger.record(kind, -1, self._clock(), data=data)

    def _span(self, qid: int, start: float, **args) -> None:
        if self.tracer is None:
            return
        with self._obs_lock:
            self.tracer.complete("query", qid, start, self._clock(), **args)

    # -- the submit pipeline --------------------------------------------

    def submit(self, sql: str,
               timeout_seconds: float | None = None) -> QueryOutcome:
        """Run one SQL query; returns rows or raises a typed ServiceError.

        Blocks the calling thread (the HTTP layer gives each request its
        own thread).  ``timeout_seconds`` overrides the config default;
        the deadline covers queueing, retries, and execution together.
        """
        with self._obs_lock:
            self._next_id += 1
            qid = self._next_id
        if timeout_seconds is None:
            timeout_seconds = self.config.default_timeout_seconds
        deadline = Deadline(timeout_seconds)
        start = self._clock()
        info = {
            "queue_wait": 0.0,
            "rung": self.ladder.current,
            "cache_hit": False,
            "retries": 0,
            "exec_seconds": None,
        }
        query_tracer = Tracer(operator_spans=False) if self._live else None
        try:
            outcome = self._submit_inner(qid, sql, deadline, info,
                                         query_tracer)
        except ServiceError as exc:
            self._span(qid, start, error=exc.code)
            self._finish_query(qid, sql, deadline, info, query_tracer,
                               error=exc)
            raise
        self._span(qid, start, rung=outcome.rung,
                   cache_hit=outcome.cache_hit, retries=outcome.retries)
        self._finish_query(qid, sql, deadline, info, query_tracer)
        return outcome

    def _finish_query(self, qid, sql, deadline, info, query_tracer,
                      error=None) -> None:
        """Record one admission outcome: histograms, qlog, flight ring."""
        if not self._live:
            return
        elapsed = deadline.elapsed()
        if error is None:
            outcome, cause, reason = "served", None, None
        else:
            outcome = {
                "shed": "shed",
                "draining": "draining",
                "deadline_miss": "deadline_miss",
            }.get(error.code, "failed")
            cause = getattr(error, "cause_type", None)
            reason = getattr(error, "reason", None)
            info["retries"] = getattr(error, "retries", info["retries"])
        record = query_record(
            query_id=qid,
            sql=sql,
            outcome=outcome,
            queue_wait_seconds=info["queue_wait"],
            elapsed_seconds=elapsed,
            exec_seconds=info["exec_seconds"],
            rung=info["rung"],
            strategy=self.config.strategy,
            cache_hit=info["cache_hit"],
            retries=info["retries"],
            error=cause,
            reason=reason,
        )
        with self._obs_lock:
            self.metrics.histogram("svc.latency_seconds").observe(elapsed)
            self.metrics.histogram("svc.queue_wait_seconds").observe(
                info["queue_wait"]
            )
        if self.flight_recorder is not None:
            self.flight_recorder.note(record, tracer=query_tracer)
        if self.query_log is not None and not self.query_log.record(record):
            self._count("svc.qlog.dropped")

    def _submit_inner(self, qid: int, sql: str, deadline: Deadline,
                      info: dict, query_tracer) -> QueryOutcome:
        try:
            table_name, _query = self.plan_cache.parse(sql)
        except (LexError, ParseError) as exc:
            self._count("svc.failed")
            raise QueryFailedError(type(exc).__name__, str(exc)) from exc
        relation, version = self._lookup(table_name)
        cache_key = ResultCache.key(
            table_name, version, sql, self.config.algorithm
        )

        try:
            slot = self.admission.admit(deadline)
        except ShedError as exc:
            self._count("svc.shed")
            self._decide(ADMISSION_SHED, query_id=qid, reason=exc.reason)
            self._gauges()
            raise
        except DeadlineMissError:
            self._count("svc.deadline_misses")
            self._decide(DEADLINE_MISS, query_id=qid, where="queued")
            raise

        with slot:
            self._count("svc.admitted")
            info["queue_wait"] = slot.queue_wait_seconds
            rung, previous = self.ladder.observe(self.admission.load())
            info["rung"] = rung
            if previous is not None:
                self._decide(LADDER_TRANSITION, query_id=qid,
                             from_rung=previous, to_rung=rung)
            self._gauges()

            cached = self.result_cache.get(cache_key)
            if cached is not None:
                self._count("svc.cache.hits")
                info["cache_hit"] = True
                self._decide(CACHE_SERVE, query_id=qid, table=table_name,
                             version=version)
                return QueryOutcome(
                    qid, table_name, cached,
                    elapsed_seconds=deadline.elapsed(),
                    rung=rung, cache_hit=True,
                )
            self._count("svc.cache.misses")
            if rung == SVC_CACHE_ONLY:
                # Rung 3: only free work is served; a miss is shed with
                # backpressure rather than making overload worse.
                self._count("svc.shed")
                self._decide(ADMISSION_SHED, query_id=qid,
                             reason="overload", rung=rung)
                raise ShedError(
                    "overload",
                    detail="cache-only rung and the result is not cached",
                )

            processes = (
                self.config.processes if rung == SVC_FULL
                else self.config.reduced_processes
            )
            rows, retries = self._execute(
                qid, sql, relation, processes, slot.lease.bytes, deadline,
                info, query_tracer,
            )
            self.result_cache.put(cache_key, rows)
            return QueryOutcome(
                qid, table_name, rows,
                elapsed_seconds=deadline.elapsed(),
                rung=rung, retries=retries,
            )

    def _execute(self, qid, sql, relation, processes, budget_bytes,
                 deadline, info=None, query_tracer=None) -> tuple[list, int]:
        """run_sql over the pool, retrying infra failures with backoff."""
        attempt = 0
        while True:
            query_metrics = MetricsRegistry()
            exec_start = time.monotonic()
            try:
                rows = run_sql(
                    sql, relation,
                    substrate="mp",
                    processes=processes,
                    timeout=self.config.executor_timeout_seconds,
                    deadline=deadline.absolute(),
                    memory_budget_bytes=budget_bytes,
                    metrics=query_metrics,
                    tracer=query_tracer,
                    strategy=self.config.strategy,
                    faults=self.config.faults,
                )
            except DeadlineExceededError as exc:
                self._count("svc.deadline_misses")
                self._decide(DEADLINE_MISS, query_id=qid,
                             where="executing", retries=attempt)
                raise DeadlineMissError(
                    deadline.timeout_seconds or 0.0, detail=str(exc)
                ) from exc
            except FragmentFailedError as exc:
                if (self.retry_policy.is_retryable(exc)
                        and attempt < self.retry_policy.max_retries
                        and not deadline.expired()):
                    delay = deadline.clamp_sleep(
                        self.retry_policy.delay(attempt)
                    )
                    self._count("svc.retries")
                    self._decide(QUERY_RETRY, query_id=qid,
                                 attempt=attempt,
                                 cause=exc.cause_type,
                                 backoff_seconds=delay)
                    time.sleep(delay)
                    attempt += 1
                    continue
                self._count("svc.failed")
                raise QueryFailedError(
                    exc.cause_type or type(exc).__name__, str(exc),
                    retries=attempt,
                ) from exc
            except (ValueError, TypeError) as exc:
                self._count("svc.failed")
                raise QueryFailedError(
                    type(exc).__name__, str(exc), retries=attempt
                ) from exc
            finally:
                if info is not None:
                    # Accumulated across retry attempts, so the query
                    # log separates executor time from queue/backoff.
                    info["exec_seconds"] = (
                        (info["exec_seconds"] or 0.0)
                        + (time.monotonic() - exec_start)
                    )
                    info["retries"] = attempt
                with self._obs_lock:
                    self.metrics.merge(query_metrics)
            return rows, attempt

    # -- health + drain --------------------------------------------------

    def status(self) -> dict:
        """Machine-readable health (the /healthz body)."""
        running, queued = self.admission.counts()
        breaker = pool_breaker_state()
        return {
            "status": "draining" if self.admission.draining else "ok",
            "running": running,
            "queued": queued,
            "load": round(self.admission.load(), 4),
            "ladder_rung": self.ladder.current,
            "breaker": breaker.state,
            "tables": self.table_names(),
            "budget_available_bytes": self.budget_pool.available_bytes,
        }

    def drain(self, timeout_seconds: float | None = None) -> bool:
        """Stop admission, wait out in-flight queries, shut the pool down.

        Returns True when everything finished inside the drain budget.
        Safe to call more than once.  The worker pool is torn down
        unconditionally — deadline-missed queries already discarded
        their workers and unlinked their segments, so after this returns
        there are zero service-owned child processes or shm segments.
        """
        if timeout_seconds is None:
            timeout_seconds = self.config.drain_timeout_seconds
        self.admission.start_drain()
        clean = self.admission.wait_idle(timeout_seconds)
        from repro.parallel.mp_executor import shutdown_worker_pool

        shutdown_worker_pool()
        self._gauges()
        if self.query_log is not None:
            self.query_log.close()
        return clean
