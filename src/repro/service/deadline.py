"""Per-query deadlines as absolute monotonic instants.

A :class:`Deadline` is created at admission and threaded everywhere the
query goes: the admission queue wait, the retry loop's sleeps, and —
via :meth:`absolute` — straight into the executor's
``multiprocessing_aggregate(deadline=...)`` cooperative-cancellation
path, so a query that times out mid-fragment discards its workers'
in-flight jobs and still unlinks every shm segment.
"""

from __future__ import annotations

import time


class Deadline:
    """An absolute ``time.monotonic()`` budget for one query."""

    def __init__(self, timeout_seconds: float | None) -> None:
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        self.timeout_seconds = timeout_seconds
        self._start = time.monotonic()
        self._at = (
            None if timeout_seconds is None
            else self._start + timeout_seconds
        )

    def absolute(self) -> float | None:
        """The monotonic instant to hand the executor (None = no limit)."""
        return self._at

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or None for no limit."""
        if self._at is None:
            return None
        return max(0.0, self._at - time.monotonic())

    def expired(self) -> bool:
        return self._at is not None and time.monotonic() >= self._at

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def clamp_sleep(self, seconds: float) -> float:
        """Never sleep past the deadline (retry backoff uses this)."""
        rem = self.remaining()
        if rem is None:
            return seconds
        return min(seconds, rem)
