"""Query-level retry with exponential backoff + jitter.

Only *infrastructure* failures are retryable — worker death, heartbeat
loss, shm-segment loss, poison quarantine — the same cause set the pool
circuit breaker watches.  User errors (bad SQL, a raising aggregate)
and deadline misses are never retried: retrying a deterministic
failure burns the latency budget for nothing.

The policy composes with, not fights, the breaker: each retry
re-enters ``multiprocessing_aggregate``, which consults the breaker —
so a retry after a rebuild lands on the fresh pool, and a retry after
degradation quietly takes the spawn path.  Backoff gives the pool time
to rebuild instead of hammering it.
"""

from __future__ import annotations

import random

from repro.parallel.mp_executor import (
    _INFRA_CAUSES,
    FragmentFailedError,
)


class RetryPolicy:
    """Decides *whether* and *how long* to wait before a retry."""

    def __init__(
        self,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 2.0,
        jitter: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def is_retryable(self, exc: BaseException) -> bool:
        """True only for pool-infrastructure failures."""
        return (
            isinstance(exc, FragmentFailedError)
            and exc.cause_type in _INFRA_CAUSES
        )

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based): 2^n with jitter."""
        base = min(
            self.backoff_seconds * (2 ** attempt),
            self.backoff_cap_seconds,
        )
        return base * (1.0 + self.jitter * self._rng.random())
