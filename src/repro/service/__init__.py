"""Long-lived query service: admission control, deadlines, degradation.

The paper adapts *at query evaluation time*; this package extends that
to *admission time*.  A :class:`QueryService` admits many concurrent SQL
queries (``repro.sql.run_sql`` over the persistent worker pool) and
keeps answering correctly under overload, memory pressure, and real
worker faults:

* **Admission control** — bounded queue + concurrency cap; each
  admitted query leases a budget slice from a service-wide
  :class:`~repro.resources.MemoryBudgetPool`; over capacity requests
  get a typed shed error instead of queueing unboundedly.
* **Deadlines** — per-query deadlines thread into the executor's
  cooperative-cancellation path; timed-out fragments are discarded and
  their shm segments still unlinked.
* **Retry** — exponential backoff + jitter on infra failures (worker
  death, heartbeat loss, shm loss), composing with the pool circuit
  breaker; every retry is a DecisionLedger event.
* **Degradation ladder** — full parallelism → reduced fanout → cache
  only → shed, keyed on instantaneous load, visible in metrics.
* **Graceful drain** — SIGTERM stops admission, finishes or cancels
  in-flight queries by deadline, shuts the pool down clean.

``repro serve`` boots the HTTP front end (:mod:`repro.service.http`).
See ``docs/service.md``.
"""

from repro.service.admission import AdmissionController
from repro.service.cache import PlanCache, ResultCache
from repro.service.config import ServiceConfig
from repro.service.core import QueryOutcome, QueryService
from repro.service.deadline import Deadline
from repro.service.errors import (
    DeadlineMissError,
    DrainingError,
    QueryFailedError,
    ServiceError,
    ShedError,
)
from repro.service.ladder import (
    SVC_CACHE_ONLY,
    SVC_FULL,
    SVC_REDUCED,
    SVC_SHED,
    OverloadLadder,
)
from repro.service.retry import RetryPolicy

__all__ = [
    "AdmissionController",
    "Deadline",
    "DeadlineMissError",
    "DrainingError",
    "OverloadLadder",
    "PlanCache",
    "QueryFailedError",
    "QueryOutcome",
    "QueryService",
    "ResultCache",
    "RetryPolicy",
    "SVC_CACHE_ONLY",
    "SVC_FULL",
    "SVC_REDUCED",
    "SVC_SHED",
    "ServiceConfig",
    "ServiceError",
    "ShedError",
]
