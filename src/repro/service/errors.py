"""Typed, machine-readable service errors.

Every error the service returns to a client carries a stable ``code``
(the wire discriminant), an ``http_status``, and a ``payload()`` dict —
clients program against the code, humans read the message.  Shed and
deadline errors are *not* failures of the query: they are the service
refusing work it cannot finish honestly, which is the whole point of
admission control.
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base for all typed service errors."""

    code = "service_error"
    http_status = 500

    def payload(self) -> dict:
        """The machine-readable body clients receive."""
        return {"error": self.code, "message": str(self)}


class ShedError(ServiceError):
    """Admission refused: the service is over capacity (HTTP 429).

    ``reason`` says which limit tripped: ``queue_full``,
    ``memory_exhausted``, or ``overload`` (ladder rung 4).
    ``retry_after_seconds`` is advisory backpressure for clients.
    """

    code = "shed"
    http_status = 429

    def __init__(self, reason: str, retry_after_seconds: float = 1.0,
                 detail: str = "") -> None:
        super().__init__(
            f"query shed ({reason})" + (f": {detail}" if detail else "")
        )
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds

    def payload(self) -> dict:
        return {
            "error": self.code,
            "reason": self.reason,
            "retry_after_seconds": self.retry_after_seconds,
            "message": str(self),
        }


class DrainingError(ServiceError):
    """Admission refused: the service is shutting down (HTTP 503)."""

    code = "draining"
    http_status = 503

    def __init__(self) -> None:
        super().__init__("service is draining; no new queries admitted")


class DeadlineMissError(ServiceError):
    """The query's deadline elapsed before it finished (HTTP 504).

    Wraps the executor's cooperative-cancellation signal; the partial
    work was discarded, never returned.
    """

    code = "deadline_miss"
    http_status = 504

    def __init__(self, timeout_seconds: float, detail: str = "") -> None:
        super().__init__(
            f"deadline of {timeout_seconds:.3f}s missed"
            + (f" ({detail})" if detail else "")
        )
        self.timeout_seconds = timeout_seconds

    def payload(self) -> dict:
        return {
            "error": self.code,
            "timeout_seconds": self.timeout_seconds,
            "message": str(self),
        }


class QueryFailedError(ServiceError):
    """The query itself failed (bad SQL, user error, exhausted retries).

    ``cause_type`` is the underlying exception class name; ``retries``
    counts infra-failure retry attempts that were burned before giving
    up (0 for non-retryable errors like a parse failure).
    """

    code = "query_failed"
    http_status = 400

    def __init__(self, cause_type: str, detail: str,
                 retries: int = 0) -> None:
        super().__init__(f"{cause_type}: {detail}")
        self.cause_type = cause_type
        self.retries = retries

    def payload(self) -> dict:
        return {
            "error": self.code,
            "cause_type": self.cause_type,
            "retries": self.retries,
            "message": str(self),
        }
