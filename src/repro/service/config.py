"""Service configuration: one frozen dataclass, validated up front."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for :class:`~repro.service.QueryService`.

    The defaults are sized for the test/bench environment (small host,
    2-process pool); a real deployment would scale ``max_concurrency``
    and ``memory_pool_bytes`` to the box.
    """

    # Admission
    max_concurrency: int = 4       # queries evaluating at once
    queue_depth: int = 16          # bounded admission queue beyond that
    memory_pool_bytes: int = 64 * 1024 * 1024
    memory_slice_bytes: int | None = None  # per-query; None = pool/concurrency
    default_timeout_seconds: float | None = 10.0

    # Executor
    processes: int = 2             # pool workers per query dispatch
    reduced_processes: int = 1     # fanout at ladder rung 2 (in-process)
    algorithm: str = "adaptive_two_phase"
    strategy: str = "pool"         # run_sql strategy (pool/spawn/global/rep/auto)
    executor_timeout_seconds: float = 30.0  # per-fragment timeout

    # Retry (infra failures only)
    max_query_retries: int = 2
    retry_backoff_seconds: float = 0.05
    retry_backoff_cap_seconds: float = 2.0
    retry_jitter: float = 0.5

    # Degradation ladder load thresholds (fraction of total capacity
    # = running + queued over max_concurrency + queue_depth).
    reduced_load: float = 0.5      # above: reduced fanout
    cache_only_load: float = 0.85  # above: serve cache hits only

    # Caches
    result_cache_entries: int = 256
    plan_cache_entries: int = 256

    # Drain
    drain_timeout_seconds: float = 10.0

    # Live observability (see docs/observability.md, "Serving telemetry").
    # Disabled = PR 7 behavior: no query records, no per-query tracer,
    # no latency histograms.
    live_observability: bool = True
    query_log_path: str | None = None   # JSONL sink; None = no file log
    query_log_capacity: int = 1024      # in-memory queue before drops
    flight_recorder_entries: int = 128  # recent-query ring size
    flight_recorder_traces: int = 16    # bounded slow-query trace map
    slow_trace_threshold_seconds: float | None = 1.0  # 0 = trace all; None = off
    access_log: bool = False            # HTTP access log to stderr

    # Fault injection (tests/bench): forwarded to the executor
    faults: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be positive")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.memory_pool_bytes < 1:
            raise ValueError("memory_pool_bytes must be positive")
        if (self.default_timeout_seconds is not None
                and self.default_timeout_seconds <= 0):
            raise ValueError("default_timeout_seconds must be positive")
        if self.processes < 1:
            raise ValueError("processes must be positive")
        if self.reduced_processes < 1:
            raise ValueError("reduced_processes must be positive")
        if self.max_query_retries < 0:
            raise ValueError("max_query_retries must be >= 0")
        if not 0.0 < self.reduced_load <= self.cache_only_load <= 1.0:
            raise ValueError(
                "need 0 < reduced_load <= cache_only_load <= 1"
            )
        if self.strategy not in ("pool", "spawn", "global", "rep", "auto"):
            raise ValueError(
                f"strategy must be pool/spawn/global/rep/auto, "
                f"got {self.strategy!r}"
            )
        if self.query_log_capacity < 1:
            raise ValueError("query_log_capacity must be positive")
        if self.flight_recorder_entries < 1:
            raise ValueError("flight_recorder_entries must be positive")
        if self.flight_recorder_traces < 0:
            raise ValueError("flight_recorder_traces must be >= 0")
        if (self.slow_trace_threshold_seconds is not None
                and self.slow_trace_threshold_seconds < 0):
            raise ValueError(
                "slow_trace_threshold_seconds must be >= 0 or None"
            )

    @property
    def slice_bytes(self) -> int:
        if self.memory_slice_bytes is not None:
            return self.memory_slice_bytes
        return max(1, self.memory_pool_bytes // self.max_concurrency)
