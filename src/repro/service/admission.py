"""Bounded admission: concurrency cap, queue, and memory leases.

The controller is the service's front door.  A query either gets a
*slot* (one of ``max_concurrency``) plus a memory lease from the
service-wide :class:`~repro.resources.MemoryBudgetPool`, or it gets a
typed refusal — it never queues unboundedly and never overcommits the
budget pool.  Refusals are cheap and honest: :class:`ShedError` (429)
when the bounded queue or the budget pool is full,
:class:`DrainingError` (503) once drain has begun, and
:class:`DeadlineMissError` (504) when the query's own deadline expires
while it is still queued.
"""

from __future__ import annotations

import threading
import time

from repro.resources import BudgetExhaustedError, MemoryBudgetPool
from repro.service.config import ServiceConfig
from repro.service.deadline import Deadline
from repro.service.errors import DeadlineMissError, DrainingError, ShedError


class AdmissionSlot:
    """A granted admission: one concurrency slot + one memory lease.

    ``queue_wait_seconds`` is how long the query sat in the bounded
    queue before winning its slot (0.0 on immediate admission) — the
    query log and the ``svc.queue_wait_seconds`` histogram carry it.
    """

    def __init__(self, controller: "AdmissionController", lease,
                 queue_wait_seconds: float = 0.0) -> None:
        self._controller = controller
        self.lease = lease
        self.queue_wait_seconds = queue_wait_seconds
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.lease.release()
        self._controller._release_slot()

    def __enter__(self) -> "AdmissionSlot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionController:
    """Thread-safe bounded admission over a budget pool."""

    def __init__(self, config: ServiceConfig,
                 budget_pool: MemoryBudgetPool) -> None:
        self.config = config
        self.budget_pool = budget_pool
        self._cond = threading.Condition()
        self.running = 0
        self.queued = 0
        self.draining = False

    # -- introspection (health endpoint, ladder) -----------------------

    def load(self) -> float:
        """Instantaneous load: occupied capacity over total capacity."""
        with self._cond:
            total = self.config.max_concurrency + self.config.queue_depth
            return (self.running + self.queued) / total

    def counts(self) -> tuple[int, int]:
        with self._cond:
            return self.running, self.queued

    # -- admission ------------------------------------------------------

    def admit(self, deadline: Deadline) -> AdmissionSlot:
        """Block until a slot is free, then lease memory; or refuse.

        Raises ShedError / DrainingError / DeadlineMissError.  The
        returned slot must be released (it is a context manager).
        """
        queue_wait = 0.0
        with self._cond:
            if self.draining:
                raise DrainingError()
            if self.running >= self.config.max_concurrency:
                if self.queued >= self.config.queue_depth:
                    raise ShedError(
                        "queue_full",
                        detail=(
                            f"{self.running} running, {self.queued} queued "
                            f"(depth {self.config.queue_depth})"
                        ),
                    )
                self.queued += 1
                wait_start = time.monotonic()
                try:
                    while self.running >= self.config.max_concurrency:
                        if self.draining:
                            raise DrainingError()
                        if deadline.expired():
                            raise DeadlineMissError(
                                deadline.timeout_seconds or 0.0,
                                detail="expired while queued",
                            )
                        self._cond.wait(timeout=self._wait_step(deadline))
                finally:
                    self.queued -= 1
                    queue_wait = time.monotonic() - wait_start
            self.running += 1
        try:
            lease = self.budget_pool.lease(self.config.slice_bytes)
        except BudgetExhaustedError as exc:
            self._release_slot()
            raise ShedError(
                "memory_exhausted",
                detail=f"{exc.available_bytes} bytes left in the pool",
            ) from exc
        return AdmissionSlot(self, lease, queue_wait_seconds=queue_wait)

    def _wait_step(self, deadline: Deadline) -> float:
        rem = deadline.remaining()
        step = 0.05  # re-check drain/deadline at least this often
        return step if rem is None else min(step, max(rem, 0.001))

    def _release_slot(self) -> None:
        with self._cond:
            self.running -= 1
            self._cond.notify_all()

    # -- drain ----------------------------------------------------------

    def start_drain(self) -> None:
        """Stop admission; wake queued waiters so they fail fast."""
        with self._cond:
            self.draining = True
            self._cond.notify_all()

    def wait_idle(self, timeout_seconds: float) -> bool:
        """Wait until no query is running; True if fully drained."""
        import time
        stop = time.monotonic() + timeout_seconds
        with self._cond:
            while self.running > 0:
                left = stop - time.monotonic()
                if left <= 0:
                    return False
                self._cond.wait(timeout=min(left, 0.05))
            return True
