"""The service's overload degradation ladder.

Mirrors the memory governor's in-query ladder at admission scope: as
instantaneous load (occupied capacity over total capacity) climbs, the
service sheds *quality of service* before it sheds *queries*:

1. ``SVC_FULL`` — full per-query parallelism.
2. ``SVC_REDUCED`` — reduced per-query fanout, so more queries share
   the pool at lower individual speed.
3. ``SVC_CACHE_ONLY`` — only data-version-keyed cache hits are served
   (free); misses are shed with a retry hint.
4. ``SVC_SHED`` — the queue is saturated; everything new is shed.

Every rung *transition* is a DecisionLedger event and the current rung
is a gauge (``svc.ladder.rung``), so overload behavior is auditable
after the fact.
"""

from __future__ import annotations

import threading

SVC_FULL = "full"
SVC_REDUCED = "reduced_fanout"
SVC_CACHE_ONLY = "cache_only"
SVC_SHED = "shed"

LADDER_CODES = {
    SVC_FULL: 0,
    SVC_REDUCED: 1,
    SVC_CACHE_ONLY: 2,
    SVC_SHED: 3,
}


class OverloadLadder:
    """Maps load to a rung; tracks transitions for the ledger/metrics."""

    def __init__(self, reduced_load: float = 0.5,
                 cache_only_load: float = 0.85) -> None:
        if not 0.0 < reduced_load <= cache_only_load <= 1.0:
            raise ValueError("need 0 < reduced_load <= cache_only_load <= 1")
        self.reduced_load = reduced_load
        self.cache_only_load = cache_only_load
        self._lock = threading.Lock()
        self._current = SVC_FULL
        self.transitions = 0

    def rung_for(self, load: float) -> str:
        if load >= 1.0:
            return SVC_SHED
        if load >= self.cache_only_load:
            return SVC_CACHE_ONLY
        if load >= self.reduced_load:
            return SVC_REDUCED
        return SVC_FULL

    def observe(self, load: float) -> tuple[str, str | None]:
        """Classify ``load``; returns (rung, previous) — previous is
        non-None only when this observation moved the ladder."""
        rung = self.rung_for(load)
        with self._lock:
            previous = self._current
            if rung == previous:
                return rung, None
            self._current = rung
            self.transitions += 1
            return rung, previous

    @property
    def current(self) -> str:
        with self._lock:
            return self._current

    def code(self, rung: str | None = None) -> int:
        return LADDER_CODES[rung if rung is not None else self.current]
