"""Plan and result caches — the ladder's rung-3 free capacity.

Both are small thread-safe LRUs.  The plan cache memoizes
``parse_query`` (SQL text → (table, bound-form query)); the result
cache memoizes finished query results keyed by *data version* — every
table registered with the service carries a monotonically-bumped
version, so a cache hit is provably the same answer a fresh run would
produce, never a stale one.  Under overload the ladder serves hits for
free (rung 3) before shedding (rung 4).
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class _LRU:
    """Minimal thread-safe LRU with hit/miss counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._data[key] = value  # move to MRU end
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class PlanCache(_LRU):
    """SQL text → parsed ``(table, query)`` (parsing is deterministic)."""

    def parse(self, sql: str):
        plan = self.get(sql)
        if plan is None:
            from repro.sql.parser import parse_query

            plan = parse_query(sql)
            self.put(sql, plan)
        return plan


class ResultCache(_LRU):
    """(table, data_version, sql, algorithm) → result rows.

    The data version in the key is what makes hits safe: bumping a
    table's version on mutation implicitly invalidates every cached
    result for the old snapshot without any scanning.
    """

    @staticmethod
    def key(table: str, version: int, sql: str, algorithm: str) -> tuple:
        return (table, version, sql, algorithm)
