"""Reproduction of "Adaptive Parallel Aggregation Algorithms" (SIGMOD 1995).

This package implements, from scratch, the full system described by Shatdal
and Naughton: a shared-nothing parallel aggregation engine with three
traditional algorithms (Centralized Two Phase, Two Phase, Repartitioning) and
three adaptive ones (Sampling, Adaptive Two Phase, Adaptive Repartitioning),
together with every substrate the paper depends on — a paged storage layer, a
bounded hash-aggregation engine with overflow-bucket spilling, a
discrete-event cluster simulator with latency-only and shared-bus network
models, page-oriented random sampling, the Section 2–4 analytical cost
models, and the workload generators (uniform, Zipf, input skew, output skew,
TPC-D-flavoured) used in the evaluation.

Quickstart::

    from repro import (
        AggregateQuery, AggregateSpec, SystemParameters,
        generate_uniform, run_algorithm,
    )

    dist = generate_uniform(num_tuples=8_000, num_groups=64, num_nodes=8,
                            seed=7)
    query = AggregateQuery(group_by=["gkey"],
                           aggregates=[AggregateSpec("sum", "val")])
    outcome = run_algorithm("adaptive_two_phase", dist, query)
    print(outcome.elapsed_seconds, len(outcome.rows))
"""

from repro.core.aggregates import AggregateSpec, GroupState, make_state_factory
from repro.core.query import AggregateQuery
from repro.core.hashtable import BoundedAggregateHashTable, HashAggregator
from repro.core.runner import ALGORITHMS, AlgorithmOutcome, run_algorithm
from repro.costmodel.params import NetworkKind, SystemParameters
from repro.storage.schema import Column, Schema
from repro.storage.relation import DistributedRelation, Fragment, Relation
from repro.sql import parse_query, run_sql
from repro.workloads.generator import generate_uniform
from repro.workloads.skew import generate_input_skew, generate_output_skew

__version__ = "1.0.0"

__all__ = [
    "AggregateQuery",
    "AggregateSpec",
    "ALGORITHMS",
    "AlgorithmOutcome",
    "BoundedAggregateHashTable",
    "Column",
    "DistributedRelation",
    "Fragment",
    "GroupState",
    "HashAggregator",
    "NetworkKind",
    "Relation",
    "Schema",
    "SystemParameters",
    "generate_input_skew",
    "generate_output_skew",
    "generate_uniform",
    "make_state_factory",
    "parse_query",
    "run_algorithm",
    "run_sql",
    "__version__",
]
