"""Cluster-wide memory governance: budgets, accounting, and the ladder.

The paper's adaptive story is about *reacting* to memory pressure, but
the seed codebase only let the bounded hash table feel it; every other
allocation-heavy path (partition buffers, merge phase, repartition
queues, the mp executor) allocated unbounded.  This module is the single
accounting tree those paths register with:

``MemoryGovernor`` (cluster)
  └─ ``NodeLedger`` (one per node, holds that node's byte budget)
       └─ ``OperatorAccount`` (one per operator: merge table, local
          table, repartition buffer, mailbox, ...)

Charges bubble up to the node ledger, so one node's merge table and its
repartition buffers compete for the *same* budget — exactly the
situation a real shared-nothing node is in.  When a charge is denied the
caller walks the **graceful-degradation ladder**:

1. ``RUNG_BACKPRESSURE`` — the producer stalls (the simulator charges
   the stall to ``mem_stall_seconds``).
2. ``RUNG_SPILL`` — the operator spills to disk (byte-accounted through
   ``note_spill``; the stores in ``repro.storage.spill`` do the real
   I/O).
3. ``RUNG_SWITCH`` — the paper's adaptive switch: A-2P/A-Rep treat a
   governor denial exactly like a full hash table and change strategy.
4. ``RUNG_RETRY`` — a fragment that exceeded its budget outright is
   killed with :class:`MemoryExceededError` and retried at a reduced
   budget in spill mode (``repro.parallel.mp_executor``).

A ``None`` policy disables everything: no ledgers are created and every
integration point short-circuits, keeping governed-off runs bit-identical
to the pre-governor code.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

RUNG_BACKPRESSURE = 1
RUNG_SPILL = 2
RUNG_SWITCH = 3
RUNG_RETRY = 4

RUNG_NAMES = {
    RUNG_BACKPRESSURE: "backpressure",
    RUNG_SPILL: "spill",
    RUNG_SWITCH: "switch",
    RUNG_RETRY: "retry",
}


class MemoryExceededError(RuntimeError):
    """An operator exceeded its byte budget and cannot degrade in place.

    Carries the high-water mark so the retry layer (ladder rung 4) can
    report it and size the reduced-budget attempt.
    """

    def __init__(
        self,
        operator: str,
        budget_bytes: int,
        high_water_bytes: int,
        requested_bytes: int = 0,
    ) -> None:
        super().__init__(
            f"operator {operator!r} exceeded its memory budget: "
            f"high water {high_water_bytes} bytes against a budget of "
            f"{budget_bytes} bytes"
            + (f" (requested {requested_bytes} more)" if requested_bytes
               else "")
        )
        self.operator = operator
        self.budget_bytes = budget_bytes
        self.high_water_bytes = high_water_bytes
        self.requested_bytes = requested_bytes


class SpillDepthExceededError(RuntimeError):
    """Recursive overflow partitioning stopped making progress.

    Raised instead of recursing forever (or silently going unbounded)
    when a bucket keeps re-spilling past the depth limit — the signature
    of pathological key skew or total hash collapse.  Reports how skewed
    the offending level's bucket distribution was.
    """

    def __init__(
        self,
        depth: int,
        largest_bucket_items: int,
        total_spilled_items: int,
        max_entries: int,
    ) -> None:
        share = (
            largest_bucket_items / total_spilled_items
            if total_spilled_items
            else 1.0
        )
        super().__init__(
            f"overflow recursion exceeded depth {depth} with the table "
            f"capped at {max_entries} entries; largest bucket holds "
            f"{largest_bucket_items} of {total_spilled_items} spilled "
            f"items ({share:.0%}) — pathological key skew keeps every "
            f"item in one bucket, so further partitioning cannot reduce "
            f"the working set"
        )
        self.depth = depth
        self.largest_bucket_items = largest_bucket_items
        self.total_spilled_items = total_spilled_items
        self.max_entries = max_entries
        self.bucket_share = share


class SpillCapacityError(RuntimeError):
    """A spill store was asked to exceed its ``max_bytes`` disk budget."""

    def __init__(self, max_bytes: int, attempted_bytes: int) -> None:
        super().__init__(
            f"spill store capacity exhausted: writing {attempted_bytes} "
            f"bytes against a max_bytes limit of {max_bytes}"
        )
        self.max_bytes = max_bytes
        self.attempted_bytes = attempted_bytes


@dataclass(frozen=True)
class MemoryPolicy:
    """The budget knobs of one governed run (see ``docs/memory.md``).

    Attributes
    ----------
    node_budget_bytes:
        Byte budget each node's operators share.  The single required
        knob; everything else has workable defaults.
    entry_bytes:
        Bytes charged per aggregate-table entry (key + running state +
        container overhead).  The simulator prices memory in table
        entries, so this is the exchange rate between the paper's ``M``
        and the governor's byte ledger.
    stall_seconds:
        Rung-1 penalty: simulated seconds a producer stalls per
        backpressured network block.
    min_table_entries:
        Capacity floor for governed tables so every operator can always
        make progress (spilling needs at least a few resident entries).
    mailbox_budget_bytes:
        In-flight bytes a node's mailbox may hold before senders are
        backpressured; defaults to ``node_budget_bytes``.
    """

    node_budget_bytes: int
    entry_bytes: int = 64
    stall_seconds: float = 1e-4
    min_table_entries: int = 8
    mailbox_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.node_budget_bytes < 1:
            raise ValueError("node_budget_bytes must be positive")
        if self.entry_bytes < 1:
            raise ValueError("entry_bytes must be positive")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if self.min_table_entries < 1:
            raise ValueError("min_table_entries must be at least 1")
        if (
            self.mailbox_budget_bytes is not None
            and self.mailbox_budget_bytes < 1
        ):
            raise ValueError("mailbox_budget_bytes must be positive")

    @property
    def effective_mailbox_budget(self) -> int:
        if self.mailbox_budget_bytes is not None:
            return self.mailbox_budget_bytes
        return self.node_budget_bytes


class OperatorAccount:
    """One operator's leaf in the accounting tree.

    ``try_charge`` is the pressure interface: a ``False`` return is a
    governor pressure event and the caller picks a ladder rung.
    ``charge`` force-charges (used where the operator *must* hold the
    bytes to preserve correctness — the pressure was already answered by
    stalling, shipping early, or spilling).
    """

    __slots__ = ("ledger", "name", "used", "high_water")

    def __init__(self, ledger: "NodeLedger", name: str) -> None:
        self.ledger = ledger
        self.name = name
        self.used = 0
        self.high_water = 0

    def try_charge(self, nbytes: int) -> bool:
        """Charge if the node has headroom; False = pressure event."""
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        if self.ledger.used + nbytes > self.ledger.budget_bytes:
            self.ledger.pressure_events += 1
            return False
        self._apply(nbytes)
        return True

    def charge(self, nbytes: int) -> None:
        """Force-charge (correctness over budget; high water still moves)."""
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        self._apply(nbytes)

    def _apply(self, nbytes: int) -> None:
        self.used += nbytes
        if self.used > self.high_water:
            self.high_water = self.used
        self.ledger._charged(nbytes)

    def release(self, nbytes: int) -> None:
        nbytes = min(nbytes, self.used)
        self.used -= nbytes
        self.ledger._released(nbytes)

    def close(self) -> None:
        """Release whatever the operator still holds (idempotent)."""
        self.release(self.used)


class NodeLedger:
    """One node's budget, its operator accounts, and its pressure stats."""

    def __init__(self, policy: MemoryPolicy, node_id: int) -> None:
        self.policy = policy
        self.node_id = node_id
        self.budget_bytes = policy.node_budget_bytes
        self.used = 0
        self.high_water = 0
        self.accounts: list[OperatorAccount] = []
        # Degradation accounting, folded into NodeMetrics after a run:
        self.spill_bytes = 0
        self.stall_seconds = 0.0
        self.pressure_events = 0
        self.ladder_rungs: dict[int, int] = {}

    def open(self, name: str) -> OperatorAccount:
        account = OperatorAccount(self, name)
        self.accounts.append(account)
        return account

    @property
    def headroom_bytes(self) -> int:
        return max(0, self.budget_bytes - self.used)

    def cap_entries(self, requested_entries: int) -> int:
        """Clamp a table allocation to what the budget can hold.

        Never below ``min_table_entries`` — a table that cannot hold a
        handful of groups cannot even spill productively.
        """
        by_budget = self.budget_bytes // self.policy.entry_bytes
        capped = min(requested_entries, by_budget)
        return max(self.policy.min_table_entries, capped)

    def note_spill(self, nbytes: int) -> None:
        self.spill_bytes += nbytes

    def note_stall(self, seconds: float) -> None:
        self.stall_seconds += seconds

    def note_rung(self, rung: int) -> None:
        self.ladder_rungs[rung] = self.ladder_rungs.get(rung, 0) + 1

    @property
    def max_rung(self) -> int:
        return max(self.ladder_rungs, default=0)

    # -- internal, called by accounts ---------------------------------------

    def _charged(self, nbytes: int) -> None:
        self.used += nbytes
        if self.used > self.high_water:
            self.high_water = self.used

    def _released(self, nbytes: int) -> None:
        self.used -= nbytes


class MemoryGovernor:
    """The cluster-wide accounting tree: one ledger per node."""

    def __init__(self, policy: MemoryPolicy, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        self.policy = policy
        self.nodes = [NodeLedger(policy, i) for i in range(num_nodes)]

    def node(self, node_id: int) -> NodeLedger:
        return self.nodes[node_id]

    @property
    def total_spill_bytes(self) -> int:
        return sum(ledger.spill_bytes for ledger in self.nodes)

    @property
    def total_stall_seconds(self) -> float:
        return sum(ledger.stall_seconds for ledger in self.nodes)

    @property
    def max_rung(self) -> int:
        return max((ledger.max_rung for ledger in self.nodes), default=0)

    def snapshot(self) -> dict:
        """A JSON-serializable view of the whole tree's accounting."""
        return {
            "node_budget_bytes": self.policy.node_budget_bytes,
            "total_spill_bytes": self.total_spill_bytes,
            "total_stall_seconds": self.total_stall_seconds,
            "max_rung": self.max_rung,
            "nodes": [
                {
                    "node_id": ledger.node_id,
                    "high_water_bytes": ledger.high_water,
                    "spill_bytes": ledger.spill_bytes,
                    "stall_seconds": ledger.stall_seconds,
                    "pressure_events": ledger.pressure_events,
                    "ladder_rungs": {
                        RUNG_NAMES[r]: n
                        for r, n in sorted(ledger.ladder_rungs.items())
                    },
                    "operators": [
                        {
                            "name": account.name,
                            "high_water_bytes": account.high_water,
                        }
                        for account in ledger.accounts
                    ],
                }
                for ledger in self.nodes
            ],
        }


class BudgetExhaustedError(RuntimeError):
    """The service-wide budget pool cannot cover another lease.

    Admission control treats this as a shed signal (HTTP 429): the
    query never starts, so no partial work has to be unwound.
    """

    def __init__(self, requested_bytes: int, available_bytes: int) -> None:
        super().__init__(
            f"memory budget pool exhausted: requested {requested_bytes} "
            f"bytes with only {available_bytes} available"
        )
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes


class BudgetLease:
    """One query's slice of the service-wide pool (context manager).

    Returned by :meth:`MemoryBudgetPool.lease`; exposes ``policy`` — a
    :class:`MemoryPolicy` sized to the slice — and must be released
    (``with`` or :meth:`release`) so the bytes return to the pool.
    Release is idempotent: double-release cannot inflate the pool.
    """

    def __init__(self, pool: "MemoryBudgetPool", bytes_: int,
                 policy: MemoryPolicy) -> None:
        self._pool = pool
        self.bytes = bytes_
        self.policy = policy
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._pool._give_back(self.bytes)

    def __enter__(self) -> "BudgetLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class MemoryBudgetPool:
    """Thread-safe byte pool concurrent queries carve budgets from.

    The one-shot CLI hands its single query the whole node budget; a
    service admitting many queries at once cannot — their governed
    tables would overcommit the host.  Each admitted query takes a
    :class:`BudgetLease` of ``slice_bytes`` (floored at
    ``min_slice_bytes`` so a lease is always viable for the governed
    spill paths); when the pool cannot cover the floor the lease raises
    :class:`BudgetExhaustedError` and admission sheds the query instead
    of overcommitting.  Purely an accounting object: enforcement stays
    with :class:`MemoryGovernor` via the lease's ``policy``.
    """

    def __init__(
        self,
        total_bytes: int,
        slice_bytes: int | None = None,
        min_slice_bytes: int = 64 * 1024,
        policy_template: MemoryPolicy | None = None,
    ) -> None:
        if total_bytes < 1:
            raise ValueError("total_bytes must be positive")
        if min_slice_bytes < 1:
            raise ValueError("min_slice_bytes must be positive")
        if slice_bytes is not None and slice_bytes < min_slice_bytes:
            raise ValueError("slice_bytes must be >= min_slice_bytes")
        self.total_bytes = total_bytes
        self.slice_bytes = slice_bytes
        self.min_slice_bytes = min(min_slice_bytes, total_bytes)
        self._template = policy_template
        self._available = total_bytes
        self._lock = threading.Lock()
        self.leases_granted = 0
        self.leases_denied = 0

    @property
    def available_bytes(self) -> int:
        with self._lock:
            return self._available

    def _policy_for(self, bytes_: int) -> MemoryPolicy:
        t = self._template
        if t is None:
            return MemoryPolicy(node_budget_bytes=bytes_)
        return MemoryPolicy(
            node_budget_bytes=bytes_,
            entry_bytes=t.entry_bytes,
            stall_seconds=t.stall_seconds,
            min_table_entries=t.min_table_entries,
        )

    def lease(self, bytes_: int | None = None) -> BudgetLease:
        """Carve a slice out of the pool, or raise BudgetExhaustedError.

        ``bytes_`` defaults to ``slice_bytes`` (or an equal share of the
        whole pool if that is unset).  A partially-drained pool grants
        whatever remains above the floor rather than refusing outright —
        degrading a late query's budget beats shedding it.
        """
        want = bytes_ if bytes_ is not None else (
            self.slice_bytes if self.slice_bytes is not None
            else self.total_bytes
        )
        want = max(want, self.min_slice_bytes)
        with self._lock:
            if self._available < self.min_slice_bytes:
                self.leases_denied += 1
                raise BudgetExhaustedError(want, self._available)
            granted = min(want, self._available)
            self._available -= granted
            self.leases_granted += 1
        return BudgetLease(self, granted, self._policy_for(granted))

    def _give_back(self, bytes_: int) -> None:
        with self._lock:
            self._available = min(self._available + bytes_,
                                  self.total_bytes)
