"""Resource governance: the cluster-wide memory accounting tree.

See ``docs/memory.md`` for the governor, the budget knobs, and the
four-rung graceful-degradation ladder.
"""

from repro.resources.governor import (
    RUNG_BACKPRESSURE,
    RUNG_NAMES,
    RUNG_RETRY,
    RUNG_SPILL,
    RUNG_SWITCH,
    BudgetExhaustedError,
    BudgetLease,
    MemoryBudgetPool,
    MemoryExceededError,
    MemoryGovernor,
    MemoryPolicy,
    NodeLedger,
    OperatorAccount,
    SpillCapacityError,
    SpillDepthExceededError,
)

__all__ = [
    "BudgetExhaustedError",
    "BudgetLease",
    "MemoryBudgetPool",
    "MemoryExceededError",
    "MemoryGovernor",
    "MemoryPolicy",
    "NodeLedger",
    "OperatorAccount",
    "RUNG_BACKPRESSURE",
    "RUNG_NAMES",
    "RUNG_RETRY",
    "RUNG_SPILL",
    "RUNG_SWITCH",
    "SpillCapacityError",
    "SpillDepthExceededError",
]
