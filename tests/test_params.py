"""Unit tests for the Table 1 parameter set."""

import pytest

from repro.costmodel.params import (
    NetworkKind,
    SystemParameters,
    log_selectivities,
)


class TestDerivedTimes:
    def test_t_r_matches_table(self):
        p = SystemParameters.paper_default()
        assert p.t_r == pytest.approx(300 / 40 / 1e6)

    def test_all_instruction_times(self):
        p = SystemParameters.paper_default()
        assert p.t_w == pytest.approx(2.5e-6)
        assert p.t_h == pytest.approx(10e-6)
        assert p.t_a == pytest.approx(7.5e-6)
        assert p.t_d == pytest.approx(0.25e-6)
        assert p.m_p == pytest.approx(25e-6)

    def test_m_l(self):
        assert SystemParameters.paper_default().m_l == 2.0e-3

    def test_relation_size_800mb(self):
        p = SystemParameters.paper_default()
        assert p.relation_bytes == 800_000_000

    def test_tuples_per_node(self):
        p = SystemParameters.paper_default()
        assert p.tuples_per_node == 250_000

    def test_pages(self):
        p = SystemParameters.paper_default()
        assert p.pages(4096 * 3) == 3

    def test_tuples_per_page(self):
        assert SystemParameters.paper_default().tuples_per_page() == 40


class TestSelectivities:
    def test_local_selectivity_low(self):
        p = SystemParameters.paper_default()
        assert p.local_selectivity(1e-6) == pytest.approx(32e-6)

    def test_local_selectivity_caps_at_one(self):
        p = SystemParameters.paper_default()
        assert p.local_selectivity(0.5) == 1.0

    def test_global_selectivity_floor(self):
        p = SystemParameters.paper_default()
        assert p.global_selectivity(1e-6) == 1 / 32

    def test_global_selectivity_high(self):
        p = SystemParameters.paper_default()
        assert p.global_selectivity(0.25) == 0.25

    def test_num_groups_clamped(self):
        p = SystemParameters.paper_default()
        assert p.num_groups(1e-12) == 1

    def test_selectivity_bounds(self):
        p = SystemParameters.paper_default()
        with pytest.raises(ValueError):
            p.local_selectivity(0.0)
        with pytest.raises(ValueError):
            p.global_selectivity(1.5)


class TestPresets:
    def test_implementation_preset(self):
        p = SystemParameters.implementation()
        assert p.num_nodes == 8
        assert p.num_tuples == 2_000_000
        assert p.network is NetworkKind.LIMITED_BANDWIDTH
        assert p.block_bytes == 2048
        # 2 KB over 10 Mbit/s
        assert p.m_l == pytest.approx(2048 * 8 / 10e6)

    def test_default_block_is_page(self):
        p = SystemParameters.paper_default()
        assert p.block_bytes == p.page_bytes

    def test_with_overrides(self):
        p = SystemParameters.paper_default().with_(num_nodes=8)
        assert p.num_nodes == 8
        assert p.num_tuples == 8_000_000

    def test_scaled_preserves_ratio(self):
        p = SystemParameters.paper_default()
        s = p.scaled(0.01)
        assert s.num_tuples == 80_000
        assert (
            s.hash_table_entries / s.num_tuples
            == pytest.approx(p.hash_table_entries / p.num_tuples)
        )

    def test_scaleup_instance_fixed_per_node(self):
        p = SystemParameters.paper_default()
        for n in (2, 8, 64):
            inst = p.scaleup_instance(n)
            assert inst.tuples_per_node == p.tuples_per_node
            assert inst.num_nodes == n

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemParameters(num_nodes=0)
        with pytest.raises(ValueError):
            SystemParameters(projectivity=0.0)
        with pytest.raises(ValueError):
            SystemParameters(page_bytes=10, tuple_bytes=100)
        with pytest.raises(ValueError):
            SystemParameters.paper_default().scaled(0)
        with pytest.raises(ValueError):
            SystemParameters.paper_default().scaleup_instance(0)


class TestLogSelectivities:
    def test_range(self):
        p = SystemParameters.paper_default()
        sels = log_selectivities(p, points=15)
        assert len(sels) == 15
        assert sels[0] == pytest.approx(1 / p.num_tuples)
        assert sels[-1] == pytest.approx(0.5)

    def test_monotone(self):
        p = SystemParameters.paper_default()
        sels = log_selectivities(p)
        assert sels == sorted(sels)
