"""Every algorithm must compute exactly what the reference executor does,
on every workload shape the paper exercises."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.core.runner import ALGORITHMS, run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform, generate_zipf
from repro.workloads.skew import generate_input_skew, generate_output_skew
from repro.workloads.tpcd import generate_lineitem, tpcd_query

from tests.conftest import assert_rows_close

pytestmark = pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))


class TestUniformWorkloads:
    def test_few_groups(self, algorithm, sum_query):
        dist = generate_uniform(2000, 4, 4, seed=1)
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_many_groups(self, algorithm, sum_query):
        dist = generate_uniform(2000, 900, 4, seed=2)
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_duplicate_elimination_range(self, algorithm, sum_query):
        """S = 0.5: every group has exactly two tuples."""
        dist = generate_uniform(2000, 1000, 4, seed=3)
        out = run_algorithm(algorithm, dist, sum_query)
        assert out.num_groups == 1000
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_scalar_aggregation(self, algorithm):
        query = AggregateQuery(
            group_by=[],
            aggregates=[
                AggregateSpec("count", None),
                AggregateSpec("sum", "val"),
            ],
        )
        dist = generate_uniform(1000, 10, 4, seed=4)
        out = run_algorithm(algorithm, dist, query)
        assert out.num_groups == 1
        assert_rows_close(out.rows, reference_aggregate(dist, query))

    def test_all_aggregate_functions(self, algorithm, full_query):
        dist = generate_uniform(1500, 64, 4, seed=5)
        out = run_algorithm(algorithm, dist, full_query)
        assert_rows_close(out.rows, reference_aggregate(dist, full_query))

    def test_single_node_cluster(self, algorithm, sum_query):
        dist = generate_uniform(500, 20, 1, seed=6)
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_where_predicate(self, algorithm):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[AggregateSpec("count", None)],
            where=lambda row: row["val"] > 50.0,
        )
        dist = generate_uniform(2000, 16, 4, seed=7)
        out = run_algorithm(algorithm, dist, query)
        assert_rows_close(out.rows, reference_aggregate(dist, query))

    def test_tiny_hash_table_forces_overflow(self, algorithm, sum_query):
        """With M=16 entries every phase overflows or switches; results
        must still be exact."""
        from repro.core.runner import default_parameters

        dist = generate_uniform(2000, 400, 4, seed=8)
        params = default_parameters(dist, hash_table_entries=16)
        out = run_algorithm(algorithm, dist, sum_query, params=params)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))


class TestSkewWorkloads:
    def test_input_skew(self, algorithm, sum_query):
        dist = generate_input_skew(3000, 50, 4, skew_factor=5.0, seed=9)
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_output_skew(self, algorithm, sum_query):
        dist = generate_output_skew(4000, 200, num_nodes=8, seed=10)
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))

    def test_zipf(self, algorithm, sum_query):
        dist = generate_zipf(3000, 100, 4, alpha=1.3, seed=11)
        out = run_algorithm(algorithm, dist, sum_query)
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))


class TestTpcdWorkloads:
    @pytest.mark.parametrize(
        "query_name",
        ["q1_pricing_summary", "q_partkey_volume", "q_distinct_orders"],
    )
    def test_query(self, algorithm, query_name):
        dist = generate_lineitem(1200, 4, seed=12)
        query = tpcd_query(query_name)
        out = run_algorithm(algorithm, dist, query)
        assert_rows_close(
            out.rows, reference_aggregate(dist, query), tol=1e-9
        )


class TestOutcomeShape:
    def test_elapsed_positive(self, algorithm, sum_query, small_dist):
        out = run_algorithm(algorithm, small_dist, sum_query)
        assert out.elapsed_seconds > 0

    def test_rows_sorted(self, algorithm, sum_query, small_dist):
        out = run_algorithm(algorithm, small_dist, sum_query)
        assert out.rows == sorted(out.rows)

    def test_deterministic(self, algorithm, sum_query, small_dist):
        a = run_algorithm(algorithm, small_dist, sum_query)
        b = run_algorithm(algorithm, small_dist, sum_query)
        assert a.rows == b.rows
        assert a.elapsed_seconds == b.elapsed_seconds

    def test_per_node_rows_disjoint_unless_centralized(
        self, algorithm, sum_query, small_dist
    ):
        out = run_algorithm(algorithm, small_dist, sum_query)
        seen = set()
        for node_rows in out.per_node_rows:
            keys = {row[0] for row in node_rows}
            assert not keys & seen
            seen |= keys
