"""Determinism under fault injection: same plan, same everything.

The guarantee the module docstring of ``repro.sim.faults`` makes: a given
(workload, parameters, plan) triple produces the same crashes, the same
retransmissions, and byte-identical metrics, run after run.
"""

import json

import pytest

from repro.core.runner import run_algorithm
from repro.parallel.mp_executor import MpFaultInjector
from repro.sim.faults import CrashFault, FaultPlan, Straggler, WorkerStall

from tests.conftest import rows_close

ALGORITHMS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)


def _everything_plan(seed: int = 42) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        crashes=(CrashFault(2, after_tuples=250),),
        stragglers=(Straggler(1, 2.0),),
        message_loss=0.1,
        message_duplication=0.05,
        read_error_rate=0.05,
    )


def _fingerprint(outcome) -> str:
    return json.dumps(outcome.metrics.to_dict(), sort_keys=True)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_same_plan_same_run(algorithm, small_dist, sum_query):
    first = run_algorithm(
        algorithm, small_dist, sum_query, faults=_everything_plan()
    )
    second = run_algorithm(
        algorithm, small_dist, sum_query, faults=_everything_plan()
    )
    # Byte-identical metrics (timings, retries, crash times, ...).
    assert _fingerprint(first) == _fingerprint(second)
    # Identical answers, down to float summation order.
    assert first.rows == second.rows
    assert first.elapsed_seconds == second.elapsed_seconds
    # And the same event history.
    assert [
        (e.time, e.node, e.what) for e in first.trace
    ] == [(e.time, e.node, e.what) for e in second.trace]


def test_different_seed_different_transport(small_dist, sum_query):
    runs = {
        seed: run_algorithm(
            "two_phase",
            small_dist,
            sum_query,
            faults=FaultPlan(seed=seed, message_loss=0.25),
        )
        for seed in (0, 1)
    }
    # Different seeds draw different loss patterns (overwhelmingly
    # likely with hundreds of transmissions at 25% loss)...
    assert (
        runs[0].metrics.total_retries != runs[1].metrics.total_retries
        or runs[0].elapsed_seconds != runs[1].elapsed_seconds
    )
    # ...but correctness is seed-independent (different delivery orders
    # only reorder the float summation).
    assert rows_close(runs[0].rows, runs[1].rows)


def _chaos_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        crashes=(CrashFault(3, at_time=0.01),),
        stragglers=(Straggler(2, 6.0),),
        worker_stalls=(WorkerStall(0, 0.6),),
        read_error_rate=0.3,
        message_loss=0.3,
    )


class TestInjectionScheduleParity:
    """One plan, one schedule, every substrate.

    The (kind, target, ordinal) schedule is the contract between the
    simulator and the mp pool: the same seed must map to the same
    injected faults whether node ids name sim nodes or pool fragments.
    """

    def test_sim_and_mp_views_agree(self):
        plan = _chaos_plan(seed=7)
        node_ids = list(range(4))
        direct = plan.injection_schedule(node_ids, attempts=3)
        via_runtime = plan.start().runtime(node_ids).injection_schedule(3)
        via_injector = MpFaultInjector(plan, num_fragments=4, attempts=3)
        assert direct == via_runtime == via_injector.schedule

    def test_same_seed_same_schedule(self):
        for seed in range(10):
            first = _chaos_plan(seed).injection_schedule(range(4), 3)
            second = _chaos_plan(seed).injection_schedule(range(4), 3)
            assert first == second

    def test_different_seeds_draw_differently(self):
        schedules = {
            seed: tuple(_chaos_plan(seed).injection_schedule(range(4), 3))
            for seed in range(10)
        }
        # The probabilistic kinds (error, shm loss) must vary by seed;
        # ten identical draws would mean the streams ignore it.
        assert len(set(schedules.values())) > 1

    def test_mp_fires_only_scheduled_faults(self, sum_query):
        import os

        from repro.parallel import multiprocessing_aggregate
        from repro.workloads.generator import generate_uniform

        if not os.path.isdir("/dev/shm"):
            pytest.skip("POSIX shared memory not mounted")
        plan = _chaos_plan(seed=1)
        dist = generate_uniform(2400, 60, 4, seed=21)
        scheduled = set(
            plan.injection_schedule(range(4), attempts=3)
        )
        log: list = []
        multiprocessing_aggregate(
            dist, sum_query, processes=2, timeout=30,
            faults=plan, faults_log=log,
        )
        assert log, "the chaos plan injected nothing"
        assert set(log) <= scheduled
        # And a second run fires the identical sequence.
        relog: list = []
        multiprocessing_aggregate(
            dist, sum_query, processes=2, timeout=30,
            faults=plan, faults_log=relog,
        )
        assert relog == log
