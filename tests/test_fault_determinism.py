"""Determinism under fault injection: same plan, same everything.

The guarantee the module docstring of ``repro.sim.faults`` makes: a given
(workload, parameters, plan) triple produces the same crashes, the same
retransmissions, and byte-identical metrics, run after run.
"""

import json

import pytest

from repro.core.runner import run_algorithm
from repro.sim.faults import CrashFault, FaultPlan, Straggler

from tests.conftest import rows_close

ALGORITHMS = (
    "two_phase",
    "repartitioning",
    "adaptive_two_phase",
    "adaptive_repartitioning",
)


def _everything_plan(seed: int = 42) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        crashes=(CrashFault(2, after_tuples=250),),
        stragglers=(Straggler(1, 2.0),),
        message_loss=0.1,
        message_duplication=0.05,
        read_error_rate=0.05,
    )


def _fingerprint(outcome) -> str:
    return json.dumps(outcome.metrics.to_dict(), sort_keys=True)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_same_plan_same_run(algorithm, small_dist, sum_query):
    first = run_algorithm(
        algorithm, small_dist, sum_query, faults=_everything_plan()
    )
    second = run_algorithm(
        algorithm, small_dist, sum_query, faults=_everything_plan()
    )
    # Byte-identical metrics (timings, retries, crash times, ...).
    assert _fingerprint(first) == _fingerprint(second)
    # Identical answers, down to float summation order.
    assert first.rows == second.rows
    assert first.elapsed_seconds == second.elapsed_seconds
    # And the same event history.
    assert [
        (e.time, e.node, e.what) for e in first.trace
    ] == [(e.time, e.node, e.what) for e in second.trace]


def test_different_seed_different_transport(small_dist, sum_query):
    runs = {
        seed: run_algorithm(
            "two_phase",
            small_dist,
            sum_query,
            faults=FaultPlan(seed=seed, message_loss=0.25),
        )
        for seed in (0, 1)
    }
    # Different seeds draw different loss patterns (overwhelmingly
    # likely with hundreds of transmissions at 25% loss)...
    assert (
        runs[0].metrics.total_retries != runs[1].metrics.total_retries
        or runs[0].elapsed_seconds != runs[1].elapsed_seconds
    )
    # ...but correctness is seed-independent (different delivery orders
    # only reorder the float summation).
    assert rows_close(runs[0].rows, runs[1].rows)
