"""MetricsRegistry semantics and the fault-accounting regressions."""

from __future__ import annotations

import json

import pytest

from repro.core.algorithms import ALGORITHM_BODIES, SimConfig
from repro.core.runner import run_algorithm
from repro.costmodel.params import SystemParameters
from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.sim.faults import CrashFault, FaultPlan
from repro.sim.recovery import run_resilient


class TestHandles:
    def test_counter_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    @pytest.mark.parametrize(
        "mode,observations,expected",
        [
            ("last", (3.0, 1.0), 1.0),
            ("max", (3.0, 1.0), 3.0),
            ("min", (3.0, 1.0), 1.0),
            ("sum", (3.0, 1.0), 4.0),
        ],
    )
    def test_gauge_modes(self, mode, observations, expected):
        g = Gauge("g", mode=mode)
        for value in observations:
            g.set(value)
        assert g.value == expected

    def test_histogram_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        assert h.counts == [1, 1, 1]  # one per bucket + overflow
        assert h.count == 3
        assert h.min == 0.5 and h.max == 50.0
        assert h.mean == pytest.approx(55.5 / 3)

    def test_registry_get_or_create_and_type_safety(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        reg.gauge("g", mode="max")
        with pytest.raises(ValueError):
            reg.gauge("g", mode="min")
        reg.histogram("h")
        with pytest.raises(TypeError):
            reg.value("h")


class TestMerge:
    def _sample(self, retries, rss, wall):
        reg = MetricsRegistry()
        reg.counter("retries").inc(retries)
        reg.gauge("rss", mode="max").set(rss)
        reg.histogram("wall").observe(wall)
        return reg

    def test_merge_folds_by_kind(self):
        a = self._sample(2, 100.0, 0.2)
        b = self._sample(3, 50.0, 2.0)
        a.merge(b)
        assert a.value("retries") == 5
        assert a.value("rss") == 100.0
        h = a.histogram("wall")
        assert h.count == 2 and h.min == 0.2 and h.max == 2.0

    def test_merge_is_order_insensitive(self):
        left = self._sample(2, 100.0, 0.2)
        left.merge(self._sample(3, 50.0, 2.0))
        right = self._sample(3, 50.0, 2.0)
        right.merge(self._sample(2, 100.0, 0.2))
        # max-gauges, counters and histograms all commute.
        assert left.snapshot() == right.snapshot()

    def test_unset_gauge_does_not_clobber(self):
        a = MetricsRegistry()
        a.gauge("g", mode="last").set(7.0)
        b = MetricsRegistry()
        b.gauge("g", mode="last")  # registered, never set
        a.merge(b)
        assert a.value("g") == 7.0

    def test_snapshot_is_json_and_sorted(self):
        reg = self._sample(1, 10.0, 0.5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must be serializable as-is


class TestClusterAdapter:
    def test_from_cluster_metrics(self, small_dist, sum_query):
        outcome = run_algorithm("two_phase", small_dist, sum_query)
        reg = MetricsRegistry.from_cluster_metrics(outcome.metrics)
        assert reg.value("sim.makespan_seconds") == pytest.approx(
            outcome.metrics.makespan
        )
        assert reg.value("sim.messages_sent") == outcome.metrics.total_messages
        busy = reg.histogram("sim.node_busy_seconds")
        assert busy.count == small_dist.num_nodes


class TestFaultAccountingRegressions:
    def test_io_retry_does_not_double_tag(self, small_dist, sum_query):
        """Regression: a faulted read once charged its own tag twice.

        The retried read's extra time belongs to ``fault_io_retry``
        alone; every operator tag must match the fault-free run exactly,
        and the wall-clock read time must grow by exactly the retry tag.
        """
        clean = run_algorithm("two_phase", small_dist, sum_query)
        faulted = run_algorithm(
            "two_phase", small_dist, sum_query,
            faults=FaultPlan(seed=5, read_error_rate=0.4),
        )
        assert faulted.metrics.total_retries > 0
        for node_c, node_f in zip(clean.metrics.nodes, faulted.metrics.nodes):
            tags_f = dict(node_f.tagged_seconds)
            retry = tags_f.pop("fault_io_retry", 0.0)
            assert set(tags_f) == set(node_c.tagged_seconds)
            for tag, seconds in node_c.tagged_seconds.items():
                assert tags_f[tag] == pytest.approx(seconds), tag
            assert node_f.io_read_seconds == pytest.approx(
                node_c.io_read_seconds + retry
            )

    def test_recovery_fold_matches_attempt_metrics(
        self, small_dist, sum_query
    ):
        """Per-attempt attribution sums exactly to the folded totals."""
        body = ALGORITHM_BODIES["two_phase"]
        bq = sum_query.bind(small_dist.schema)
        cfg = SimConfig()
        params = SystemParameters.paper_default().with_(
            num_nodes=small_dist.num_nodes
        )
        plan = FaultPlan(seed=3, crashes=(CrashFault(2, after_tuples=120),))
        run = run_resilient(
            params,
            small_dist.fragments,
            plan,
            lambda ctx, fragment: body(ctx, fragment, bq, cfg),
        )
        assert len(run.attempt_metrics) == 2
        for field in ("tuples_scanned", "cpu_seconds", "io_read_seconds"):
            per_node = [0.0] * small_dist.num_nodes
            for node_ids, metrics in run.attempt_metrics:
                for sim_index, nm in enumerate(metrics.nodes):
                    per_node[node_ids[sim_index]] += getattr(nm, field)
            for node_id, total in enumerate(per_node):
                assert getattr(run.metrics.node(node_id), field) == (
                    pytest.approx(total)
                ), field
