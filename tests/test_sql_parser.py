"""Tests for the SQL front-end: lexer, parser, predicate compilation."""

import pytest

from repro.sql.lexer import LexError, tokenize
from repro.sql.parser import ParseError, parse_query


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == [
            "SELECT", "FROM", "WHERE",
        ]

    def test_identifiers_keep_case(self):
        (tok, _end) = tokenize("myCol")
        assert tok.kind == "IDENT"
        assert tok.value == "myCol"

    def test_numbers(self):
        kinds = [(t.kind, t.value) for t in tokenize("42 3.5 1e6")[:-1]]
        assert kinds == [
            ("NUMBER", "42"), ("NUMBER", "3.5"), ("NUMBER", "1e6"),
        ]

    def test_strings(self):
        (tok, _end) = tokenize("'hello world'")
        assert tok.kind == "STRING"
        assert tok.value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'oops")

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("<= >= <> !=")[:-1]]
        assert values == ["<=", ">=", "<>", "!="]

    def test_bad_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a ; b")


class TestParserStructure:
    def test_minimal_query(self):
        table, query = parse_query(
            "SELECT gkey, SUM(val) FROM r GROUP BY gkey"
        )
        assert table == "r"
        assert query.group_by == ("gkey",)
        assert query.aggregates[0].func == "sum"
        assert query.aggregates[0].column == "val"

    def test_scalar_aggregate(self):
        _t, query = parse_query("SELECT COUNT(*) FROM r")
        assert query.is_scalar
        assert query.aggregates[0].func == "count"
        assert query.aggregates[0].column is None

    def test_aliases(self):
        _t, query = parse_query(
            "SELECT gkey, AVG(val) AS mean FROM r GROUP BY gkey"
        )
        assert query.aggregates[0].output_name == "mean"

    def test_count_distinct(self):
        _t, query = parse_query("SELECT COUNT(DISTINCT val) FROM r")
        assert query.aggregates[0].func == "count_distinct"

    def test_multiple_group_by(self):
        _t, query = parse_query(
            "SELECT a, b, MIN(v) FROM r GROUP BY a, b"
        )
        assert query.group_by == ("a", "b")

    def test_every_function(self):
        _t, query = parse_query(
            "SELECT SUM(v), AVG(v), MIN(v), MAX(v), COUNT(v), "
            "VAR(v), STDDEV(v) FROM r"
        )
        funcs = [s.func for s in query.aggregates]
        assert funcs == [
            "sum", "avg", "min", "max", "count", "var", "stddev",
        ]

    def test_select_distinct(self):
        _t, query = parse_query("SELECT DISTINCT a, b FROM r")
        assert query.group_by == ("a", "b")
        assert query.aggregates[0].output_name == "_dup_count"

    def test_bare_column_without_group_by_rejected(self):
        with pytest.raises(ParseError, match="GROUP BY"):
            parse_query("SELECT a, SUM(v) FROM r")

    def test_column_not_in_group_by_rejected(self):
        with pytest.raises(ParseError, match="not in GROUP BY"):
            parse_query("SELECT a, b, SUM(v) FROM r GROUP BY a")

    def test_no_aggregate_rejected(self):
        with pytest.raises(ParseError, match="at least one aggregate"):
            parse_query("SELECT a FROM r GROUP BY a")

    def test_star_only_for_count(self):
        with pytest.raises(ParseError, match="only valid for COUNT"):
            parse_query("SELECT SUM(*) FROM r")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(*) FROM r LIMIT 5")

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_query("SELECT COUNT(*)")


class TestPredicates:
    def _where(self, sql):
        _t, query = parse_query(sql)
        return query.where

    def test_simple_comparison(self):
        where = self._where("SELECT COUNT(*) FROM r WHERE v > 5")
        assert where({"v": 6})
        assert not where({"v": 5})

    def test_string_equality(self):
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE flag = 'A'"
        )
        assert where({"flag": "A"})
        assert not where({"flag": "B"})

    def test_and_or_precedence(self):
        """AND binds tighter than OR."""
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE a = 1 OR a = 2 AND b = 3"
        )
        assert where({"a": 1, "b": 0})          # left OR arm
        assert where({"a": 2, "b": 3})          # right AND arm
        assert not where({"a": 2, "b": 0})

    def test_parentheses_override(self):
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE (a = 1 OR a = 2) AND b = 3"
        )
        assert not where({"a": 1, "b": 0})
        assert where({"a": 1, "b": 3})

    def test_not(self):
        where = self._where("SELECT COUNT(*) FROM r WHERE NOT v >= 10")
        assert where({"v": 9})
        assert not where({"v": 10})

    def test_column_to_column(self):
        where = self._where("SELECT COUNT(*) FROM r WHERE a < b")
        assert where({"a": 1, "b": 2})

    def test_unknown_column_raises_at_eval(self):
        where = self._where("SELECT COUNT(*) FROM r WHERE ghost = 1")
        with pytest.raises(ParseError, match="unknown column"):
            where({"v": 1})

    def test_having_references_alias(self):
        _t, query = parse_query(
            "SELECT gkey, COUNT(*) AS n FROM r GROUP BY gkey "
            "HAVING n >= 2"
        )
        assert query.having({"gkey": 1, "n": 2})
        assert not query.having({"gkey": 1, "n": 1})

    def test_having_references_aggregate_expression(self):
        _t, query = parse_query(
            "SELECT gkey, SUM(val) AS total FROM r GROUP BY gkey "
            "HAVING SUM(val) > 10"
        )
        assert query.having({"gkey": 1, "total": 11})

    def test_having_unknown_aggregate_rejected(self):
        with pytest.raises(ParseError, match="not in the SELECT list"):
            parse_query(
                "SELECT gkey, SUM(val) FROM r GROUP BY gkey "
                "HAVING AVG(val) > 1"
            )

    def test_bad_operator(self):
        with pytest.raises(ParseError, match="comparison operator"):
            parse_query("SELECT COUNT(*) FROM r WHERE a (b)")

    def test_in_list(self):
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE tag IN ('a', 'b')"
        )
        assert where({"tag": "a"})
        assert where({"tag": "b"})
        assert not where({"tag": "c"})

    def test_in_list_numbers(self):
        where = self._where("SELECT COUNT(*) FROM r WHERE k IN (1, 3, 5)")
        assert where({"k": 3})
        assert not where({"k": 2})

    def test_not_in(self):
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE NOT k IN (1, 2)"
        )
        assert where({"k": 3})
        assert not where({"k": 1})

    def test_in_requires_literals(self):
        with pytest.raises(ParseError, match="only contain literals"):
            parse_query("SELECT COUNT(*) FROM r WHERE a IN (b, c)")

    def test_between(self):
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE v BETWEEN 10 AND 20"
        )
        assert where({"v": 10})
        assert where({"v": 20})
        assert not where({"v": 21})

    def test_between_binds_tighter_than_and(self):
        where = self._where(
            "SELECT COUNT(*) FROM r WHERE v BETWEEN 1 AND 5 AND k = 2"
        )
        assert where({"v": 3, "k": 2})
        assert not where({"v": 3, "k": 9})
