"""Tests of the analytical cost models against the paper's claims.

The models' job is *relative* prediction, so these tests assert the
qualitative facts the paper states: who wins at each end of the
selectivity range, that a crossover exists, that adaptive algorithms
track the per-point best with bounded overhead, and that the sampling
overhead is a near-constant additive term.
"""

import pytest

from repro.costmodel import (
    MODEL_FUNCTIONS,
    adaptive_repartitioning_cost,
    adaptive_two_phase_cost,
    centralized_two_phase_cost,
    model_cost,
    repartitioning_cost,
    sampling_cost,
    two_phase_cost,
)
from repro.costmodel.base import (
    CostBreakdown,
    overflow_fraction,
    send_latency_seconds,
)
from repro.costmodel.params import NetworkKind, SystemParameters


@pytest.fixture(scope="module")
def params():
    return SystemParameters.paper_default()


LOW_S = 1e-6     # a handful of groups
MID_S = 1e-3     # thousands of groups
HIGH_S = 0.5     # duplicate-elimination territory


class TestCostBreakdown:
    def test_total_sums_components(self):
        b = CostBreakdown("x", 0.1)
        b.add("a", 1.0)
        b.add("b", 2.0)
        b.add("a", 0.5)
        assert b.total_seconds == 3.5
        assert b.component("a") == 1.5

    def test_negative_rejected(self):
        b = CostBreakdown("x", 0.1)
        with pytest.raises(ValueError):
            b.add("a", -1.0)

    def test_extend_with_prefix(self):
        a = CostBreakdown("a", 0.1)
        a.add("x", 1.0)
        b = CostBreakdown("b", 0.1)
        b.add("x", 2.0)
        a.extend(b, prefix="sub_")
        assert a.component("sub_x") == 2.0
        assert a.total_seconds == 3.0


class TestOverflowFraction:
    def test_fits_in_memory(self):
        assert overflow_fraction(5_000, 10_000) == 0.0

    def test_partial_overflow(self):
        assert overflow_fraction(20_000, 10_000) == 0.5

    def test_zero_groups(self):
        assert overflow_fraction(0, 10_000) == 0.0


class TestSendLatency:
    def test_high_bandwidth_parallel(self, params):
        assert send_latency_seconds(params, 10) == pytest.approx(
            10 * params.m_l
        )

    def test_limited_bandwidth_serializes(self):
        p = SystemParameters.paper_default().with_(
            network=NetworkKind.LIMITED_BANDWIDTH
        )
        assert send_latency_seconds(p, 10) == pytest.approx(
            10 * p.num_nodes * p.m_l
        )

    def test_negative_rejected(self, params):
        with pytest.raises(ValueError):
            send_latency_seconds(params, -1)


class TestPaperClaims:
    def test_two_phase_wins_at_low_selectivity(self, params):
        assert (
            two_phase_cost(params, LOW_S).total_seconds
            < repartitioning_cost(params, LOW_S).total_seconds
        )

    def test_repartitioning_wins_at_high_selectivity(self, params):
        assert (
            repartitioning_cost(params, HIGH_S).total_seconds
            < two_phase_cost(params, HIGH_S).total_seconds
        )

    def test_crossover_exists(self, params):
        """Somewhere in the middle the winner flips exactly once-ish."""
        from repro.costmodel.params import log_selectivities

        winners = []
        for s in log_selectivities(params, points=25):
            tp = two_phase_cost(params, s).total_seconds
            rep = repartitioning_cost(params, s).total_seconds
            winners.append("2p" if tp <= rep else "rep")
        assert winners[0] == "2p"
        assert winners[-1] == "rep"

    def test_centralized_explodes_at_high_selectivity(self, params):
        c2p = centralized_two_phase_cost(params, HIGH_S).total_seconds
        assert c2p > 5 * two_phase_cost(params, HIGH_S).total_seconds

    def test_centralized_fine_for_scalar_aggregate(self, params):
        s = 1.0 / params.num_tuples
        c2p = centralized_two_phase_cost(params, s).total_seconds
        tp = two_phase_cost(params, s).total_seconds
        assert c2p == pytest.approx(tp, rel=0.05)

    def test_adaptive_two_phase_tracks_best(self, params):
        """A-2P within a modest factor of min(2P, Rep) everywhere."""
        from repro.costmodel.params import log_selectivities

        for s in log_selectivities(params, points=15):
            best = min(
                two_phase_cost(params, s).total_seconds,
                repartitioning_cost(params, s).total_seconds,
            )
            a2p = adaptive_two_phase_cost(params, s).total_seconds
            assert a2p <= 1.25 * best, f"selectivity {s}"

    def test_adaptive_two_phase_equals_two_phase_without_switch(
        self, params
    ):
        """Below the memory limit A-2P literally is 2P."""
        a2p = adaptive_two_phase_cost(params, LOW_S)
        tp = two_phase_cost(params, LOW_S)
        assert a2p.total_seconds == pytest.approx(tp.total_seconds)

    def test_adaptive_rep_equals_rep_at_high_selectivity(self, params):
        arep = adaptive_repartitioning_cost(params, HIGH_S)
        rep = repartitioning_cost(params, HIGH_S)
        assert arep.total_seconds == pytest.approx(rep.total_seconds)

    def test_adaptive_rep_recovers_at_low_selectivity(self, params):
        """After falling back it lands near 2P, far below Rep."""
        arep = adaptive_repartitioning_cost(params, LOW_S).total_seconds
        tp = two_phase_cost(params, LOW_S).total_seconds
        rep = repartitioning_cost(params, LOW_S).total_seconds
        assert arep < rep
        assert arep <= 1.25 * tp

    def test_sampling_overhead_is_constant(self, params):
        """Samp − chosen algorithm ≈ the same at far-apart selectivities."""
        over_low = (
            sampling_cost(params, LOW_S).total_seconds
            - two_phase_cost(params, LOW_S).total_seconds
        )
        over_high = (
            sampling_cost(params, HIGH_S).total_seconds
            - repartitioning_cost(params, HIGH_S).total_seconds
        )
        assert over_low > 0 and over_high > 0
        assert over_low == pytest.approx(over_high, rel=0.5)

    def test_sampling_picks_repartitioning_above_threshold(self, params):
        """8000 groups > the 320 crossover: Samp = Rep + small overhead."""
        samp = sampling_cost(params, MID_S)
        rep = repartitioning_cost(params, MID_S)
        overhead = samp.total_seconds - rep.total_seconds
        assert 0 < overhead < 0.05 * rep.total_seconds

    def test_sampling_threshold_controls_choice(self, params):
        """With a huge threshold the same selectivity picks Two Phase."""
        samp = sampling_cost(params, MID_S, threshold=100_000)
        tp = two_phase_cost(params, MID_S)
        overhead = samp.total_seconds - tp.total_seconds
        assert overhead > 0

    def test_pipeline_strips_scan_and_store(self, params):
        full = two_phase_cost(params, MID_S)
        pipe = two_phase_cost(params, MID_S, pipeline=True)
        assert pipe.component("scan_io") == 0.0
        assert pipe.component("store_io") == 0.0
        assert pipe.total_seconds < full.total_seconds

    def test_pipeline_favors_repartitioning(self, params):
        """Figure 2's point: with no scan I/O amortizing it, 2P's CPU
        duplication makes Rep relatively stronger at high selectivity."""
        ratio_full = (
            two_phase_cost(params, HIGH_S).total_seconds
            / repartitioning_cost(params, HIGH_S).total_seconds
        )
        ratio_pipe = (
            two_phase_cost(params, HIGH_S, pipeline=True).total_seconds
            / repartitioning_cost(
                params, HIGH_S, pipeline=True
            ).total_seconds
        )
        assert ratio_pipe > ratio_full

    def test_limited_bandwidth_hurts_repartitioning_most(self):
        fast = SystemParameters.implementation().with_(
            network=NetworkKind.HIGH_BANDWIDTH
        )
        slow = SystemParameters.implementation()
        rep_penalty = (
            repartitioning_cost(slow, MID_S).total_seconds
            - repartitioning_cost(fast, MID_S).total_seconds
        )
        tp_penalty = (
            two_phase_cost(slow, MID_S).total_seconds
            - two_phase_cost(fast, MID_S).total_seconds
        )
        assert rep_penalty > 5 * tp_penalty

    def test_wasted_processors_when_groups_below_n(self, params):
        """Rep's aggregation phase concentrates on min(|G|, N) nodes."""
        one_group = 1.0 / params.num_tuples
        many = 1e-4
        rep_one = repartitioning_cost(params, one_group)
        rep_many = repartitioning_cost(params, many)
        assert rep_one.component("agg_cpu") > 10 * rep_many.component(
            "agg_cpu"
        )


class TestModelRegistry:
    def test_all_models_evaluate(self, params):
        for name in MODEL_FUNCTIONS:
            b = model_cost(name, params, MID_S)
            assert b.total_seconds > 0
            assert b.algorithm == name

    def test_unknown_model(self, params):
        with pytest.raises(KeyError, match="unknown cost model"):
            model_cost("quantum", params, MID_S)

    def test_components_all_nonnegative(self, params):
        from repro.costmodel.params import log_selectivities

        for name in MODEL_FUNCTIONS:
            for s in log_selectivities(params, points=8):
                b = model_cost(name, params, s)
                assert all(v >= 0 for v in b.components.values()), (
                    name,
                    s,
                )
