"""Tests for the metrics containers."""

import pytest

from repro.sim.metrics import ClusterMetrics, NodeMetrics


def node(i, cpu=0.0, io_r=0.0, io_w=0.0, finish=0.0, peak=0):
    m = NodeMetrics(i)
    m.cpu_seconds = cpu
    m.io_read_seconds = io_r
    m.io_write_seconds = io_w
    m.finish_time = finish
    m.peak_table_entries = peak
    return m


class TestNodeMetrics:
    def test_busy_seconds(self):
        m = node(0, cpu=1.0, io_r=2.0, io_w=3.0)
        assert m.busy_seconds == 6.0

    def test_tagged_accumulates(self):
        m = NodeMetrics(0)
        m.add_tagged("scan_io", 1.0)
        m.add_tagged("scan_io", 0.5)
        assert m.tagged_seconds["scan_io"] == 1.5


class TestClusterMetrics:
    def test_totals(self):
        c = ClusterMetrics(
            nodes=[node(0, cpu=1.0, finish=5.0), node(1, cpu=2.0,
                                                      finish=3.0)]
        )
        assert c.total_cpu_seconds == 3.0
        assert c.makespan == 5.0
        assert c.num_nodes == 2

    def test_makespan_empty(self):
        assert ClusterMetrics(nodes=[]).makespan == 0.0

    def test_skew_ratio_balanced(self):
        c = ClusterMetrics(nodes=[node(0, cpu=1.0), node(1, cpu=1.0)])
        assert c.skew_ratio() == pytest.approx(1.0)

    def test_skew_ratio_imbalanced(self):
        c = ClusterMetrics(nodes=[node(0, cpu=3.0), node(1, cpu=1.0)])
        assert c.skew_ratio() == pytest.approx(1.5)

    def test_skew_ratio_all_idle(self):
        c = ClusterMetrics(nodes=[node(0), node(1)])
        assert c.skew_ratio() == 1.0

    def test_total_peak_table_entries(self):
        c = ClusterMetrics(nodes=[node(0, peak=10), node(1, peak=30)])
        assert c.total_peak_table_entries == 40

    def test_node_lookup(self):
        a, b = node(0), node(1)
        c = ClusterMetrics(nodes=[a, b])
        assert c.node(1) is b


class TestToDict:
    def test_json_serializable(self, sum_query):
        import json

        from repro.core.runner import run_algorithm
        from repro.workloads.generator import generate_uniform

        dist = generate_uniform(500, 10, 2, seed=0)
        out = run_algorithm("two_phase", dist, sum_query)
        snapshot = out.metrics.to_dict()
        text = json.dumps(snapshot)
        restored = json.loads(text)
        assert restored["makespan"] == out.elapsed_seconds
        assert len(restored["nodes"]) == 2
        assert restored["nodes"][0]["node_id"] == 0

    def test_contains_all_totals(self):
        c = ClusterMetrics(nodes=[node(0, cpu=1.0, peak=5)])
        snapshot = c.to_dict()
        for key in (
            "makespan",
            "total_cpu_seconds",
            "total_peak_table_entries",
            "skew_ratio",
            "nodes",
        ):
            assert key in snapshot
        assert snapshot["total_peak_table_entries"] == 5
