"""Unit tests for repro.storage.relation."""

import pytest

from repro.storage.relation import (
    DistributedRelation,
    Relation,
    pages_for,
    tuples_per_page,
)
from repro.storage.schema import Column, Schema


@pytest.fixture
def schema():
    return Schema([Column("k", "int"), Column("v", "float")])


class TestPageArithmetic:
    def test_pages_for_exact_fit(self):
        # 16-byte tuples, 64-byte pages: 4 per page.
        assert pages_for(8, 16, 64) == 2

    def test_pages_for_rounds_up(self):
        assert pages_for(9, 16, 64) == 3

    def test_pages_for_zero(self):
        assert pages_for(0, 16, 64) == 0

    def test_pages_for_negative_rejected(self):
        with pytest.raises(ValueError):
            pages_for(-1, 16, 64)

    def test_oversized_tuple_one_per_page(self):
        assert tuples_per_page(100, 64) == 1
        assert pages_for(5, 100, 64) == 5

    def test_tuples_per_page(self):
        assert tuples_per_page(16, 64) == 4


class TestRelation:
    def test_len_and_iter(self, schema):
        r = Relation(schema, [(1, 1.0), (2, 2.0)])
        assert len(r) == 2
        assert list(r) == [(1, 1.0), (2, 2.0)]

    def test_arity_checked(self, schema):
        with pytest.raises(ValueError, match="arity"):
            Relation(schema, [(1, 2.0, 3)])

    def test_size_bytes(self, schema):
        r = Relation(schema, [(1, 1.0)] * 10)
        assert r.size_bytes == 160

    def test_num_pages(self, schema):
        r = Relation(schema, [(1, 1.0)] * 10)
        assert r.num_pages(page_size=64) == 3  # 4 tuples/page

    def test_pages_iteration_covers_all_rows(self, schema):
        rows = [(i, float(i)) for i in range(10)]
        r = Relation(schema, rows)
        paged = [row for page in r.pages(64) for row in page]
        assert paged == rows

    def test_pages_sizes(self, schema):
        r = Relation(schema, [(i, 0.0) for i in range(10)])
        sizes = [len(p) for p in r.pages(64)]
        assert sizes == [4, 4, 2]

    def test_column_values(self, schema):
        r = Relation(schema, [(1, 5.0), (2, 6.0)])
        assert r.column_values("v") == [5.0, 6.0]

    def test_repr_mentions_counts(self, schema):
        assert "rows=2" in repr(Relation(schema, [(1, 1.0), (2, 2.0)]))


class TestDistributedRelation:
    def test_total_len(self, schema):
        d = DistributedRelation(schema, [[(1, 1.0)], [(2, 2.0)], []])
        assert len(d) == 2
        assert d.num_nodes == 3

    def test_fragment_node_ids(self, schema):
        d = DistributedRelation(schema, [[(1, 1.0)], [(2, 2.0)]])
        assert [f.node_id for f in d.fragments] == [0, 1]
        assert d.fragment(1).relation.rows == [(2, 2.0)]

    def test_all_rows_in_node_order(self, schema):
        d = DistributedRelation(schema, [[(2, 2.0)], [(1, 1.0)]])
        assert d.all_rows() == [(2, 2.0), (1, 1.0)]

    def test_as_relation(self, schema):
        d = DistributedRelation(schema, [[(1, 1.0)], [(2, 2.0)]])
        assert len(d.as_relation()) == 2

    def test_tuples_per_node(self, schema):
        d = DistributedRelation(schema, [[(1, 1.0)] * 3, [(2, 2.0)]])
        assert d.tuples_per_node() == [3, 1]

    def test_empty_rejected(self, schema):
        with pytest.raises(ValueError, match="at least one node"):
            DistributedRelation(schema, [])

    def test_fragment_num_pages(self, schema):
        d = DistributedRelation(schema, [[(i, 0.0) for i in range(10)]])
        assert d.fragment(0).num_pages(64) == 3
