"""Unit tests for the two network models."""

import pytest

from repro.costmodel.params import NetworkKind, SystemParameters
from repro.sim.network import LatencyNetwork, SharedBusNetwork, make_network


class TestLatencyNetwork:
    def test_delivery_time(self):
        net = LatencyNetwork(0.002)
        assert net.transfer(1.0, 3) == pytest.approx(1.006)

    def test_transfers_do_not_interfere(self):
        """Unlimited bandwidth: simultaneous transfers overlap fully."""
        net = LatencyNetwork(0.002)
        a = net.transfer(1.0, 5)
        b = net.transfer(1.0, 5)
        assert a == b == pytest.approx(1.010)

    def test_zero_blocks_instant(self):
        net = LatencyNetwork(0.002)
        assert net.transfer(7.0, 0) == 7.0
        assert net.busy_seconds == 0.0

    def test_busy_accounting(self):
        net = LatencyNetwork(0.002)
        net.transfer(0.0, 4)
        net.transfer(0.0, 6)
        assert net.busy_seconds == pytest.approx(0.020)
        assert net.blocks_carried == 10

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            LatencyNetwork(-1.0)


class TestSharedBusNetwork:
    def test_serializes(self):
        """The second transfer waits for the bus."""
        net = SharedBusNetwork(0.002)
        a = net.transfer(1.0, 5)    # 1.000 → 1.010
        b = net.transfer(1.0, 5)    # waits → 1.020
        assert a == pytest.approx(1.010)
        assert b == pytest.approx(1.020)

    def test_idle_bus_no_wait(self):
        net = SharedBusNetwork(0.002)
        net.transfer(0.0, 1)        # bus free at 0.002
        late = net.transfer(10.0, 1)
        assert late == pytest.approx(10.002)

    def test_total_time_independent_of_sender_count(self):
        """The Section 2 definition: fixed data volume, fixed time."""
        one_sender = SharedBusNetwork(0.002)
        end_one = 0.0
        for _ in range(8):
            end_one = one_sender.transfer(0.0, 10)
        many = SharedBusNetwork(0.002)
        end_many = 0.0
        for sender in range(8):
            end_many = max(end_many, many.transfer(0.0, 10))
        assert end_one == pytest.approx(end_many)

    def test_zero_blocks_bypass_bus(self):
        net = SharedBusNetwork(0.002)
        net.transfer(0.0, 100)
        assert net.transfer(0.0, 0) == 0.0  # control msg skips the queue

    def test_busy_accounting(self):
        net = SharedBusNetwork(0.002)
        net.transfer(0.0, 3)
        assert net.busy_seconds == pytest.approx(0.006)


class TestMakeNetwork:
    def test_high_bandwidth(self):
        p = SystemParameters.paper_default()
        assert isinstance(make_network(p), LatencyNetwork)

    def test_limited_bandwidth(self):
        p = SystemParameters.paper_default().with_(
            network=NetworkKind.LIMITED_BANDWIDTH
        )
        assert isinstance(make_network(p), SharedBusNetwork)

    def test_rate_comes_from_params(self):
        p = SystemParameters.implementation()
        assert make_network(p).seconds_per_block == p.m_l
