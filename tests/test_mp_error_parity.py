"""Cause-chain parity: pool and spawn must fail identically.

A caller branching on ``FragmentFailedError.cause_type`` — or walking
``__cause__`` — must not care which dispatch strategy ran the job.  For
each failure class (worker exception, timeout, hard death) both
strategies are driven into the same terminal error and the error
surface is compared field by field: ``cause_type``, the ``raise … from
WorkerFailure`` chain, and the ``mp.retries`` / ``mp.errors.<Type>``
retry metrics.
"""

import functools
import os

import pytest

from tests.test_mp_executor_faults import (
    _always_raise,
    _die_once_then_work,
    _wedge,
)

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    FragmentFailedError,
    WorkerFailure,
    multiprocessing_aggregate,
    reset_pool_breaker,
)
from repro.workloads.generator import generate_uniform

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not mounted"
)


@pytest.fixture(autouse=True)
def fresh_breaker():
    reset_pool_breaker()
    yield
    reset_pool_breaker()


@pytest.fixture
def query():
    return AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )


def _always_die(job):
    os._exit(31)


def _fail_both_ways(query, metrics_by_strategy, **kwargs):
    # One fragment: the retry metric counts are deterministic.
    dist = generate_uniform(num_tuples=400, num_groups=8, num_nodes=1, seed=0)
    errors = {}
    for strategy in ("pool", "spawn"):
        metrics = MetricsRegistry()
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, query, processes=2, strategy=strategy,
                metrics=metrics, **kwargs,
            )
        errors[strategy] = info.value
        metrics_by_strategy[strategy] = metrics
    return errors["pool"], errors["spawn"]


def _assert_same_surface(pool_err, spawn_err):
    assert pool_err.cause_type == spawn_err.cause_type
    assert pool_err.attempts == spawn_err.attempts
    assert pool_err.fragment_index == spawn_err.fragment_index
    assert isinstance(pool_err.__cause__, WorkerFailure)
    assert isinstance(spawn_err.__cause__, WorkerFailure)
    assert pool_err.__cause__.error_type == spawn_err.__cause__.error_type


def _assert_same_retry_metrics(metrics_by_strategy, error_type):
    for metrics in metrics_by_strategy.values():
        assert metrics.value("mp.retries") == 1
        assert metrics.value(f"mp.errors.{error_type}") == 1


class TestCauseChainParity:
    def test_worker_error(self, query):
        metrics = {}
        pool_err, spawn_err = _fail_both_ways(
            query, metrics, max_retries=1, phase_fn=_always_raise
        )
        _assert_same_surface(pool_err, spawn_err)
        assert pool_err.cause_type == "RuntimeError"
        assert pool_err.cause == spawn_err.cause
        assert "injected failure" in pool_err.cause
        assert str(pool_err.__cause__) == str(spawn_err.__cause__)
        _assert_same_retry_metrics(metrics, "RuntimeError")

    def test_timeout(self, query):
        metrics = {}
        pool_err, spawn_err = _fail_both_ways(
            query, metrics, max_retries=1, timeout=0.5, phase_fn=_wedge
        )
        _assert_same_surface(pool_err, spawn_err)
        assert pool_err.cause_type == "Timeout"
        assert "timed out after 0.5s" in pool_err.cause
        assert pool_err.cause == spawn_err.cause
        _assert_same_retry_metrics(metrics, "Timeout")

    def test_worker_death(self, query):
        metrics = {}
        pool_err, spawn_err = _fail_both_ways(
            query, metrics, max_retries=1, phase_fn=_always_die
        )
        _assert_same_surface(pool_err, spawn_err)
        assert pool_err.cause_type == "WorkerDied"
        assert "died without a result" in pool_err.cause
        assert "died without a result" in spawn_err.cause
        _assert_same_retry_metrics(metrics, "WorkerDied")

    def test_death_recovery_parity(self, query, tmp_path):
        """Die-once-then-work must recover on both strategies with the
        same retry accounting."""
        results = {}
        for strategy in ("pool", "spawn"):
            dist = generate_uniform(
                num_tuples=400, num_groups=8, num_nodes=1, seed=0
            )
            fn = functools.partial(
                _die_once_then_work, str(tmp_path / f"died_{strategy}")
            )
            metrics = MetricsRegistry()
            results[strategy] = multiprocessing_aggregate(
                dist, query, processes=2, strategy=strategy,
                max_retries=2, phase_fn=fn, metrics=metrics,
            )
            assert metrics.value("mp.errors.WorkerDied") == 1
        assert results["pool"] == results["spawn"]
