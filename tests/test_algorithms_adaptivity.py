"""Behavioral tests of the adaptive decisions themselves.

Correctness says the answers are right; these tests pin down *when* the
algorithms switch, which is the paper's actual contribution.
"""

import pytest

from repro.core.runner import default_parameters, run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform
from repro.workloads.skew import generate_output_skew

from tests.conftest import assert_rows_close


class TestAdaptiveTwoPhase:
    def test_no_switch_when_groups_fit(self, sum_query):
        dist = generate_uniform(4000, 8, 4, seed=0)
        params = default_parameters(dist, hash_table_entries=100)
        out = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        assert not out.events_named("switch_to_repartitioning")

    def test_all_nodes_switch_when_groups_overflow(self, sum_query):
        dist = generate_uniform(4000, 500, 4, seed=0)
        params = default_parameters(dist, hash_table_entries=50)
        out = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        switches = out.events_named("switch_to_repartitioning")
        assert len(switches) == 4
        assert {e.node for e in switches} == {0, 1, 2, 3}

    def test_switch_happens_at_table_capacity(self, sum_query):
        dist = generate_uniform(4000, 500, 4, seed=0)
        params = default_parameters(dist, hash_table_entries=50)
        out = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        for event in out.events_named("switch_to_repartitioning"):
            assert event.detail["groups_accumulated"] == 50

    def test_no_spill_io_in_local_phase_after_switch(self, sum_query):
        """The point of switching: A-2P never spools local overflow."""
        dist = generate_uniform(4000, 1000, 4, seed=1)
        params = default_parameters(dist, hash_table_entries=20)
        a2p = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        # The merge phase may still spill (its groups also exceed M),
        # but two_phase must spill strictly more overall.
        tp = run_algorithm("two_phase", dist, sum_query, params=params)
        assert (
            a2p.metrics.total_spill_pages < tp.metrics.total_spill_pages
        )

    def test_partial_and_raw_mix_is_exact(self, sum_query):
        """Pre-switch partials + post-switch raw merge to the truth."""
        dist = generate_uniform(4000, 300, 4, seed=2)
        params = default_parameters(dist, hash_table_entries=100)
        out = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        assert out.events_named("switch_to_repartitioning")
        assert_rows_close(out.rows, reference_aggregate(dist, sum_query))


class TestAdaptiveRepartitioning:
    def test_stays_with_rep_when_groups_many(self, sum_query):
        dist = generate_uniform(6000, 2000, 4, seed=3)
        out = run_algorithm(
            "adaptive_repartitioning",
            dist,
            sum_query,
            arep_switch_groups=40,
            init_seg=400,
        )
        assert not out.events_named("switch_to_two_phase")

    def test_falls_back_when_groups_few(self, sum_query):
        dist = generate_uniform(6000, 8, 4, seed=4)
        out = run_algorithm(
            "adaptive_repartitioning",
            dist,
            sum_query,
            arep_switch_groups=40,
            init_seg=400,
        )
        assert out.events_named("switch_to_two_phase")

    def test_end_of_phase_propagates(self, sum_query):
        """One node's decision drags every node out of Rep."""
        dist = generate_uniform(6000, 8, 4, seed=5)
        out = run_algorithm(
            "adaptive_repartitioning",
            dist,
            sum_query,
            arep_switch_groups=40,
            init_seg=400,
        )
        switched = {e.node for e in out.events_named("switch_to_two_phase")}
        notified = {
            e.node for e in out.events_named("end_of_phase_received")
        }
        assert switched | notified == {0, 1, 2, 3}

    def test_network_traffic_drops_after_fallback(self, sum_query):
        """Once in 2P mode, only partials travel — far fewer bytes than
        staying with Rep."""
        dist = generate_uniform(6000, 8, 4, seed=6)
        arep = run_algorithm(
            "adaptive_repartitioning",
            dist,
            sum_query,
            arep_switch_groups=40,
            init_seg=200,
        )
        rep = run_algorithm("repartitioning", dist, sum_query)
        assert (
            arep.metrics.total_bytes_sent < 0.5 * rep.metrics.total_bytes_sent
        )


class TestSampling:
    def test_decision_logged(self, sum_query):
        dist = generate_uniform(4000, 8, 4, seed=7)
        out = run_algorithm(
            "sampling", dist, sum_query, sampling_threshold=40
        )
        decisions = out.events_named("sampling_decision")
        assert len(decisions) == 1
        assert decisions[0].detail["choice"] == "two_phase"

    def test_picks_repartitioning_for_many_groups(self, sum_query):
        dist = generate_uniform(4000, 1500, 4, seed=8)
        out = run_algorithm(
            "sampling", dist, sum_query, sampling_threshold=40
        )
        assert (
            out.events_named("sampling_decision")[0].detail["choice"]
            == "repartitioning"
        )

    def test_sample_is_lower_bound(self, sum_query):
        dist = generate_uniform(4000, 100, 4, seed=9)
        out = run_algorithm(
            "sampling", dist, sum_query, sampling_threshold=40
        )
        seen = out.events_named("sampling_decision")[0].detail[
            "distinct_in_sample"
        ]
        assert seen <= 100

    def test_sampling_charges_random_io(self, sum_query):
        dist = generate_uniform(4000, 8, 4, seed=10)
        out = run_algorithm(
            "sampling", dist, sum_query, sampling_threshold=40
        )
        tagged = out.metrics.node(0).tagged_seconds
        assert tagged.get("sample_io", 0.0) > 0


class TestOutputSkewBehavior:
    def test_only_group_rich_nodes_switch(self, sum_query):
        """The Section 6 story: under output skew only the nodes holding
        many groups abandon Two Phase."""
        dist = generate_output_skew(8000, 1000, num_nodes=8, seed=11)
        params = default_parameters(dist, hash_table_entries=60)
        out = run_algorithm(
            "adaptive_two_phase", dist, sum_query, params=params
        )
        switched = {
            e.node for e in out.events_named("switch_to_repartitioning")
        }
        assert switched == {4, 5, 6, 7}  # the group-rich half

    def test_adaptive_beats_both_traditional_under_output_skew(
        self, sum_query
    ):
        """Figure 9's headline: A-2P under output skew beats the best of
        2P and Rep."""
        dist = generate_output_skew(16000, 2000, num_nodes=8, seed=12)
        params = default_parameters(dist)
        times = {
            name: run_algorithm(name, dist, sum_query, params=params)
            .elapsed_seconds
            for name in (
                "two_phase",
                "repartitioning",
                "adaptive_two_phase",
            )
        }
        assert times["adaptive_two_phase"] < times["two_phase"]
        assert times["adaptive_two_phase"] < times["repartitioning"]


class TestOptimizedTwoPhase:
    def test_forwards_on_overflow(self, sum_query):
        dist = generate_uniform(4000, 500, 4, seed=13)
        params = default_parameters(dist, hash_table_entries=50)
        out = run_algorithm(
            "optimized_two_phase", dist, sum_query, params=params
        )
        assert out.events_named("forwarded_on_overflow")

    def test_no_forwarding_when_memory_suffices(self, sum_query):
        dist = generate_uniform(4000, 8, 4, seed=14)
        params = default_parameters(dist, hash_table_entries=100)
        out = run_algorithm(
            "optimized_two_phase", dist, sum_query, params=params
        )
        assert not out.events_named("forwarded_on_overflow")
