"""Unit tests for the Section 6 skew generators."""

import pytest

from repro.workloads.skew import generate_input_skew, generate_output_skew


class TestInputSkew:
    def test_skewed_node_bigger(self):
        dist = generate_input_skew(
            8000, 100, 8, skew_factor=4.0, num_skewed=1, seed=0
        )
        sizes = dist.tuples_per_node()
        assert sizes[0] > 3.5 * (sum(sizes[1:]) / 7)

    def test_total_preserved(self):
        dist = generate_input_skew(8001, 100, 8, skew_factor=3.0)
        assert len(dist) == 8001

    def test_every_node_sees_full_group_mix(self):
        """Input skew means groups per node stay the same."""
        dist = generate_input_skew(8000, 20, 4, skew_factor=4.0, seed=1)
        for frag in dist.fragments:
            assert len({r[0] for r in frag.relation.rows}) == 20

    def test_group_count_exact(self):
        dist = generate_input_skew(4000, 55, 4)
        assert len({r[0] for r in dist.all_rows()}) == 55

    def test_multiple_skewed_nodes(self):
        dist = generate_input_skew(
            9000, 10, 6, skew_factor=2.0, num_skewed=2, seed=0
        )
        sizes = dist.tuples_per_node()
        assert sizes[0] > sizes[5] and sizes[1] > sizes[5]

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            generate_input_skew(100, 5, 4, skew_factor=0.5)

    def test_num_skewed_validated(self):
        with pytest.raises(ValueError):
            generate_input_skew(100, 5, 4, num_skewed=5)


class TestOutputSkew:
    def test_figure9_shape(self):
        """4 of 8 nodes hold exactly one group value each."""
        dist = generate_output_skew(8000, 100, num_nodes=8, seed=0)
        group_counts = [
            len({r[0] for r in frag.relation.rows})
            for frag in dist.fragments
        ]
        assert group_counts[:4] == [1, 1, 1, 1]
        assert all(c > 1 for c in group_counts[4:])

    def test_equal_tuples_per_node(self):
        """Output skew keeps the input sizes balanced by definition."""
        dist = generate_output_skew(8000, 100, num_nodes=8, seed=0)
        sizes = dist.tuples_per_node()
        assert max(sizes) - min(sizes) <= 1

    def test_group_count_exact(self):
        dist = generate_output_skew(8000, 100, num_nodes=8, seed=0)
        assert len({r[0] for r in dist.all_rows()}) == 100

    def test_heavy_groups_only_on_heavy_nodes(self):
        dist = generate_output_skew(8000, 100, num_nodes=8, seed=0)
        for node in range(4):
            keys = {r[0] for r in dist.fragment(node).relation.rows}
            assert keys == {node}

    def test_total_preserved_with_remainder(self):
        dist = generate_output_skew(8003, 100, num_nodes=8, seed=0)
        assert len(dist) == 8003

    def test_custom_split(self):
        dist = generate_output_skew(
            6000, 50, num_nodes=6, num_single_group_nodes=2, seed=0
        )
        counts = [
            len({r[0] for r in f.relation.rows}) for f in dist.fragments
        ]
        assert counts[:2] == [1, 1]

    def test_too_few_groups_rejected(self):
        with pytest.raises(ValueError):
            generate_output_skew(1000, 4, num_nodes=8)

    def test_all_single_rejected(self):
        with pytest.raises(ValueError):
            generate_output_skew(
                1000, 100, num_nodes=8, num_single_group_nodes=8
            )
