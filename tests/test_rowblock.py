"""Property-based round-trips for the fixed-width codec and row blocks.

The invariants the batched data path leans on: ``encode_many`` followed
by ``decode_many`` is the identity for any encodable rows, a block slice
is a zero-copy window that decodes to the matching list slice, column
extraction equals row decoding followed by projection, and memoized
block bucketing agrees with per-tuple ``bucket_of`` exactly.

Strings are NUL-padded to their column width and decoding strips the
padding, so the encodable domain is: UTF-8 form fits the width and the
value does not itself end in NUL.  The strategies generate exactly that
domain; over-width values are covered separately by the truncation
error test.  Floats exclude NaN only because NaN != NaN would fail the
equality assertion, not because the codec mishandles it.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.hashing import bucket_of, bucket_of_block
from repro.storage.rowblock import RowBlock
from repro.storage.schema import Column, Schema
from repro.storage.serialization import RowCodec

_INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_FLOAT64 = st.floats(allow_nan=False)


def _str_values(width: int):
    return st.text(
        alphabet=st.characters(codec="utf-8"), max_size=width
    ).filter(
        lambda s: len(s.encode("utf-8")) <= width and not s.endswith("\x00")
    )


@st.composite
def _schema_and_rows(draw):
    num_cols = draw(st.integers(min_value=1, max_value=4))
    columns = []
    value_strategies = []
    for i in range(num_cols):
        kind = draw(st.sampled_from(["int", "float", "str"]))
        if kind == "str":
            width = draw(st.integers(min_value=1, max_value=12))
            columns.append(Column(f"c{i}", "str", width))
            value_strategies.append(_str_values(width))
        else:
            columns.append(Column(f"c{i}", kind))
            value_strategies.append(_INT64 if kind == "int" else _FLOAT64)
    rows = draw(st.lists(st.tuples(*value_strategies), max_size=30))
    return Schema(columns), rows


@given(_schema_and_rows())
def test_encode_decode_round_trip(case):
    schema, rows = case
    codec = RowCodec(schema)
    assert codec.decode_many(codec.encode_many(rows)) == rows
    for row in rows:
        assert codec.decode(codec.encode(row)) == row


@given(_schema_and_rows())
def test_block_round_trip_and_indexing(case):
    schema, rows = case
    block = RowBlock.from_rows(schema, rows)
    assert len(block) == len(rows)
    assert block.nbytes == len(rows) * block.codec.row_bytes
    assert block.to_rows() == rows
    assert list(block) == rows
    for i in range(len(rows)):
        assert block[i] == rows[i]
        assert block[i - len(rows)] == rows[i]


@given(_schema_and_rows(), st.data())
def test_block_slice_is_zero_copy_window(case, data):
    schema, rows = case
    block = RowBlock.from_rows(schema, rows)
    start = data.draw(st.integers(0, len(rows)), label="start")
    stop = data.draw(st.integers(start, len(rows)), label="stop")
    window = block[start:stop]
    assert window.to_rows() == rows[start:stop]
    assert isinstance(window.data, memoryview)  # a view, not a copy
    # A re-encode of the slice is byte-identical to the window.
    assert window.tobytes() == block.codec.encode_many(rows[start:stop])


@given(_schema_and_rows(), st.data())
def test_column_matches_row_projection(case, data):
    schema, rows = case
    block = RowBlock.from_rows(schema, rows)
    col = data.draw(st.integers(0, len(schema) - 1), label="col")
    assert block.column(col) == [row[col] for row in rows]
    codec = block.codec
    encoded = block.tobytes()
    for i in range(len(rows)):
        assert codec.decode_column(encoded, i, col) == rows[i][col]


@given(_schema_and_rows(), st.data())
def test_block_bucketing_matches_per_tuple(case, data):
    schema, rows = case
    block = RowBlock.from_rows(schema, rows)
    num_cols = len(schema)
    col_indexes = data.draw(
        st.lists(
            st.integers(0, num_cols - 1),
            min_size=1,
            max_size=num_cols,
            unique=True,
        ),
        label="key columns",
    )
    num_buckets = data.draw(st.integers(1, 16), label="buckets")
    expected = [
        bucket_of(tuple(row[i] for i in col_indexes), num_buckets)
        for row in rows
    ]
    assert bucket_of_block(block, col_indexes, num_buckets) == expected
    # A shared memo across sub-blocks of one partitioning pass must not
    # change any assignment.
    cache: dict = {}
    mid = len(rows) // 2
    shared = bucket_of_block(
        block[:mid], col_indexes, num_buckets, cache=cache
    ) + bucket_of_block(block[mid:], col_indexes, num_buckets, cache=cache)
    assert shared == expected


@given(_schema_and_rows())
def test_key_bytes_equal_iff_keys_equal(case):
    schema, rows = case
    block = RowBlock.from_rows(schema, rows)
    col_indexes = list(range(len(schema)))
    raws = block.key_bytes(col_indexes)
    for raw, row in zip(raws, rows):
        assert raws.count(raw) == rows.count(row)


class TestCodecErrors:
    def test_truncation_error_names_the_column(self):
        schema = Schema(
            [Column("gkey", "int"), Column("label", "str", 4)]
        )
        codec = RowCodec(schema)
        with pytest.raises(ValueError, match="'label'"):
            codec.encode((1, "too wide"))
        with pytest.raises(ValueError, match="'label'"):
            codec.encode_many([(1, "ok"), (2, "too wide")])
        # Multi-byte characters count in encoded bytes, not characters.
        with pytest.raises(ValueError, match="'label'"):
            codec.encode((1, "ééé"))

    def test_out_of_range_int_raises(self):
        codec = RowCodec(Schema([Column("k", "int")]))
        with pytest.raises(struct.error):
            codec.encode((2**63,))

    def test_trailing_nul_rejected_with_column_name(self):
        # The NUL-padded layout cannot distinguish "abc\x00" from "abc";
        # decode used to strip the NUL and return a different string.
        # Encode now fails fast instead of corrupting silently.
        schema = Schema([Column("gkey", "int"), Column("label", "str", 8)])
        codec = RowCodec(schema)
        with pytest.raises(ValueError, match="'label'.*trailing NUL"):
            codec.encode((1, "abc\x00"))
        with pytest.raises(ValueError, match="'label'.*trailing NUL"):
            codec.encode_many([(1, "ok"), (2, "\x00")])

    def test_embedded_nul_round_trips(self):
        # Only *trailing* NULs are unrepresentable; interior ones are
        # unambiguous because padding is stripped from the right only.
        codec = RowCodec(Schema([Column("label", "str", 8)]))
        rows = [("a\x00b",), ("\x00ab",), ("",)]
        assert codec.decode_many(codec.encode_many(rows)) == rows


class TestBlockErrors:
    def _block(self):
        schema = Schema([Column("k", "int"), Column("v", "float")])
        return RowBlock.from_rows(schema, [(i, i / 2) for i in range(5)])

    def test_partial_row_buffer_rejected(self):
        block = self._block()
        with pytest.raises(ValueError, match="whole number"):
            RowBlock(block.codec, block.tobytes()[:-1])

    def test_row_count_must_match_buffer(self):
        block = self._block()
        with pytest.raises(ValueError, match="expected"):
            RowBlock(block.codec, block.tobytes(), num_rows=4)

    def test_strided_slice_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            self._block()[::2]

    def test_index_out_of_range(self):
        block = self._block()
        with pytest.raises(IndexError):
            block[5]
        with pytest.raises(IndexError):
            block[-6]

    def test_empty_block(self):
        schema = Schema([Column("k", "int")])
        block = RowBlock.from_rows(schema, [])
        assert len(block) == 0
        assert block.to_rows() == []
        assert bucket_of_block(block, [0], 4) == []
