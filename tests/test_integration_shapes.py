"""Integration tests: simulated performance shapes must match the paper.

These run the *simulator* (not the analytical model) across the grouping
selectivity range and assert the qualitative results of Figures 8 and 9
plus the Section 6 discussion.
"""

import pytest

from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel.params import NetworkKind
from repro.workloads.generator import generate_uniform

NUM_TUPLES = 24_000
NUM_NODES = 8


def elapsed(algorithm, dist, query, **kw):
    return run_algorithm(algorithm, dist, query, **kw).elapsed_seconds


@pytest.fixture(scope="module")
def low_s_dist():
    return generate_uniform(NUM_TUPLES, 8, NUM_NODES, seed=0)


@pytest.fixture(scope="module")
def high_s_dist():
    return generate_uniform(NUM_TUPLES, NUM_TUPLES // 2, NUM_NODES, seed=0)


class TestTraditionalShapes:
    def test_two_phase_beats_rep_at_low_selectivity(
        self, low_s_dist, sum_query
    ):
        assert elapsed("two_phase", low_s_dist, sum_query) < elapsed(
            "repartitioning", low_s_dist, sum_query
        )

    def test_rep_beats_two_phase_at_high_selectivity(
        self, high_s_dist, sum_query
    ):
        assert elapsed("repartitioning", high_s_dist, sum_query) < elapsed(
            "two_phase", high_s_dist, sum_query
        )

    def test_c2p_worst_at_high_selectivity(self, high_s_dist, sum_query):
        c2p = elapsed("centralized_two_phase", high_s_dist, sum_query)
        assert c2p > elapsed("two_phase", high_s_dist, sum_query)
        assert c2p > elapsed("repartitioning", high_s_dist, sum_query)


class TestAdaptiveShapes:
    def test_a2p_tracks_best_at_both_extremes(
        self, low_s_dist, high_s_dist, sum_query
    ):
        for dist in (low_s_dist, high_s_dist):
            best = min(
                elapsed("two_phase", dist, sum_query),
                elapsed("repartitioning", dist, sum_query),
            )
            a2p = elapsed("adaptive_two_phase", dist, sum_query)
            assert a2p <= 1.3 * best

    def test_arep_matches_rep_at_high_selectivity(
        self, high_s_dist, sum_query
    ):
        arep = elapsed("adaptive_repartitioning", high_s_dist, sum_query)
        rep = elapsed("repartitioning", high_s_dist, sum_query)
        assert arep == pytest.approx(rep, rel=0.1)

    def test_arep_recovers_at_low_selectivity(self, low_s_dist, sum_query):
        arep = elapsed("adaptive_repartitioning", low_s_dist, sum_query)
        rep = elapsed("repartitioning", low_s_dist, sum_query)
        assert arep < rep

    def test_sampling_near_best_plus_overhead(
        self, low_s_dist, high_s_dist, sum_query
    ):
        for dist in (low_s_dist, high_s_dist):
            best = min(
                elapsed("two_phase", dist, sum_query),
                elapsed("repartitioning", dist, sum_query),
            )
            samp = elapsed("sampling", dist, sum_query)
            assert samp <= 1.5 * best


class TestNetworkSensitivity:
    def test_fast_network_helps_repartitioning(self, high_s_dist, sum_query):
        slow = default_parameters(high_s_dist)
        fast = default_parameters(
            high_s_dist, network=NetworkKind.HIGH_BANDWIDTH
        )
        t_slow = elapsed(
            "repartitioning", high_s_dist, sum_query, params=slow
        )
        t_fast = elapsed(
            "repartitioning", high_s_dist, sum_query, params=fast
        )
        assert t_fast < t_slow

    def test_network_hurts_rep_more_than_two_phase(
        self, low_s_dist, sum_query
    ):
        """The Figure 1 vs Figure 4 contrast: at low selectivity the slow
        bus penalizes Repartitioning (which ships every tuple) far more
        than Two Phase (which ships a handful of partials)."""
        # Rep's bus penalty grows with the input (it ships every tuple);
        # 2P's is a constant handful of partial blocks — use a relation
        # big enough for the separation to be unambiguous.
        dist = generate_uniform(60_000, 8, NUM_NODES, seed=2)
        slow = default_parameters(dist)
        fast = default_parameters(dist, network=NetworkKind.HIGH_BANDWIDTH)
        rep_delta = elapsed(
            "repartitioning", dist, sum_query, params=slow
        ) - elapsed("repartitioning", dist, sum_query, params=fast)
        tp_delta = elapsed(
            "two_phase", dist, sum_query, params=slow
        ) - elapsed("two_phase", dist, sum_query, params=fast)
        assert rep_delta > 2 * tp_delta


class TestCostModelAgreement:
    """The simulator and the analytical model must agree on winners."""

    @pytest.mark.parametrize(
        "groups,expected_winner",
        [(8, "two_phase"), (12_000, "repartitioning")],
    )
    def test_winner_agreement(self, sum_query, groups, expected_winner):
        from repro.costmodel import model_cost

        dist = generate_uniform(NUM_TUPLES, groups, NUM_NODES, seed=1)
        params = default_parameters(dist)
        s = groups / NUM_TUPLES

        sim = {
            name: elapsed(name, dist, sum_query, params=params)
            for name in ("two_phase", "repartitioning")
        }
        model = {
            name: model_cost(name, params, s).total_seconds
            for name in ("two_phase", "repartitioning")
        }
        assert min(sim, key=sim.get) == expected_winner
        assert min(model, key=model.get) == expected_winner
