"""Tests for the variance/stddev states and their merge exactness."""

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import (
    AggregateSpec,
    StddevState,
    VarianceState,
)
from repro.core.query import AggregateQuery
from repro.core.runner import run_algorithm
from repro.parallel import reference_aggregate
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


class TestVariance:
    def test_matches_statistics_module(self):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        s = VarianceState()
        for v in data:
            s.update(v)
        assert s.result() == pytest.approx(statistics.variance(data))

    def test_fewer_than_two_is_none(self):
        s = VarianceState()
        assert s.result() is None
        s.update(1.0)
        assert s.result() is None

    def test_ignores_none(self):
        s = VarianceState()
        for v in (1.0, None, 3.0):
            s.update(v)
        assert s.result() == pytest.approx(2.0)

    def test_constant_data_zero_variance(self):
        s = VarianceState()
        for _ in range(10):
            s.update(5.0)
        assert s.result() == pytest.approx(0.0)

    def test_merge_exact(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]
        a, b = VarianceState(), VarianceState()
        for v in data[:3]:
            a.update(v)
        for v in data[3:]:
            b.update(v)
        a.merge(b)
        assert a.result() == pytest.approx(statistics.variance(data))

    def test_copy(self):
        a = VarianceState()
        a.update(1.0)
        a.update(3.0)
        b = a.copy()
        b.update(100.0)
        assert a.result() == pytest.approx(2.0)


class TestStddev:
    def test_sqrt_of_variance(self):
        data = [1.0, 2.0, 3.0, 4.0]
        s = StddevState()
        for v in data:
            s.update(v)
        assert s.result() == pytest.approx(statistics.stdev(data))

    def test_copy_preserves_type(self):
        s = StddevState()
        s.update(1.0)
        s.update(2.0)
        assert isinstance(s.copy(), StddevState)
        assert s.copy().result() == s.result()

    def test_spec_lookup(self):
        assert isinstance(
            AggregateSpec("stddev", "v").new_state(), StddevState
        )
        assert isinstance(
            AggregateSpec("var", "v").new_state(), VarianceState
        )


values = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=4, max_size=60
)


@given(values, st.integers(min_value=1, max_value=59))
@settings(max_examples=60)
def test_variance_merge_split_anywhere(data, cut):
    cut = min(cut, len(data) - 2)
    cut = max(cut, 2)
    a, b = VarianceState(), VarianceState()
    for v in data[:cut]:
        a.update(float(v))
    for v in data[cut:]:
        b.update(float(v))
    a.merge(b)
    whole = statistics.variance([float(v) for v in data])
    assert math.isclose(a.result(), whole, rel_tol=1e-9, abs_tol=1e-9)


class TestVarianceInAlgorithms:
    def test_parallel_variance_matches_reference(self):
        query = AggregateQuery(
            group_by=["gkey"],
            aggregates=[
                AggregateSpec("var", "val"),
                AggregateSpec("stddev", "val"),
            ],
        )
        dist = generate_uniform(2000, 40, 4, seed=0)
        for algorithm in ("two_phase", "adaptive_two_phase",
                          "streaming_pre_aggregation"):
            out = run_algorithm(algorithm, dist, query)
            assert_rows_close(
                out.rows, reference_aggregate(dist, query), tol=1e-6
            )
