"""Tests for the resource-family cost reporting."""

import pytest

from repro.costmodel import MODEL_FUNCTIONS, model_cost
from repro.costmodel.params import SystemParameters
from repro.costmodel.report import (
    _FAMILY_RULES,
    FAMILIES,
    breakdown_table,
    classify_component,
    family_breakdown,
)


@pytest.fixture(scope="module")
def params():
    return SystemParameters.paper_default()


class TestClassification:
    def test_io_components(self):
        assert classify_component("scan_io") == "base_io"
        assert classify_component("store_io") == "base_io"
        assert classify_component("sample_scan_io") == "base_io"

    def test_overflow(self):
        assert classify_component("local_overflow_io") == "overflow_io"
        assert classify_component("merge_overflow_io") == "overflow_io"

    def test_network(self):
        assert classify_component("send_latency") == "network"
        assert classify_component("flush_latency") == "network"

    def test_cpu_is_default(self):
        assert classify_component("select_cpu") == "cpu"
        assert classify_component("something_new") == "cpu"


class TestModelCoverage:
    @pytest.mark.parametrize("selectivity", [1e-6, 0.01, 0.5])
    def test_every_component_classified_explicitly(self, params, selectivity):
        """No model component may fall through to the default family.

        ``classify_component`` defaults unknown names to "cpu"; a new
        model component that silently lands there would corrupt the
        family breakdowns (and the drift reports built on them) without
        any test noticing.  Pin that every component name emitted by
        every model matches an explicit rule.
        """
        needles = [n for _, group in _FAMILY_RULES for n in group]
        for name in MODEL_FUNCTIONS:
            breakdown = model_cost(name, params, selectivity)
            for component in breakdown.components:
                assert any(needle in component for needle in needles), (
                    f"{name}.{component} falls through to default family"
                )


class TestFamilyBreakdown:
    def test_sums_to_total(self, params):
        breakdown = model_cost("two_phase", params, 0.01)
        families = family_breakdown(breakdown)
        assert sum(families.values()) == pytest.approx(
            breakdown.total_seconds
        )

    def test_all_families_present(self, params):
        families = family_breakdown(model_cost("two_phase", params, 0.5))
        assert set(families) == set(FAMILIES)

    def test_no_overflow_when_memory_fits(self, params):
        families = family_breakdown(
            model_cost("two_phase", params, 1e-6)
        )
        assert families["overflow_io"] == 0.0

    def test_overflow_appears_at_high_selectivity(self, params):
        families = family_breakdown(model_cost("two_phase", params, 0.5))
        assert families["overflow_io"] > 0.0


class TestBreakdownTable:
    def test_default_covers_all_models(self, params):
        rows = breakdown_table(params, 0.01)
        assert len(rows) == len(MODEL_FUNCTIONS)
        assert {row[0] for row in rows} == set(MODEL_FUNCTIONS)

    def test_row_shape(self, params):
        rows = breakdown_table(params, 0.01, ["two_phase"])
        (row,) = rows
        assert row[0] == "two_phase"
        assert len(row) == 2 + len(FAMILIES)
        assert row[-1] == pytest.approx(sum(row[1:-1]))
