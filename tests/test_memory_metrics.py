"""Peak-memory accounting: the Section 2.2 memory argument, measured.

"Since a group value is being accumulated on potentially all the nodes
the overall memory requirement can be large" (Two Phase) vs
Repartitioning, where "each group value is stored in one place only".
"""

from repro.core.runner import default_parameters, run_algorithm
from repro.workloads.generator import generate_uniform

NODES = 4


def run(name, dist, sum_query, m=10_000):
    params = default_parameters(dist, hash_table_entries=m)
    return run_algorithm(name, dist, sum_query, params=params)


class TestMemoryClaim:
    def test_two_phase_uses_n_times_repartitioning_memory(self, sum_query):
        """With G groups spread on every node: 2P ≈ N·G entries total,
        Rep ≈ G."""
        groups = 200
        dist = generate_uniform(4000, groups, NODES, seed=0)
        tp = run("two_phase", dist, sum_query)
        rep = run("repartitioning", dist, sum_query)
        assert tp.metrics.total_peak_table_entries >= 0.9 * NODES * groups
        assert rep.metrics.total_peak_table_entries <= 1.1 * groups

    def test_repartitioning_spreads_groups_evenly(self, sum_query):
        groups = 400
        dist = generate_uniform(4000, groups, NODES, seed=1)
        rep = run("repartitioning", dist, sum_query)
        peaks = [n.peak_table_entries for n in rep.metrics.nodes]
        assert max(peaks) < 2 * (groups / NODES)

    def test_bounded_table_caps_local_peak(self, sum_query):
        """No node's table ever exceeds its M allocation in A-2P's local
        phase (the merge phase has its own allocation)."""
        m = 50
        dist = generate_uniform(4000, 1000, NODES, seed=2)
        out = run("adaptive_two_phase", dist, sum_query, m=m)
        for event in out.events_named("switch_to_repartitioning"):
            assert event.detail["groups_accumulated"] <= m

    def test_a2p_total_memory_below_two_phase(self, sum_query):
        """Switching frees the local tables, so A-2P's cluster-wide peak
        stays below plain 2P's when groups overflow."""
        dist = generate_uniform(4000, 1000, NODES, seed=3)
        a2p = run("adaptive_two_phase", dist, sum_query, m=100)
        tp = run("two_phase", dist, sum_query, m=10_000)
        assert (
            a2p.metrics.total_peak_table_entries
            < tp.metrics.total_peak_table_entries
        )

    def test_scalar_query_tiny_memory(self, sum_query):
        dist = generate_uniform(1000, 1, NODES, seed=4)
        tp = run("two_phase", dist, sum_query)
        assert tp.metrics.total_peak_table_entries <= 2 * NODES
