"""The examples must at least import cleanly and expose main().

Full runs take minutes (they are demos, not tests); correctness of what
they demonstrate is covered by the algorithm and benchmark suites.  One
small example (quickstart, scaled down via its own API) is executed for
real.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "tpcd_aggregation",
            "duplicate_elimination",
            "skew_study",
            "network_comparison",
            "operator_pipeline",
            "sql_frontend",
            "out_of_core",
            "reproduce_all",
        } <= names

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_imports_and_has_main(self, path):
        module = load_module(path)
        assert callable(module.main)

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_has_module_docstring(self, path):
        module = load_module(path)
        assert module.__doc__ and len(module.__doc__) > 80

    def test_operator_pipeline_tables_build(self):
        module = load_module(EXAMPLES_DIR / "operator_pipeline.py")
        orders, lines = module.build_tables(num_orders=20,
                                            lines_per_order=2)
        assert len(orders) == 20
        assert len(lines) == 40
