"""Tests for the hash join operator and the join→aggregate pipeline."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.engine import (
    HashAggregateOp,
    HashJoinOp,
    ScanOp,
    SelectOp,
    execute,
)
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema


@pytest.fixture
def orders():
    schema = Schema([Column("okey", "int"), Column("cust", "str")])
    return Relation(
        schema, [(1, "ann"), (2, "bob"), (3, "ann"), (4, "eve")]
    )


@pytest.fixture
def lines():
    schema = Schema(
        [Column("okey", "int"), Column("price", "float")]
    )
    return Relation(
        schema,
        [(1, 10.0), (1, 20.0), (2, 5.0), (3, 7.0), (9, 99.0)],
    )


class TestHashJoin:
    def test_inner_join_semantics(self, orders, lines):
        join = HashJoinOp(ScanOp(lines), ScanOp(orders), "okey", "okey")
        rows = sorted(join.rows())
        # orderkey 9 has no order; order 4 has no lines.
        assert len(rows) == 4
        assert rows[0] == (1, 10.0, 1, "ann")

    def test_duplicate_matches_multiply(self):
        left_schema = Schema([Column("k", "int")])
        right_schema = Schema([Column("k", "int"), Column("tag", "str")])
        left = Relation(left_schema, [(1,), (1,)])
        right = Relation(right_schema, [(1, "a"), (1, "b")])
        join = HashJoinOp(ScanOp(left), ScanOp(right), "k", "k")
        assert len(list(join.rows())) == 4

    def test_schema_collision_suffixed(self, orders, lines):
        join = HashJoinOp(ScanOp(lines), ScanOp(orders), "okey", "okey")
        assert join.schema.names() == ["okey", "price", "okey_r", "cust"]

    def test_empty_build_side(self, lines):
        empty = Relation(Schema([Column("okey", "int")]), [])
        join = HashJoinOp(ScanOp(lines), ScanOp(empty), "okey", "okey")
        assert list(join.rows()) == []

    def test_unknown_key_rejected(self, orders, lines):
        with pytest.raises(KeyError):
            HashJoinOp(ScanOp(lines), ScanOp(orders), "nope", "okey")


class TestJoinAggregatePipeline:
    def test_paper_pipeline_shape(self, orders, lines):
        """select → select → join → aggregate, Section 2's example tree."""
        left = SelectOp(ScanOp(lines), lambda r: r["price"] > 1.0)
        right = SelectOp(ScanOp(orders), lambda r: r["cust"] != "zzz")
        join = HashJoinOp(left, right, "okey", "okey")
        query = AggregateQuery(
            group_by=["cust"],
            aggregates=[AggregateSpec("sum", "price", alias="spend")],
        )
        agg = HashAggregateOp(join, query)
        result = execute(agg)
        rows = dict(sorted(result.rows))
        assert rows == {"ann": 37.0, "bob": 5.0}

    def test_aggregate_over_join_respects_memory_bound(
        self, orders, lines
    ):
        join = HashJoinOp(ScanOp(lines), ScanOp(orders), "okey", "okey")
        query = AggregateQuery(
            group_by=["cust"],
            aggregates=[AggregateSpec("count", None)],
        )
        agg = HashAggregateOp(join, query, max_entries=1)
        rows = sorted(agg.rows())
        assert [r[0] for r in rows] == ["ann", "bob"]
        assert agg.spilled_items > 0
