"""Shared fixtures and comparison helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.workloads.generator import generate_uniform


def rows_close(actual, expected, tol: float = 1e-9) -> bool:
    """Row-set equality with relative float tolerance.

    Parallel algorithms sum floats in a different order than the
    sequential reference, so exact equality is too strict for SUM/AVG.
    """
    if len(actual) != len(expected):
        return False
    for row_a, row_e in zip(actual, expected):
        if len(row_a) != len(row_e):
            return False
        for a, e in zip(row_a, row_e):
            if isinstance(a, float) or isinstance(e, float):
                if abs(a - e) > tol * max(1.0, abs(e)):
                    return False
            elif a != e:
                return False
    return True


def assert_rows_close(actual, expected, tol: float = 1e-9) -> None:
    assert len(actual) == len(expected), (
        f"row count {len(actual)} != {len(expected)}"
    )
    for i, (row_a, row_e) in enumerate(zip(actual, expected)):
        for a, e in zip(row_a, row_e):
            if isinstance(a, float) or isinstance(e, float):
                assert abs(a - e) <= tol * max(1.0, abs(e)), (
                    f"row {i}: {row_a} != {row_e}"
                )
            else:
                assert a == e, f"row {i}: {row_a} != {row_e}"


@pytest.fixture
def sum_query() -> AggregateQuery:
    return AggregateQuery(
        group_by=["gkey"], aggregates=[AggregateSpec("sum", "val")]
    )


@pytest.fixture
def full_query() -> AggregateQuery:
    """One of every aggregate function over the standard schema."""
    return AggregateQuery(
        group_by=["gkey"],
        aggregates=[
            AggregateSpec("sum", "val"),
            AggregateSpec("avg", "val"),
            AggregateSpec("min", "val"),
            AggregateSpec("max", "val"),
            AggregateSpec("count", None),
            AggregateSpec("count_distinct", "val"),
        ],
    )


@pytest.fixture
def small_dist():
    """4 nodes × 500 tuples, 16 groups: quick but non-trivial."""
    return generate_uniform(
        num_tuples=2000, num_groups=16, num_nodes=4, seed=11
    )
