"""Tests for predicted-vs-observed drift reports (sim and mp substrates)."""

from __future__ import annotations

import json

import pytest

from repro.core.runner import default_parameters, run_algorithm
from repro.costmodel.report import FAMILIES
from repro.obs import (
    MetricsRegistry,
    Tracer,
    compare_model_to_mp,
    compare_model_to_run,
    format_drift_table,
)
from repro.obs.drift import DriftRecord, observed_family_seconds
from repro.obs.schema import validate_or_raise
from repro.parallel import multiprocessing_aggregate
from repro.sim.faults import FaultPlan


def _sim_report(dist, query, algorithm="two_phase", tracer=None, **overrides):
    outcome = run_algorithm(
        algorithm, dist, query, tracer=tracer, **overrides
    )
    params = default_parameters(dist)
    selectivity = outcome.num_groups / max(
        1, sum(len(f.relation.rows) for f in dist.fragments)
    )
    report = compare_model_to_run(
        algorithm, params, selectivity, outcome.metrics, tracer=tracer
    )
    return report, outcome


class TestSimDrift:
    def test_covers_every_family(self, small_dist, full_query):
        report, outcome = _sim_report(small_dist, full_query)
        assert [r.family for r in report.records] == list(FAMILIES)
        assert report.substrate == "sim"
        assert report.observed_total == outcome.metrics.makespan
        assert report.predicted_total > 0

    def test_observed_io_is_attributed(self, small_dist, full_query):
        report, _ = _sim_report(small_dist, full_query)
        base_io = report.record_for("base_io")
        assert base_io.observed_seconds > 0
        cpu = report.record_for("cpu")
        assert cpu.observed_seconds > 0

    def test_phase_seconds_ride_along_with_tracer(
        self, small_dist, full_query
    ):
        report, _ = _sim_report(small_dist, full_query, tracer=Tracer())
        assert report.phase_seconds
        assert all(v >= 0 for v in report.phase_seconds.values())

    def test_fault_retries_are_unmodeled(self, small_dist, sum_query):
        report, _ = _sim_report(
            small_dist, sum_query,
            faults=FaultPlan(seed=3, read_error_rate=0.2),
        )
        assert report.unmodeled_seconds > 0
        # Degradation time must not pollute a family's error figure.
        families = observed_family_seconds(
            run_algorithm(
                "two_phase", small_dist, sum_query,
                faults=FaultPlan(seed=3, read_error_rate=0.2),
            ).metrics
        )
        assert families["unmodeled"] > 0

    def test_into_registry_publishes_gauges(self, small_dist, full_query):
        report, _ = _sim_report(small_dist, full_query)
        registry = MetricsRegistry()
        report.into_registry(registry)
        assert "drift.two_phase.total.rel_error" in registry
        for family in FAMILIES:
            name = f"drift.two_phase.{family}.rel_error"
            if report.record_for(family).rel_error != float("inf"):
                assert name in registry

    def test_to_dict_validates_and_serializes(self, small_dist, full_query):
        report, _ = _sim_report(small_dist, full_query)
        doc = report.to_dict()
        assert validate_or_raise(doc, "drift", label="test") is None
        json.dumps(doc)  # no NaN/inf leaks

    def test_rel_error_guards_zero_prediction(self):
        assert DriftRecord("cpu", 0.0, 0.0).rel_error == 0.0
        assert DriftRecord("cpu", 0.0, 1.0).rel_error == float("inf")
        assert DriftRecord("cpu", 0.0, 1.0).to_dict()["rel_error"] is None


class TestMpDrift:
    def test_mp_totals_and_phases(self, small_dist, full_query):
        registry = MetricsRegistry()
        rows = multiprocessing_aggregate(
            small_dist, full_query, processes=2, metrics=registry
        )
        params = default_parameters(small_dist)
        report = compare_model_to_mp(
            "two_phase", params, len(rows) / 2000, registry
        )
        assert report.substrate == "mp"
        assert report.observed_total > 0
        assert set(report.phase_seconds) == {"local", "merge"}
        assert report.phase_seconds["merge"] >= 0

    def test_mp_empty_registry_is_safe(self, small_dist):
        params = default_parameters(small_dist)
        report = compare_model_to_mp(
            "two_phase", params, 0.01, MetricsRegistry()
        )
        assert report.observed_total == 0.0
        assert report.phase_seconds == {}


class TestFormatting:
    def test_table_shape(self, small_dist, full_query):
        report, _ = _sim_report(small_dist, full_query)
        text = format_drift_table(report)
        assert "== drift: two_phase (sim" in text
        for family in FAMILIES:
            assert family in text
        assert "total" in text
        assert "rel_error" in text

    def test_table_flags_unmodeled_time(self, small_dist, sum_query):
        report, _ = _sim_report(
            small_dist, sum_query,
            faults=FaultPlan(seed=3, read_error_rate=0.2),
        )
        assert "unmodeled degradation time" in format_drift_table(report)
