"""Tests for the figure-result container, writers and figure runners."""

import csv

import pytest

from repro.bench import figures
from repro.bench.harness import FigureResult, format_table, write_results


@pytest.fixture
def result():
    r = FigureResult("figX", "a title", ["x", "y"])
    r.add_row(1.0, 2.0)
    r.add_row(3.0, 4.0)
    return r


class TestFigureResult:
    def test_column(self, result):
        assert result.column("y") == [2.0, 4.0]

    def test_series(self, result):
        assert result.series() == {"x": [1.0, 3.0], "y": [2.0, 4.0]}

    def test_arity_checked(self, result):
        with pytest.raises(ValueError, match="arity"):
            result.add_row(1.0)

    def test_unknown_column(self, result):
        with pytest.raises(ValueError):
            result.column("z")


class TestFormatting:
    def test_format_contains_title_and_rows(self, result):
        text = format_table(result)
        assert "figX: a title" in text
        assert "1.0000" in text and "4.0000" in text

    def test_scientific_for_tiny_values(self):
        r = FigureResult("f", "t", ["v"])
        r.add_row(1.25e-7)
        assert "1.250e-07" in format_table(r)

    def test_notes_rendered(self):
        r = FigureResult("f", "t", ["v"], notes="hello world")
        r.add_row(1)
        assert "note: hello world" in format_table(r)

    def test_empty_result_formats(self):
        r = FigureResult("f", "t", ["a", "b"])
        assert "f: t" in format_table(r)


class TestWriters:
    def test_write_results_files(self, result, tmp_path):
        path = write_results(result, str(tmp_path))
        assert path.endswith("figX.csv")
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1.0", "2.0"]
        assert (tmp_path / "figX.txt").exists()


class TestFigureRunners:
    """Smoke tests at reduced scale (full scale runs in benchmarks/)."""

    def test_table1_rows(self):
        result = figures.table1()
        assert len(result.rows) == 16

    def test_analytical_figures_have_full_sweeps(self):
        for runner in (
            figures.figure1,
            figures.figure2,
            figures.figure3,
            figures.figure4,
        ):
            result = runner(points=5)
            assert len(result.rows) == 5
            assert all(
                v > 0 for row in result.rows for v in row[1:]
            ), result.figure

    def test_scaleup_figures(self):
        for runner in (figures.figure5, figures.figure6):
            result = runner()
            assert result.column("num_nodes") == [2, 4, 8, 16, 32, 64]

    def test_figure7_columns(self):
        result = figures.figure7(points=4)
        assert len(result.columns) == 5

    def test_figure8_small_scale(self):
        result = figures.figure8(num_tuples=4000, num_nodes=4)
        assert len(result.rows) >= 6
        tp = result.column("two_phase")
        rep = result.column("repartitioning")
        assert tp[0] < rep[0]  # the crossover shape survives downscaling

    def test_figure9_small_scale(self):
        result = figures.figure9(num_tuples=8000, num_nodes=8)
        assert len(result.rows) == 4

    def test_input_skew_small_scale(self):
        result = figures.input_skew_study(num_tuples=4000, num_nodes=4)
        assert len(result.rows) == 3
