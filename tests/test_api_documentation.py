"""Documentation gates: every public item carries a real docstring.

A reproduction meant for adoption lives or dies on its docs; this module
makes the docstring coverage a tested invariant rather than a hope.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.algorithms",
    "repro.costmodel",
    "repro.sim",
    "repro.storage",
    "repro.workloads",
    "repro.sampling",
    "repro.parallel",
    "repro.bench",
    "repro.engine",
    "repro.sql",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if info.ispkg or info.name == "__main__":
                continue  # __main__ calls sys.exit on import by design
            names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{module_name} needs a real module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: undocumented public items {undocumented}"
    )


def test_package_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_package_count_sanity():
    """The inventory in DESIGN.md corresponds to real subpackages."""
    assert len(MODULES) >= 40
