"""Tests for the scaleup analysis (Figures 5 and 6)."""

import pytest

from repro.costmodel.scaleup import DEFAULT_NODE_COUNTS, scaleup_series
from repro.costmodel.params import SystemParameters

LOW_S = 2.0e-6
HIGH_S = 0.25


@pytest.fixture(scope="module")
def params():
    return SystemParameters.paper_default()


class TestScaleupMechanics:
    def test_series_shape(self, params):
        pts = scaleup_series("two_phase", params, LOW_S)
        assert [n for n, _, _ in pts] == list(DEFAULT_NODE_COUNTS)

    def test_baseline_is_one(self, params):
        pts = scaleup_series("repartitioning", params, HIGH_S)
        assert pts[0][2] == pytest.approx(1.0)

    def test_unknown_algorithm(self, params):
        with pytest.raises(KeyError):
            scaleup_series("nope", params, LOW_S)

    def test_validation(self, params):
        with pytest.raises(ValueError):
            scaleup_series("two_phase", params, LOW_S, node_counts=[])
        with pytest.raises(ValueError):
            scaleup_series("two_phase", params, LOW_S, node_counts=[8, 4])


class TestFigure5LowSelectivity:
    """At S = 2e-6 everything that ends up doing 2P scales ~ideally."""

    @pytest.mark.parametrize(
        "algorithm",
        ["two_phase", "adaptive_two_phase", "adaptive_repartitioning"],
    )
    def test_near_ideal(self, params, algorithm):
        pts = scaleup_series(algorithm, params, LOW_S)
        for _n, _t, su in pts:
            assert su >= 0.95

    def test_sampling_slightly_suboptimal_but_good(self, params):
        pts = scaleup_series("sampling", params, LOW_S)
        assert all(su >= 0.85 for _n, _t, su in pts)


class TestFigure6HighSelectivity:
    def test_repartitioning_ideal(self, params):
        pts = scaleup_series("repartitioning", params, HIGH_S)
        assert all(su >= 0.99 for _n, _t, su in pts)

    def test_adaptives_near_ideal(self, params):
        for algorithm in (
            "adaptive_two_phase",
            "adaptive_repartitioning",
        ):
            pts = scaleup_series(algorithm, params, HIGH_S)
            assert all(su >= 0.95 for _n, _t, su in pts), algorithm

    def test_centralized_collapses(self, params):
        pts = scaleup_series("centralized_two_phase", params, HIGH_S)
        assert pts[-1][2] < 0.2

    def test_plain_two_phase_suboptimal(self, params):
        """Duplicated merge work keeps 2P visibly below ideal."""
        pts = scaleup_series("two_phase", params, HIGH_S)
        assert pts[-1][2] < 0.95

    def test_adaptive_beats_plain_two_phase(self, params):
        a2p = scaleup_series("adaptive_two_phase", params, HIGH_S)
        tp = scaleup_series("two_phase", params, HIGH_S)
        assert a2p[-1][2] > tp[-1][2]
