"""Property tests: operator pipelines vs plain-Python oracles."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.aggregates import AggregateSpec
from repro.core.query import AggregateQuery
from repro.engine import (
    HashAggregateOp,
    LimitOp,
    ProjectOp,
    ScanOp,
    SelectOp,
    SortAggregateOp,
    SortOp,
    execute,
)
from repro.storage.relation import Relation
from repro.storage.schema import Column, Schema

SCHEMA = Schema([Column("k", "int"), Column("v", "int")])

rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=-100, max_value=100),
    ),
    max_size=80,
)


def relation_of(data):
    return Relation(SCHEMA, data)


@given(rows, st.integers(min_value=-100, max_value=100))
@settings(max_examples=60)
def test_select_matches_comprehension(data, threshold):
    plan = SelectOp(
        ScanOp(relation_of(data)), lambda r: r["v"] > threshold
    )
    assert list(plan.rows()) == [r for r in data if r[1] > threshold]


@given(rows)
@settings(max_examples=60)
def test_project_swaps_columns(data):
    plan = ProjectOp(ScanOp(relation_of(data)), ["v", "k"])
    assert list(plan.rows()) == [(v, k) for k, v in data]


@given(rows, st.integers(min_value=0, max_value=100))
@settings(max_examples=60)
def test_limit_prefix(data, n):
    plan = LimitOp(ScanOp(relation_of(data)), n)
    assert list(plan.rows()) == data[:n]


@given(rows)
@settings(max_examples=60)
def test_sort_matches_sorted(data):
    plan = SortOp(ScanOp(relation_of(data)), ["v"])
    got = [r[1] for r in plan.rows()]
    assert got == sorted(r[1] for r in data)


@given(rows, st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_hash_and_sort_aggregate_agree(data, max_entries):
    query = AggregateQuery(
        group_by=["k"],
        aggregates=[
            AggregateSpec("sum", "v"),
            AggregateSpec("count", None),
        ],
    )
    hash_rows = sorted(
        HashAggregateOp(
            ScanOp(relation_of(data)), query, max_entries
        ).rows()
    )
    sort_rows = list(
        SortAggregateOp(
            ScanOp(relation_of(data)), query, max_entries
        ).rows()
    )
    assert hash_rows == sort_rows
    # Oracle: plain dict group-by.
    oracle: dict = {}
    for k, v in data:
        total, count = oracle.get(k, (0, 0))
        oracle[k] = (total + v, count + 1)
    assert hash_rows == sorted(
        (k, t, c) for k, (t, c) in oracle.items()
    )


@given(rows, st.integers(min_value=-100, max_value=100),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60)
def test_full_pipeline_composition(data, threshold, limit):
    """select → aggregate → sort → limit equals the same done by hand."""
    query = AggregateQuery(
        group_by=["k"], aggregates=[AggregateSpec("count", None)]
    )
    plan = LimitOp(
        SortOp(
            HashAggregateOp(
                SelectOp(
                    ScanOp(relation_of(data)),
                    lambda r: r["v"] >= threshold,
                ),
                query,
            ),
            ["k"],
        ),
        limit,
    )
    got = execute(plan).rows

    counts: dict = {}
    for k, v in data:
        if v >= threshold:
            counts[k] = counts.get(k, 0) + 1
    expected = sorted(counts.items())[:limit]
    assert got == expected
