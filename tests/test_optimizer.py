"""Unit tests for the plan-choice optimizer."""

import pytest

from repro.core.optimizer import PlanChoice, choose_plan, rank_algorithms
from repro.costmodel.params import SystemParameters


@pytest.fixture(scope="module")
def params():
    return SystemParameters.paper_default()


class TestRankAlgorithms:
    def test_sorted_cheapest_first(self, params):
        ranking = rank_algorithms(params, 1e-6)
        costs = [cost for _name, cost in ranking]
        assert costs == sorted(costs)

    def test_two_phase_leads_at_low_selectivity(self, params):
        names = [name for name, _ in rank_algorithms(params, 1e-6)]
        assert names.index("two_phase") < names.index("repartitioning")

    def test_repartitioning_family_leads_at_high(self, params):
        # The shared global table (no network at all) may top the overall
        # ranking at high selectivity; among the paper's shared-nothing
        # algorithms the repartitioning family must still lead.
        names = [name for name, _ in rank_algorithms(params, 0.5)]
        assert names[0] in (
            "repartitioning",
            "adaptive_repartitioning",
            "global_hash",
        )
        assert names.index("repartitioning") < names.index("two_phase")

    def test_global_hash_crossover(self, params):
        """Global loses at tiny selectivity (contention), wins at high."""
        low = [name for name, _ in rank_algorithms(params, 1e-6)]
        high = [name for name, _ in rank_algorithms(params, 0.5)]
        assert low.index("two_phase") < low.index("global_hash")
        assert high.index("global_hash") < high.index("two_phase")


class TestChoosePlan:
    def test_no_estimate_prefers_a2p(self, params):
        choice = choose_plan(params)
        assert choice.algorithm == "adaptive_two_phase"
        assert "Section 7" in choice.rationale

    def test_duplicate_elimination_hint(self, params):
        choice = choose_plan(params, expect_duplicate_elimination=True)
        assert choice.algorithm == "adaptive_repartitioning"

    def test_small_estimate(self, params):
        choice = choose_plan(params, estimated_groups=50)
        assert choice.algorithm == "adaptive_two_phase"
        assert choice.estimated_seconds is not None

    def test_large_estimate(self, params):
        choice = choose_plan(params, estimated_groups=1_000_000)
        assert choice.algorithm == "adaptive_repartitioning"

    def test_threshold_boundary(self, params):
        below = choose_plan(params, estimated_groups=319)
        at = choose_plan(params, estimated_groups=320)
        assert below.algorithm == "adaptive_two_phase"
        assert at.algorithm == "adaptive_repartitioning"

    def test_restricted_support_falls_back(self, params):
        choice = choose_plan(
            params,
            estimated_groups=1_000_000,
            supported=["two_phase", "repartitioning"],
        )
        assert choice.algorithm == "repartitioning"

    def test_single_algorithm_engine(self, params):
        choice = choose_plan(params, supported=["two_phase"])
        assert choice.algorithm == "two_phase"

    def test_empty_support_rejected(self, params):
        with pytest.raises(ValueError):
            choose_plan(params, supported=[])

    def test_negative_estimate_rejected(self, params):
        with pytest.raises(ValueError):
            choose_plan(params, estimated_groups=-1)

    def test_plan_choice_frozen(self):
        choice = PlanChoice("two_phase", "why")
        with pytest.raises(AttributeError):
            choice.algorithm = "other"
