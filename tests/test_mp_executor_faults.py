"""Failure handling of the multiprocessing executor.

Covers the hardened dispatch loop: raising workers, workers that die
without reporting, wedged workers hitting the per-attempt timeout, the
bounded retry policy, the in-process fallback's retry path, and the
result-merge aliasing regression (same DistributedRelation run twice
must give identical results).
"""

import functools
import os
import time

import pytest

from repro.parallel import (
    FragmentFailedError,
    multiprocessing_aggregate,
    reference_aggregate,
)
from repro.parallel.mp_executor import _local_phase
from repro.workloads.generator import generate_uniform

from tests.conftest import assert_rows_close


# Worker functions must be module-level (picklable) to cross the
# process boundary; per-test state rides in functools.partial.

def _always_raise(job):
    raise RuntimeError("injected failure")


def _die_once_then_work(marker_path, job):
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        os._exit(17)  # hard death: no exception, no result on the pipe
    return _local_phase(job)


def _raise_once_then_work(marker_path, job):
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        raise ValueError("transient failure")
    return _local_phase(job)


def _fail_on_marker_row(marker_row, job):
    rows, _query, _schema = job
    if rows and tuple(rows[0]) == tuple(marker_row):
        raise RuntimeError("poisoned fragment")
    return _local_phase(job)


def _wedge(job):
    time.sleep(60)


class TestMergeAliasing:
    def test_same_relation_twice_identical(self, sum_query):
        """Regression: merging must never mutate the pooled partials.

        Running the same DistributedRelation twice has to produce
        identical results — an aliasing merge would fold earlier
        answers into later ones.
        """
        dist = generate_uniform(1600, 24, 4, seed=9)
        first = multiprocessing_aggregate(dist, sum_query, processes=2)
        second = multiprocessing_aggregate(dist, sum_query, processes=2)
        assert first == second
        assert_rows_close(first, reference_aggregate(dist, sum_query))

    def test_same_relation_twice_inprocess(self, full_query):
        dist = generate_uniform(1200, 16, 4, seed=10)
        first = multiprocessing_aggregate(dist, full_query, processes=1)
        second = multiprocessing_aggregate(dist, full_query, processes=1)
        assert first == second
        assert_rows_close(first, reference_aggregate(dist, full_query))


class TestWorkerFailures:
    def test_raising_worker_exhausts_retries(self, sum_query):
        dist = generate_uniform(400, 8, 2, seed=0)
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, sum_query, processes=2, max_retries=1,
                phase_fn=_always_raise,
            )
        err = info.value
        assert err.attempts == 2  # first try + one retry
        assert "injected failure" in err.cause
        assert isinstance(err.partial_results, dict)

    def test_dead_worker_recovers_via_retry(self, sum_query, tmp_path):
        """A worker killed mid-job (no exception, no result) is retried."""
        dist = generate_uniform(800, 12, 2, seed=1)
        fn = functools.partial(
            _die_once_then_work, str(tmp_path / "died")
        )
        got = multiprocessing_aggregate(
            dist, sum_query, processes=2, max_retries=2, phase_fn=fn
        )
        assert_rows_close(got, reference_aggregate(dist, sum_query))

    def test_dead_worker_without_retries_raises(self, sum_query, tmp_path):
        dist = generate_uniform(400, 8, 2, seed=2)
        fn = functools.partial(
            _die_once_then_work, str(tmp_path / "died")
        )
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, sum_query, processes=2, max_retries=0, phase_fn=fn
            )
        assert "died without a result" in info.value.cause

    def test_wedged_worker_times_out_never_hangs(self, sum_query):
        dist = generate_uniform(400, 8, 2, seed=3)
        start = time.monotonic()
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, sum_query, processes=2, max_retries=0,
                timeout=0.5, phase_fn=_wedge,
            )
        assert time.monotonic() - start < 30
        assert "timed out" in info.value.cause

    def test_partial_results_carried_on_failure(self, sum_query):
        """The error carries every fragment that did complete."""
        dist = generate_uniform(900, 12, 3, seed=4)
        marker_row = dist.fragments[2].relation.rows[0]
        fn = functools.partial(_fail_on_marker_row, marker_row)
        # In-process execution is sequential, so fragments 0 and 1 are
        # guaranteed done by the time fragment 2 fails.
        with pytest.raises(FragmentFailedError) as info:
            multiprocessing_aggregate(
                dist, sum_query, processes=1, max_retries=0, phase_fn=fn
            )
        err = info.value
        assert err.fragment_index == 2
        assert sorted(err.partial_results) == [0, 1]

    def test_inprocess_retry_recovers(self, sum_query, tmp_path):
        dist = generate_uniform(600, 8, 2, seed=5)
        fn = functools.partial(
            _raise_once_then_work, str(tmp_path / "raised")
        )
        got = multiprocessing_aggregate(
            dist, sum_query, processes=1, max_retries=1, phase_fn=fn
        )
        assert_rows_close(got, reference_aggregate(dist, sum_query))


class TestArgumentValidation:
    def test_rejects_negative_retries(self, sum_query, small_dist):
        with pytest.raises(ValueError):
            multiprocessing_aggregate(
                small_dist, sum_query, max_retries=-1
            )

    def test_rejects_nonpositive_timeout(self, sum_query, small_dist):
        with pytest.raises(ValueError):
            multiprocessing_aggregate(small_dist, sum_query, timeout=0)
