"""Tests for run-timeline recording and the Gantt renderer."""

import pytest

from repro.core.runner import run_algorithm
from repro.costmodel.params import SystemParameters
from repro.sim.engine import Engine
from repro.sim.node import NodeContext
from repro.sim.timeline import render_timeline, tag_char
from repro.workloads.generator import generate_uniform


def run_recorded(*program_fns):
    params = SystemParameters.paper_default().with_(
        num_nodes=len(program_fns)
    )
    engine = Engine(params, record_timeline=True)
    ctxs = [
        NodeContext(i, len(program_fns), params, engine)
        for i in range(len(program_fns))
    ]
    engine.run([fn(ctx) for fn, ctx in zip(program_fns, ctxs)])
    return engine.timelines


class TestRecording:
    def test_segments_recorded(self):
        def prog(ctx):
            yield ctx.compute(1.0, tag="agg_cpu")
            yield ctx.read_pages(2, tag="scan_io")

        (lane,) = run_recorded(prog)
        assert len(lane) == 2
        assert lane[0][2] == "agg_cpu"
        assert lane[1][2] == "scan_io"

    def test_contiguous_same_tag_merged(self):
        def prog(ctx):
            yield ctx.compute(0.5, tag="agg_cpu")
            yield ctx.compute(0.5, tag="agg_cpu")

        (lane,) = run_recorded(prog)
        assert len(lane) == 1
        assert lane[0] == (0.0, 1.0, "agg_cpu")

    def test_segments_are_ordered_and_disjoint(self):
        def prog(ctx):
            for i in range(5):
                yield ctx.compute(0.1, tag=f"t{i}")
                yield ctx.read_pages(1)

        (lane,) = run_recorded(prog)
        for (s1, e1, _), (s2, _e2, _) in zip(lane, lane[1:]):
            assert e1 <= s2 + 1e-12
            assert s1 < e1

    def test_not_recorded_by_default(self):
        params = SystemParameters.paper_default().with_(num_nodes=1)
        engine = Engine(params)
        ctx = NodeContext(0, 1, params, engine)

        def prog():
            yield ctx.compute(1.0)

        engine.run([prog()])
        assert engine.timelines == [[]]


class TestRenderer:
    def test_lanes_and_legend(self):
        def prog(ctx):
            yield ctx.compute(1.0, tag="agg_cpu")

        lanes = run_recorded(prog, prog)
        text = render_timeline(lanes, width=40)
        assert text.count("node ") == 2
        assert "a=agg_cpu" in text
        assert ".=idle/wait" in text

    def test_idle_shown_as_dots(self):
        def busy(ctx):
            yield ctx.compute(2.0, tag="agg_cpu")

        def brief(ctx):
            yield ctx.compute(0.2, tag="agg_cpu")

        lanes = run_recorded(busy, brief)
        text = render_timeline(lanes, width=40)
        brief_lane = text.splitlines()[1]
        assert brief_lane.count(".") > 20

    def test_empty(self):
        assert "no timeline" in render_timeline([])
        assert "empty" in render_timeline([[]])

    def test_tag_char_default(self):
        assert tag_char("unknown_tag") == "#"
        assert tag_char("spill_io") == "!"


class TestOutcomeIntegration:
    def test_outcome_renders(self, sum_query):
        dist = generate_uniform(1000, 50, 2, seed=0)
        out = run_algorithm(
            "two_phase", dist, sum_query, record_timeline=True
        )
        text = out.render_timeline(width=40)
        assert "node  0" in text and "node  1" in text

    def test_outcome_without_recording_explains(self, sum_query):
        dist = generate_uniform(1000, 50, 2, seed=0)
        out = run_algorithm("two_phase", dist, sum_query)
        assert "not recorded" in out.render_timeline()

    def test_coordinator_bottleneck_visible(self, sum_query):
        """C-2P: the coordinator works past every other node's finish."""
        dist = generate_uniform(4000, 1500, 4, seed=1)
        out = run_algorithm(
            "centralized_two_phase", dist, sum_query,
            record_timeline=True,
        )
        ends = [max(e for _s, e, _t in lane) for lane in out.timelines]
        assert ends[0] > 1.2 * max(ends[1:])
